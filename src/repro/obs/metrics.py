"""Named counters, gauges, and histograms in a process-global registry.

Instrumented library code records *what happened* (how many DRAM
arbitration rounds, how many sweep points, how many Pareto candidates)
without deciding where the numbers go; callers snapshot the registry
(:meth:`MetricsRegistry.snapshot`) or export it as JSON
(:func:`repro.obs.export.write_metrics_json`).

Conventions
-----------
Metric names are dotted paths, subsystem first::

    core.evaluate.calls          counter
    sim.dram.contention_rounds   counter
    sim.thermal.throttle_events  counter
    ert.sweep.points             counter
    explore.pareto.candidates    counter

Unlike tracing, metrics are *always on*: an increment is a plain
attribute add on a pre-resolved instrument handle, cheap enough for
every hot path, and the benchmark harness relies on them being
collected with tracing disabled.  Increments are not individually
locked — under CPython's GIL a lost update needs an adversarial thread
interleaving, and these metrics inform engineering judgement, not
billing.  Registry *structure* (instrument creation, reset, snapshot)
is lock-protected.

Two extensions serve the cross-process telemetry layer
(``docs/telemetry.md``):

- **labels** — every instrument accessor takes an optional ``labels``
  mapping (``counter("fleet.points", labels={"worker": "w1"})``); each
  distinct label set is its own instrument, keyed in snapshots as
  ``name{key=value,...}``.  The unlabeled API is unchanged.
- **mergeable snapshots** — :func:`merge_snapshots` combines worker
  snapshots under the addition laws: counter values and histogram
  count/sum add, histogram min/max take extremes, gauges keep the last
  writer (they have no meaningful sum).  Percentiles are dropped on
  merge — sample windows are not mergeable without loss, totals are.
"""

from __future__ import annotations

import bisect
import math
import threading
import time

from ..errors import ObservabilityError

#: Default upper bounds for :class:`BucketHistogram`: a geometric
#: ladder from 100 µs to ~3.5 min (factor 2), tuned for request
#: latencies.  Powers of two keep the bounds bitwise-identical across
#: processes, which the exact merge law depends on.
DEFAULT_BUCKET_BOUNDS = tuple(1e-4 * 2.0 ** i for i in range(21))


def encode_metric_key(name: str, labels=None) -> str:
    """The snapshot key for an instrument: ``name`` or ``name{k=v,...}``.

    Labels are sorted so the encoding is canonical; values are
    stringified (label values are identity, not data).
    """
    if not name:
        raise ObservabilityError("metric name must be non-empty")
    if "{" in name or "}" in name:
        raise ObservabilityError(
            f"metric name {name!r} may not contain braces; pass labels "
            "via the labels mapping"
        )
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "labels")

    def __init__(self, name: str, labels=None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else None
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount!r})"
            )
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def to_dict(self) -> dict:
        data = {"type": "counter", "value": self.value}
        if self.labels:
            data["labels"] = dict(self.labels)
        return data


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value", "labels")

    def __init__(self, name: str, labels=None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else None
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0

    def to_dict(self) -> dict:
        data = {"type": "gauge", "value": self.value}
        if self.labels:
            data["labels"] = dict(self.labels)
        return data


class Histogram:
    """Aggregate distribution: count/sum/min/max plus a sample window.

    Keeps the most recent ``max_samples`` observations (a ring buffer)
    so :meth:`percentile` stays O(window) without unbounded memory on
    long runs; count/sum/min/max always cover *every* observation.
    """

    __slots__ = ("name", "count", "total", "min", "max", "labels",
                 "_samples", "_max_samples", "_next")

    def __init__(self, name: str, max_samples: int = 4096,
                 labels=None) -> None:
        if max_samples < 1:
            raise ObservabilityError(
                f"histogram {name!r} needs max_samples >= 1"
            )
        self.name = name
        self.labels = dict(labels) if labels else None
        self._max_samples = max_samples
        self._init_state()

    def _init_state(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._samples = []
        self._next = 0

    def record(self, value: float) -> None:
        """Observe one value."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:
            self._samples[self._next] = value
            self._next = (self._next + 1) % self._max_samples

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained sample window."""
        if not 0 <= p <= 100:
            raise ObservabilityError(f"percentile must be in [0, 100], got {p!r}")
        if not self._samples:
            raise ObservabilityError(
                f"histogram {self.name!r} has no observations"
            )
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(p / 100 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def reset(self) -> None:
        self._init_state()

    def to_dict(self) -> dict:
        data = {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        if self._samples:
            data["p50"] = self.percentile(50)
            data["p95"] = self.percentile(95)
        if self.labels:
            data["labels"] = dict(self.labels)
        return data


class BucketHistogram:
    """Fixed log-bucketed distribution with *exact* merge laws.

    The sampled-window :class:`Histogram` biases its percentiles once
    the window wraps under load; this instrument trades per-sample
    fidelity for bucket counts that merge bitwise across processes:
    merging two bucket histograms (same bounds) yields exactly the
    histogram of the union of their observations.  Upper bounds use
    ``le`` semantics (a value lands in the first bucket whose bound is
    >= value); values above the last bound land in the implicit
    ``+Inf`` overflow bucket.
    """

    __slots__ = ("name", "count", "total", "min", "max", "labels",
                 "bounds", "buckets")

    def __init__(self, name: str, bounds=None, labels=None) -> None:
        bounds = tuple(
            float(b) for b in (DEFAULT_BUCKET_BOUNDS if bounds is None
                               else bounds)
        )
        if not bounds or any(
            b <= a for a, b in zip(bounds, bounds[1:])
        ) or not all(math.isfinite(b) for b in bounds):
            raise ObservabilityError(
                f"bucket histogram {name!r} needs finite, strictly "
                "increasing bounds"
            )
        self.name = name
        self.labels = dict(labels) if labels else None
        self.bounds = bounds
        self._init_state()

    def _init_state(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        # One slot per bound plus the +Inf overflow bucket.
        self.buckets = [0] * (len(self.bounds) + 1)

    def record(self, value: float) -> None:
        """Observe one value."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (q in [0, 1]).

        Returns the upper bound of the bucket holding the q-th
        observation — an over-estimate by at most one bucket width,
        which is the histogram's contract.  The overflow bucket
        reports the exact observed max.
        """
        if not 0 <= q <= 1:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q!r}")
        if not self.count:
            raise ObservabilityError(
                f"bucket histogram {self.name!r} has no observations"
            )
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max

    def reset(self) -> None:
        self._init_state()

    def to_dict(self) -> dict:
        data = {
            "type": "bucket_histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }
        if self.labels:
            data["labels"] = dict(self.labels)
        return data


class Timer:
    """Context manager recording elapsed seconds into a histogram.

    Each entry/exit observes one duration, so the backing histogram
    reports count/sum/min/max (always) and p50/p95 (over the retained
    sample window) of the timed block::

        with timer("ert.fit.seconds"):
            fitted = fit_roofline(sweep)

    Re-enterable and reusable: ``timer(name)`` hands out a fresh
    ``Timer`` over the shared named histogram, so concurrent or nested
    uses never clobber each other's start marks.
    """

    __slots__ = ("histogram", "_clock", "_start")

    def __init__(self, histogram: Histogram, clock=time.perf_counter) -> None:
        self.histogram = histogram
        self._clock = clock
        self._start = None

    def __enter__(self) -> "Timer":
        self._start = self._clock()
        return self

    def __exit__(self, *_exc) -> bool:
        if self._start is not None:
            self.histogram.record(self._clock() - self._start)
            self._start = None
        return False


class MetricsRegistry:
    """Get-or-create home for named instruments.

    ``reset()`` zeroes every instrument *in place* so module-level
    handles (``_CALLS = counter("core.evaluate.calls")``) stay wired to
    the live registry across test-suite resets.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict = {}

    def _get_or_create(self, name: str, cls, labels=None):
        key = encode_metric_key(name, labels)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = self._instruments[key] = cls(name, labels=labels)
            elif not isinstance(instrument, cls):
                raise ObservabilityError(
                    f"metric {key!r} already registered as "
                    f"{type(instrument).__name__.lower()}, not "
                    f"{cls.__name__.lower()}"
                )
            return instrument

    def counter(self, name: str, labels=None) -> Counter:
        return self._get_or_create(name, Counter, labels)

    def gauge(self, name: str, labels=None) -> Gauge:
        return self._get_or_create(name, Gauge, labels)

    def histogram(self, name: str, labels=None) -> Histogram:
        return self._get_or_create(name, Histogram, labels)

    def bucket_histogram(self, name: str, labels=None) -> BucketHistogram:
        return self._get_or_create(name, BucketHistogram, labels)

    def timer(self, name: str, labels=None) -> Timer:
        """A fresh :class:`Timer` over the named histogram."""
        return Timer(self._get_or_create(name, Histogram, labels))

    def names(self) -> tuple:
        """Registered metric names, sorted."""
        with self._lock:
            return tuple(sorted(self._instruments))

    def snapshot(self) -> dict:
        """All instruments as a name -> JSON-ready mapping, sorted."""
        with self._lock:
            return {
                name: self._instruments[name].to_dict()
                for name in sorted(self._instruments)
            }

    def reset(self) -> None:
        """Zero every instrument, keeping registrations and handles."""
        with self._lock:
            for instrument in self._instruments.values():
                instrument.reset()

    def clear(self) -> None:
        """Drop every instrument (detaches existing handles)."""
        with self._lock:
            self._instruments.clear()


#: The process-global registry used by all library instrumentation.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def counter(name: str, labels=None) -> Counter:
    """Get or create a counter in the global registry."""
    return _REGISTRY.counter(name, labels)


def gauge(name: str, labels=None) -> Gauge:
    """Get or create a gauge in the global registry."""
    return _REGISTRY.gauge(name, labels)


def histogram(name: str, labels=None) -> Histogram:
    """Get or create a histogram in the global registry."""
    return _REGISTRY.histogram(name, labels)


def bucket_histogram(name: str, labels=None) -> BucketHistogram:
    """Get or create a bucket histogram in the global registry."""
    return _REGISTRY.bucket_histogram(name, labels)


def timer(name: str, labels=None) -> Timer:
    """A :class:`Timer` over a histogram in the global registry."""
    return _REGISTRY.timer(name, labels)


def reset_metrics() -> None:
    """Zero every instrument in the global registry."""
    _REGISTRY.reset()


# ---------------------------------------------------------------------
# Snapshot merging (the cross-process addition laws)
# ---------------------------------------------------------------------


def _merge_entry(merged: dict, entry: dict, key: str) -> dict:
    kind = entry.get("type")
    if merged.get("type") != kind:
        raise ObservabilityError(
            f"cannot merge metric {key!r}: {merged.get('type')!r} vs "
            f"{kind!r}"
        )
    if kind == "counter":
        merged["value"] = merged.get("value", 0.0) + entry.get("value", 0.0)
    elif kind == "gauge":
        merged["value"] = entry.get("value", 0.0)  # last writer wins
    elif kind == "histogram":
        merged["count"] = merged.get("count", 0) + entry.get("count", 0)
        merged["sum"] = merged.get("sum", 0.0) + entry.get("sum", 0.0)
        for field, pick in (("min", min), ("max", max)):
            a, b = merged.get(field), entry.get(field)
            if a is None:
                merged[field] = b
            elif b is not None:
                merged[field] = pick(a, b)
        merged["mean"] = (
            merged["sum"] / merged["count"] if merged["count"] else 0.0
        )
        # Percentiles are window statistics; windows do not merge
        # without loss, so the merged entry carries none.
        merged.pop("p50", None)
        merged.pop("p95", None)
    elif kind == "bucket_histogram":
        if list(merged.get("bounds", ())) != list(entry.get("bounds", ())):
            raise ObservabilityError(
                f"cannot merge bucket histogram {key!r}: bucket bounds "
                "differ between snapshots"
            )
        merged["count"] = merged.get("count", 0) + entry.get("count", 0)
        merged["sum"] = merged.get("sum", 0.0) + entry.get("sum", 0.0)
        for field, pick in (("min", min), ("max", max)):
            a, b = merged.get(field), entry.get(field)
            if a is None:
                merged[field] = b
            elif b is not None:
                merged[field] = pick(a, b)
        merged["mean"] = (
            merged["sum"] / merged["count"] if merged["count"] else 0.0
        )
        # The exact law: bucket counts are integers that add bitwise,
        # so the merge *is* the histogram of the union of observations.
        merged["buckets"] = [
            a + b for a, b in zip(merged["buckets"], entry["buckets"])
        ]
    else:
        raise ObservabilityError(
            f"cannot merge metric {key!r} of unknown type {kind!r}"
        )
    return merged


def merge_snapshots(*snapshots) -> dict:
    """Combine metric snapshots under the addition laws, keys sorted.

    Counters and histogram count/sum add exactly (the union of the
    inputs); histogram min/max take the extremes; gauges keep the last
    snapshot's value.  Type conflicts for the same key raise — a
    counter in one worker and a gauge in another is a bug, not data.
    """
    merged: dict = {}
    for snapshot in snapshots:
        for key, entry in snapshot.items():
            if key not in merged:
                merged[key] = dict(entry)
                if merged[key].get("type") == "histogram":
                    merged[key].pop("p50", None)
                    merged[key].pop("p95", None)
                elif merged[key].get("type") == "bucket_histogram":
                    # Detach mutable fields from the input snapshot.
                    merged[key]["bounds"] = list(entry.get("bounds", ()))
                    merged[key]["buckets"] = list(entry.get("buckets", ()))
            else:
                _merge_entry(merged[key], entry, key)
    return {key: merged[key] for key in sorted(merged)}
