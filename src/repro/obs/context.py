"""Cross-process trace context: ids, env propagation, clock anchors.

A single process correlates its telemetry implicitly — spans nest on a
thread, metrics live in one registry.  A *fleet* of worker processes
needs an explicit thread of identity: every shard of telemetry must
say which trace it belongs to, which fleet run spawned it, and which
worker produced it.  This module provides that identity as a frozen
:class:`TraceContext` plus the two halves of W3C-style propagation,
specialized to the only transport a ``multiprocessing`` worker reliably
inherits: environment variables.

- :func:`inject_env` serializes the active context into ``GABLES_*``
  environment variables before workers are spawned;
- :func:`extract_env` (and the convenience :func:`adopt_env_context`)
  reads them back inside the child, so the child's telemetry carries
  the parent's ``trace_id`` and the whole fleet merges into one trace.

Because spans are timed with ``time.perf_counter`` — a *per-process*
monotonic clock with an arbitrary epoch — cross-process timestamps are
meaningless until re-anchored.  :func:`clock_anchor` captures a
wall-clock↔monotonic correspondence for the current process; the
telemetry merger (:mod:`repro.obs.collect`) uses each shard's anchor to
rebase span times onto the shared wall clock so Perfetto lanes from
different workers line up.

Everything here is stdlib-only and adds nothing to hot paths: the
context is consulted when telemetry is *serialized*, not per event.
"""

from __future__ import annotations

import os
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, replace

from ..errors import ObservabilityError

#: Environment variable names used for inject/extract, in spec order.
ENV_TRACE_ID = "GABLES_TRACE_ID"
ENV_PARENT_SPAN = "GABLES_PARENT_SPAN_ID"
ENV_FLEET_RUN = "GABLES_FLEET_RUN_ID"
ENV_WORKER_ID = "GABLES_WORKER_ID"
ENV_SHARD = "GABLES_SHARD"

#: All context-carrying environment variables (for cleanup).
CONTEXT_ENV_VARS = (
    ENV_TRACE_ID, ENV_PARENT_SPAN, ENV_FLEET_RUN, ENV_WORKER_ID, ENV_SHARD,
)

#: HTTP header names used for wire-level propagation, the header-borne
#: analogue of the ``GABLES_*`` environment variables.  The service
#: client injects these on every request; the server adopts them so
#: client and server spans join into one trace (``docs/monitoring.md``).
HEADER_TRACE_ID = "X-Gables-Trace-Id"
HEADER_PARENT_SPAN = "X-Gables-Parent-Span"

#: All context-carrying HTTP headers, in injection order.
CONTEXT_HEADERS = (HEADER_TRACE_ID, HEADER_PARENT_SPAN)


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace id (random, collision-negligible)."""
    return uuid.uuid4().hex


@dataclass(frozen=True)
class TraceContext:
    """Identity one process's telemetry carries.

    ``trace_id`` names the distributed trace (one fleet run = one
    trace); ``parent_span_id`` is the span in the *parent* process
    under which this process's root spans logically nest.
    ``fleet_run_id``/``worker_id``/``shard`` are the fleet provenance
    fields stamped into logs, shard manifests, and bench records.
    """

    trace_id: str
    parent_span_id: int | None = None
    fleet_run_id: str = ""
    worker_id: str = ""
    shard: int | None = None
    request_id: str = ""

    def __post_init__(self) -> None:
        if not self.trace_id:
            raise ObservabilityError("TraceContext needs a non-empty trace_id")

    def child(self, *, worker_id: str, shard: int) -> "TraceContext":
        """The context a worker adopts: same trace, own provenance."""
        return replace(self, worker_id=worker_id, shard=int(shard))

    def to_dict(self) -> dict:
        """A JSON-ready mapping (the shard-manifest field)."""
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "fleet_run_id": self.fleet_run_id,
            "worker_id": self.worker_id,
            "shard": self.shard,
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext":
        """Inverse of :meth:`to_dict`."""
        shard = data.get("shard")
        parent = data.get("parent_span_id")
        return cls(
            trace_id=str(data["trace_id"]),
            parent_span_id=None if parent is None else int(parent),
            fleet_run_id=str(data.get("fleet_run_id", "")),
            worker_id=str(data.get("worker_id", "")),
            shard=None if shard is None else int(shard),
            request_id=str(data.get("request_id", "")),
        )


def new_context(fleet_run_id: str = "") -> TraceContext:
    """A root context for a fresh trace (the fleet parent's)."""
    return TraceContext(trace_id=new_trace_id(), fleet_run_id=fleet_run_id)


#: The process-current context (one per process, like the collectors).
_CURRENT: TraceContext | None = None


def current_context() -> TraceContext | None:
    """The process-current :class:`TraceContext`, or ``None``."""
    return _CURRENT


def set_context(context: TraceContext | None) -> TraceContext | None:
    """Install ``context`` as process-current; returns the previous one."""
    global _CURRENT
    if context is not None and not isinstance(context, TraceContext):
        raise ObservabilityError("set_context needs a TraceContext or None")
    previous = _CURRENT
    _CURRENT = context
    return previous


def reset_context() -> None:
    """Drop the process-current context (test-suite hook)."""
    set_context(None)


@contextmanager
def context_scope(context: TraceContext):
    """Install ``context`` for the duration of a ``with`` block."""
    previous = set_context(context)
    try:
        yield context
    finally:
        set_context(previous)


# ---------------------------------------------------------------------
# Environment-variable propagation
# ---------------------------------------------------------------------


def inject_env(context: TraceContext, env=None) -> dict:
    """Serialize ``context`` into ``env`` (default: ``os.environ``).

    Returns the mapping that was written.  Unset optional fields clear
    any stale variable so a previous fleet run cannot leak identity
    into the next.
    """
    if env is None:
        env = os.environ
    env[ENV_TRACE_ID] = context.trace_id
    optional = {
        ENV_PARENT_SPAN: (
            None if context.parent_span_id is None
            else str(context.parent_span_id)
        ),
        ENV_FLEET_RUN: context.fleet_run_id or None,
        ENV_WORKER_ID: context.worker_id or None,
        ENV_SHARD: None if context.shard is None else str(context.shard),
    }
    for name, value in optional.items():
        if value is None:
            env.pop(name, None)
        else:
            env[name] = value
    return env


def extract_env(env=None) -> TraceContext | None:
    """Read a :class:`TraceContext` back out of ``env``.

    Returns ``None`` when no trace id is present (the process was not
    spawned by an instrumented parent).  Malformed numeric fields raise
    :class:`~repro.errors.ObservabilityError` — a half-written context
    is a bug worth surfacing, not guessing around.
    """
    if env is None:
        env = os.environ
    trace_id = env.get(ENV_TRACE_ID)
    if not trace_id:
        return None

    def int_or_none(name: str):
        raw = env.get(name)
        if raw is None or raw == "":
            return None
        try:
            return int(raw)
        except ValueError:
            raise ObservabilityError(
                f"environment variable {name}={raw!r} is not an integer"
            ) from None

    return TraceContext(
        trace_id=trace_id,
        parent_span_id=int_or_none(ENV_PARENT_SPAN),
        fleet_run_id=env.get(ENV_FLEET_RUN, ""),
        worker_id=env.get(ENV_WORKER_ID, ""),
        shard=int_or_none(ENV_SHARD),
    )


def clear_env(env=None) -> None:
    """Remove every context variable from ``env`` (default: environ)."""
    if env is None:
        env = os.environ
    for name in CONTEXT_ENV_VARS:
        env.pop(name, None)


def adopt_env_context(env=None) -> TraceContext | None:
    """Extract the parent's context and install it process-current.

    The worker-process entry hook: returns the adopted context, or
    ``None`` (leaving the current context untouched) when the
    environment carries no trace.
    """
    context = extract_env(env)
    if context is not None:
        set_context(context)
    return context


@contextmanager
def env_propagation(context: TraceContext, env=None):
    """Inject ``context`` into ``env`` for a ``with`` block, then restore.

    The parent-side half of propagation: wrap worker spawning in this
    scope so children inherit the ``GABLES_*`` variables, without the
    parent's environment staying polluted afterwards.
    """
    if env is None:
        env = os.environ
    saved = {name: env.get(name) for name in CONTEXT_ENV_VARS}
    inject_env(context, env)
    try:
        yield env
    finally:
        for name, value in saved.items():
            if value is None:
                env.pop(name, None)
            else:
                env[name] = value


# ---------------------------------------------------------------------
# HTTP-header propagation (the wire-level half)
# ---------------------------------------------------------------------


def inject_headers(context: TraceContext, headers=None,
                   *, parent_span_id=None) -> dict:
    """Serialize ``context`` into HTTP request ``headers``.

    The wire analogue of :func:`inject_env`: writes
    ``X-Gables-Trace-Id`` and, when known, ``X-Gables-Parent-Span``
    (``parent_span_id`` overrides the context's own, letting a client
    name its *live* request span as the parent).  Returns the mapping
    that was written.
    """
    if headers is None:
        headers = {}
    headers[HEADER_TRACE_ID] = context.trace_id
    if parent_span_id is None:
        parent_span_id = context.parent_span_id
    if parent_span_id is None:
        headers.pop(HEADER_PARENT_SPAN, None)
    else:
        headers[HEADER_PARENT_SPAN] = str(parent_span_id)
    return headers


def extract_headers(headers) -> TraceContext | None:
    """Read a :class:`TraceContext` back out of HTTP ``headers``.

    ``headers`` is any mapping with ``.get`` (an
    ``http.server`` message object works, and is case-insensitive).
    Returns ``None`` when no trace id is present; a malformed parent
    span id raises :class:`~repro.errors.ObservabilityError` just like
    :func:`extract_env` does for the environment.
    """
    trace_id = headers.get(HEADER_TRACE_ID)
    if not trace_id:
        return None
    raw_parent = headers.get(HEADER_PARENT_SPAN)
    if raw_parent is None or raw_parent == "":
        parent_span_id = None
    else:
        try:
            parent_span_id = int(raw_parent)
        except ValueError:
            raise ObservabilityError(
                f"header {HEADER_PARENT_SPAN}={raw_parent!r} is not an "
                "integer"
            ) from None
    return TraceContext(trace_id=str(trace_id),
                        parent_span_id=parent_span_id)


def adopt_header_context(headers) -> TraceContext | None:
    """Extract a wire context and install it process-current.

    The server-side entry hook, mirroring :func:`adopt_env_context`:
    returns the adopted context, or ``None`` (leaving the current
    context untouched) when the request carries no trace headers.
    """
    context = extract_headers(headers)
    if context is not None:
        set_context(context)
    return context


# ---------------------------------------------------------------------
# Wall-clock ↔ monotonic anchoring
# ---------------------------------------------------------------------


def clock_anchor() -> dict:
    """A wall↔monotonic correspondence for *this* process, JSON-ready.

    ``wall_s`` (``time.time``) and ``mono_s`` (``time.perf_counter``)
    are sampled back to back; ``mono_s`` is re-sampled after and the
    midpoint used, bounding the skew of the pair to half the sampling
    gap.  ``wall_s - mono_s`` is the offset that rebases this process's
    span timestamps onto the shared wall clock.
    """
    mono_before = time.perf_counter()
    wall = time.time()
    mono_after = time.perf_counter()
    return {
        "wall_s": wall,
        "mono_s": 0.5 * (mono_before + mono_after),
        "pid": os.getpid(),
    }


def anchor_offset(anchor: dict) -> float:
    """``wall_s - mono_s``: add to a monotonic stamp for wall time."""
    try:
        return float(anchor["wall_s"]) - float(anchor["mono_s"])
    except (KeyError, TypeError, ValueError):
        raise ObservabilityError(
            f"clock anchor must carry numeric wall_s/mono_s, got {anchor!r}"
        ) from None
