"""Trace and metrics serialization: JSONL events, JSON snapshots.

The on-disk trace format is one JSON object per line (JSONL), one line
per *finished* span, in completion order::

    {"name": "core.evaluate", "span_id": 3, "parent_id": 1,
     "thread": "MainThread", "start_s": 0.01, "end_s": 0.02,
     "duration_s": 0.01, "status": "ok", "attributes": {...}}

JSONL keeps traces appendable and greppable; :func:`read_trace_jsonl`
round-trips them back into :class:`~repro.obs.trace.SpanRecord`
objects, :func:`summarize_spans` folds them into a per-path tree (the
``gables trace summarize`` table), and :func:`write_trace_chrome`
re-emits them in the Chrome trace-event format for Perfetto (the
``gables trace export --format chrome`` path).

Metrics snapshots are a single JSON document keyed by metric name (see
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass

from ..errors import ObservabilityError
from .metrics import get_registry
from .trace import SpanRecord, get_tracer


def write_trace_jsonl(path, spans=None) -> int:
    """Write spans (default: the global tracer's) as JSONL.

    Returns the number of events written.
    """
    if spans is None:
        spans = get_tracer().finished_spans()
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in spans:
            handle.write(json.dumps(record.to_dict(), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_trace_jsonl(path) -> tuple:
    """Parse a JSONL trace file back into :class:`SpanRecord` objects."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                records.append(SpanRecord.from_dict(data))
            except (ValueError, KeyError, TypeError) as err:
                raise ObservabilityError(
                    f"{path}:{line_no}: bad trace event ({err})"
                ) from None
    return tuple(records)


def write_metrics_json(path, registry=None) -> dict:
    """Write a metrics snapshot (default: the global registry) as JSON.

    Returns the snapshot that was written.
    """
    if registry is None:
        registry = get_registry()
    snapshot = registry.snapshot()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return snapshot


# ---------------------------------------------------------------------
# Chrome trace-event export (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------


def _json_safe(value):
    """Chrome's trace loader wants strict JSON: no Infinity/NaN."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    return value


def chrome_span_events(
    spans,
    *,
    pid: int,
    process_name: str | None = None,
    clock_offset_s: float = 0.0,
    t0: float = 0.0,
) -> list:
    """One process's spans as raw Chrome trace events (no envelope).

    The multi-process building block behind :func:`chrome_trace_events`
    and the telemetry merger: events are stamped with the *real*
    ``pid`` of the emitting process (so merged traces render one
    Perfetto process lane per worker), threads get stable per-process
    ``tid`` ordinals, ``clock_offset_s`` rebases this process's
    monotonic span stamps onto a shared clock (the wall↔monotonic
    anchor offset, see :func:`repro.obs.context.anchor_offset`), and
    ``t0`` is the shared zero point *after* rebasing.
    """
    closed = [record for record in spans if record.end_s is not None]
    thread_ids: dict = {}
    for record in closed:
        thread_ids.setdefault(record.thread, len(thread_ids) + 1)
    events = []
    if process_name is not None:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        })
    events.extend(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": thread},
        }
        for thread, tid in thread_ids.items()
    )
    for record in closed:
        args = {
            key: _json_safe(value)
            for key, value in record.attributes.items()
        }
        args["span_id"] = record.span_id
        if record.parent_id is not None:
            args["parent_id"] = record.parent_id
        if record.status != "ok":
            args["status"] = record.status
        events.append({
            "name": record.name,
            "cat": "repro",
            "ph": "X",
            "ts": (record.start_s + clock_offset_s - t0) * 1e6,
            "dur": record.duration_s * 1e6,
            "pid": pid,
            "tid": thread_ids[record.thread],
            "args": args,
        })
    return events


def chrome_trace_events(
    spans=None,
    *,
    pid: int | None = None,
    process_name: str | None = None,
) -> dict:
    """Spans (default: the global tracer's) as a Chrome trace document.

    Produces the JSON-object flavour of the trace-event format —
    ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` — with one
    complete (``"ph": "X"``) event per finished span, one
    ``thread_name`` metadata (``"ph": "M"``) event per thread, and an
    optional ``process_name`` metadata event, loadable in Perfetto
    (https://ui.perfetto.dev) and ``chrome://tracing``.  Events carry
    the real ``pid`` of this process (override with ``pid=``) so
    multi-process traces merged from telemetry shards render as
    separate Perfetto lanes.  Timestamps are microseconds relative to
    the earliest span start, so the trace viewport starts at zero.
    """
    if spans is None:
        spans = get_tracer().finished_spans()
    closed = [record for record in spans if record.end_s is not None]
    t0 = min((record.start_s for record in closed), default=0.0)
    events = chrome_span_events(
        closed,
        pid=os.getpid() if pid is None else pid,
        process_name=process_name,
        t0=t0,
    )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace_chrome(path, spans=None) -> int:
    """Write spans as a Chrome trace-event JSON file.

    Returns the number of span (``"X"``) events written.
    """
    document = chrome_trace_events(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, allow_nan=False)
        handle.write("\n")
    return sum(
        1 for event in document["traceEvents"] if event["ph"] == "X"
    )


# ---------------------------------------------------------------------
# Span-tree summarization
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class SpanSummary:
    """Aggregate of all spans sharing one name-path in the trace tree."""

    path: tuple  # span names from root to this node
    count: int
    total_s: float
    min_s: float
    max_s: float
    self_s: float  # total minus time inside child summaries

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def depth(self) -> int:
        return len(self.path) - 1

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


def summarize_spans(spans) -> tuple:
    """Fold span records into per-path aggregates, tree order.

    Spans are grouped by their *name path* (root span name down to the
    span's own name), so repeated calls collapse into one row with a
    count.  Rows come back depth-first: each parent immediately
    followed by its children, children ordered by descending total
    time; root paths by descending total as well.
    """
    by_id = {record.span_id: record for record in spans}

    def name_path(record) -> tuple:
        names = [record.name]
        seen = {record.span_id}
        parent_id = record.parent_id
        while parent_id is not None:
            parent = by_id.get(parent_id)
            if parent is None or parent.span_id in seen:
                break  # orphaned or cyclic: treat as a root
            names.append(parent.name)
            seen.add(parent.span_id)
            parent_id = parent.parent_id
        return tuple(reversed(names))

    totals: dict = {}
    for record in spans:
        if record.end_s is None:
            continue
        path = name_path(record)
        entry = totals.setdefault(
            path, {"count": 0, "total": 0.0,
                   "min": math.inf, "max": -math.inf}
        )
        entry["count"] += 1
        entry["total"] += record.duration_s
        entry["min"] = min(entry["min"], record.duration_s)
        entry["max"] = max(entry["max"], record.duration_s)

    child_time: dict = {}
    for path, entry in totals.items():
        if len(path) > 1:
            parent = path[:-1]
            child_time[parent] = child_time.get(parent, 0.0) + entry["total"]

    def emit(prefix: tuple, out: list) -> None:
        children = [p for p in totals if len(p) == len(prefix) + 1
                    and p[:len(prefix)] == prefix]
        children.sort(key=lambda p: (-totals[p]["total"], p))
        for path in children:
            entry = totals[path]
            out.append(
                SpanSummary(
                    path=path,
                    count=entry["count"],
                    total_s=entry["total"],
                    min_s=entry["min"],
                    max_s=entry["max"],
                    self_s=max(0.0, entry["total"]
                               - child_time.get(path, 0.0)),
                )
            )
            emit(path, out)

    rows: list = []
    emit((), rows)
    return tuple(rows)


def trace_total_seconds(summaries) -> float:
    """Wall time covered by the root spans of a summary."""
    return math.fsum(s.total_s for s in summaries if s.depth == 0)
