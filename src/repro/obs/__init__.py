"""Observability: tracing, profiling, metrics, provenance, benchmarks.

A dependency-free instrumentation layer threaded through the library's
hot paths (model evaluation, the simulator, ERT and design-space
sweeps, report generation):

- :mod:`.trace` — nestable, thread-safe spans on a process-global
  tracer that is a shared no-op when disabled;
- :mod:`.profile` — an aggregating phase-level profiler (self /
  cumulative timing trees) behind ``gables profile -- <subcommand>``;
- :mod:`.metrics` — always-on named counters, gauges, histograms, and
  block timers;
- :mod:`.provenance` — auditable *explain records* for every
  ``evaluate()``, cross-checked against
  :mod:`repro.analysis.bottleneck`;
- :mod:`.export` — JSONL trace events, Chrome/Perfetto trace export,
  JSON metrics snapshots, and the span-tree summaries behind
  ``gables trace summarize``;
- :mod:`.bench` — normalized benchmark records, the append-only
  ``BENCH_HISTORY.jsonl`` store, and rolling-median regression
  detection behind ``gables bench compare``;
- :mod:`.dashboard` — the one-page self-contained HTML dashboard
  behind ``gables report dashboard``;
- :mod:`.expo` — Prometheus-style text exposition of the metrics
  registry, served live at ``GET /metrics``;
- :mod:`.slo` — declarative SLOs with multi-window error-budget
  burn-rate alerts behind ``GET /slo`` and ``gables slo check``
  (``docs/monitoring.md``).

Quickstart::

    from repro import obs

    obs.enable_tracing()
    obs.enable_profiling()
    result = evaluate(soc, workload)          # spans + counters recorded
    obs.write_trace_jsonl("trace.jsonl")
    obs.write_trace_chrome("trace.chrome.json")   # open in Perfetto
    print(obs.format_profile(obs.get_profiler().report()))

Everything here degrades to near-zero overhead when tracing and
profiling are off — the benchmark suite holds the instrumented batch
kernels within 1% of un-instrumented throughput.
"""

from .bench import (
    BenchRecord,
    ComparisonReport,
    ComparisonRow,
    append_history,
    compare_runs,
    detect_regressions,
    git_revision,
    host_fingerprint,
    load_bench_file,
    make_record,
    new_run_id,
    read_history,
    rolling_baseline,
)
from .collect import (
    MergedTelemetry,
    ShardCollector,
    TelemetryShard,
    WorkerHealth,
    discover_shards,
    load_shards,
    merge_profiles,
    merge_telemetry,
    merged_chrome_trace,
    read_shard,
    resource_sample,
    straggler_report,
    write_merged,
)
from .context import (
    TraceContext,
    adopt_env_context,
    adopt_header_context,
    anchor_offset,
    clock_anchor,
    context_scope,
    current_context,
    env_propagation,
    extract_env,
    extract_headers,
    inject_env,
    inject_headers,
    new_context,
    new_trace_id,
    reset_context,
    set_context,
)
from .dashboard import (
    fleet_lanes_svg,
    render_dashboard,
    write_dashboard_html,
    write_fleet_dashboard_html,
    write_serve_dashboard_html,
)
from .expo import (
    exposition_content_type,
    parse_exposition,
    render_exposition,
)
from .export import (
    SpanSummary,
    chrome_span_events,
    chrome_trace_events,
    read_trace_jsonl,
    summarize_spans,
    trace_total_seconds,
    write_metrics_json,
    write_trace_chrome,
    write_trace_jsonl,
)
from .logging import (
    LogRecord,
    StructuredLogger,
    configure_logging,
    format_log_summary,
    get_logger,
    log_event,
    logging_configured,
    read_log_jsonl,
    reset_logging,
    summarize_logs,
    tail_logs,
)
from .metrics import (
    BucketHistogram,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    bucket_histogram,
    counter,
    encode_metric_key,
    gauge,
    get_registry,
    histogram,
    merge_snapshots,
    reset_metrics,
    timer,
)
from .profile import (
    ProfileNode,
    Profiler,
    disable_profiling,
    enable_profiling,
    format_profile,
    get_profiler,
    profile_scope,
    profile_to_dict,
    profiled,
    profiling_enabled,
    reset_profiling,
    write_profile_json,
)
from .provenance import (
    ExplainRecord,
    TermExplain,
    disable_provenance,
    enable_provenance,
    explain,
    explain_history,
    last_explain,
    provenance_enabled,
    reset_provenance,
)
from .slo import (
    BurnWindow,
    RequestWindow,
    SLOEvent,
    SLObjective,
    alert_records,
    append_alerts,
    default_objectives,
    evaluate_objective,
    evaluate_slos,
    format_slo_report,
    history_events,
    observe_request,
    read_alerts,
    request_window,
    reset_slo,
)
from .trace import (
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    reset_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "BenchRecord",
    "BucketHistogram",
    "BurnWindow",
    "ComparisonReport",
    "ComparisonRow",
    "Counter",
    "ExplainRecord",
    "Gauge",
    "Histogram",
    "LogRecord",
    "MergedTelemetry",
    "MetricsRegistry",
    "ProfileNode",
    "Profiler",
    "RequestWindow",
    "SLOEvent",
    "SLObjective",
    "ShardCollector",
    "SpanRecord",
    "SpanSummary",
    "StructuredLogger",
    "TelemetryShard",
    "TermExplain",
    "Timer",
    "TraceContext",
    "Tracer",
    "WorkerHealth",
    "adopt_env_context",
    "adopt_header_context",
    "alert_records",
    "anchor_offset",
    "append_alerts",
    "append_history",
    "bucket_histogram",
    "chrome_span_events",
    "chrome_trace_events",
    "clock_anchor",
    "compare_runs",
    "configure_logging",
    "context_scope",
    "counter",
    "current_context",
    "default_objectives",
    "detect_regressions",
    "discover_shards",
    "disable_profiling",
    "disable_provenance",
    "disable_tracing",
    "enable_profiling",
    "enable_provenance",
    "enable_tracing",
    "encode_metric_key",
    "env_propagation",
    "evaluate_objective",
    "evaluate_slos",
    "explain",
    "explain_history",
    "exposition_content_type",
    "extract_env",
    "extract_headers",
    "fleet_lanes_svg",
    "format_log_summary",
    "format_profile",
    "format_slo_report",
    "gauge",
    "get_logger",
    "get_profiler",
    "get_registry",
    "get_tracer",
    "git_revision",
    "histogram",
    "history_events",
    "host_fingerprint",
    "inject_env",
    "inject_headers",
    "last_explain",
    "load_bench_file",
    "load_shards",
    "log_event",
    "logging_configured",
    "make_record",
    "merge_profiles",
    "merge_snapshots",
    "merge_telemetry",
    "merged_chrome_trace",
    "new_context",
    "new_run_id",
    "new_trace_id",
    "observe_request",
    "parse_exposition",
    "profile_scope",
    "profile_to_dict",
    "profiled",
    "profiling_enabled",
    "provenance_enabled",
    "read_alerts",
    "read_history",
    "read_log_jsonl",
    "read_shard",
    "read_trace_jsonl",
    "render_dashboard",
    "render_exposition",
    "request_window",
    "reset_context",
    "reset_logging",
    "reset_metrics",
    "reset_profiling",
    "reset_provenance",
    "reset_slo",
    "reset_tracing",
    "resource_sample",
    "rolling_baseline",
    "set_context",
    "span",
    "straggler_report",
    "summarize_logs",
    "summarize_spans",
    "tail_logs",
    "timer",
    "trace_total_seconds",
    "tracing_enabled",
    "write_dashboard_html",
    "write_fleet_dashboard_html",
    "write_merged",
    "write_serve_dashboard_html",
    "write_metrics_json",
    "write_profile_json",
    "write_trace_chrome",
    "write_trace_jsonl",
]


def reset_observability() -> None:
    """Reset every process-global collector to pristine.

    The test-suite hook: tracing and profiling disabled and emptied,
    every metric zeroed in place (handles stay live), provenance
    capture off with an empty history, the structured logger closed
    and removed, and the trace context dropped.
    """
    reset_tracing()
    reset_profiling()
    reset_metrics()
    reset_provenance()
    reset_logging()
    reset_context()
    reset_slo()


__all__.append("reset_observability")
