"""Observability: tracing spans, metrics, and evaluation provenance.

A dependency-free instrumentation layer threaded through the library's
hot paths (model evaluation, the simulator, ERT and design-space
sweeps, report generation):

- :mod:`.trace` — nestable, thread-safe spans on a process-global
  tracer that is a shared no-op when disabled;
- :mod:`.metrics` — always-on named counters, gauges, and histograms;
- :mod:`.provenance` — auditable *explain records* for every
  ``evaluate()``, cross-checked against
  :mod:`repro.analysis.bottleneck`;
- :mod:`.export` — JSONL trace events, JSON metrics snapshots, and the
  span-tree summaries behind ``gables trace summarize``.

Quickstart::

    from repro import obs

    obs.enable_tracing()
    result = evaluate(soc, workload)          # spans + counters recorded
    obs.write_trace_jsonl("trace.jsonl")
    print(obs.get_registry().snapshot())

Everything here degrades to near-zero overhead when tracing is off —
the benchmark suite holds instrumented ``evaluate()`` within a few
percent of un-instrumented throughput.
"""

from .export import (
    SpanSummary,
    read_trace_jsonl,
    summarize_spans,
    trace_total_seconds,
    write_metrics_json,
    write_trace_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    reset_metrics,
)
from .provenance import (
    ExplainRecord,
    TermExplain,
    disable_provenance,
    enable_provenance,
    explain,
    explain_history,
    last_explain,
    provenance_enabled,
    reset_provenance,
)
from .trace import (
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    reset_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "ExplainRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "SpanSummary",
    "TermExplain",
    "Tracer",
    "counter",
    "disable_provenance",
    "disable_tracing",
    "enable_provenance",
    "enable_tracing",
    "explain",
    "explain_history",
    "gauge",
    "get_registry",
    "get_tracer",
    "histogram",
    "last_explain",
    "provenance_enabled",
    "read_trace_jsonl",
    "reset_metrics",
    "reset_provenance",
    "reset_tracing",
    "span",
    "summarize_spans",
    "trace_total_seconds",
    "tracing_enabled",
    "write_metrics_json",
    "write_trace_jsonl",
]


def reset_observability() -> None:
    """Reset tracing, metrics, and provenance to a pristine state.

    The test-suite hook: tracing disabled and emptied, every metric
    zeroed in place (handles stay live), provenance capture off with an
    empty history.
    """
    reset_tracing()
    reset_metrics()
    reset_provenance()


__all__.append("reset_observability")
