"""Observability: tracing, profiling, metrics, provenance, benchmarks.

A dependency-free instrumentation layer threaded through the library's
hot paths (model evaluation, the simulator, ERT and design-space
sweeps, report generation):

- :mod:`.trace` — nestable, thread-safe spans on a process-global
  tracer that is a shared no-op when disabled;
- :mod:`.profile` — an aggregating phase-level profiler (self /
  cumulative timing trees) behind ``gables profile -- <subcommand>``;
- :mod:`.metrics` — always-on named counters, gauges, histograms, and
  block timers;
- :mod:`.provenance` — auditable *explain records* for every
  ``evaluate()``, cross-checked against
  :mod:`repro.analysis.bottleneck`;
- :mod:`.export` — JSONL trace events, Chrome/Perfetto trace export,
  JSON metrics snapshots, and the span-tree summaries behind
  ``gables trace summarize``;
- :mod:`.bench` — normalized benchmark records, the append-only
  ``BENCH_HISTORY.jsonl`` store, and rolling-median regression
  detection behind ``gables bench compare``;
- :mod:`.dashboard` — the one-page self-contained HTML dashboard
  behind ``gables report dashboard``.

Quickstart::

    from repro import obs

    obs.enable_tracing()
    obs.enable_profiling()
    result = evaluate(soc, workload)          # spans + counters recorded
    obs.write_trace_jsonl("trace.jsonl")
    obs.write_trace_chrome("trace.chrome.json")   # open in Perfetto
    print(obs.format_profile(obs.get_profiler().report()))

Everything here degrades to near-zero overhead when tracing and
profiling are off — the benchmark suite holds the instrumented batch
kernels within 1% of un-instrumented throughput.
"""

from .bench import (
    BenchRecord,
    ComparisonReport,
    ComparisonRow,
    append_history,
    compare_runs,
    detect_regressions,
    git_revision,
    host_fingerprint,
    load_bench_file,
    make_record,
    new_run_id,
    read_history,
    rolling_baseline,
)
from .dashboard import render_dashboard, write_dashboard_html
from .export import (
    SpanSummary,
    chrome_trace_events,
    read_trace_jsonl,
    summarize_spans,
    trace_total_seconds,
    write_metrics_json,
    write_trace_chrome,
    write_trace_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    counter,
    gauge,
    get_registry,
    histogram,
    reset_metrics,
    timer,
)
from .profile import (
    ProfileNode,
    Profiler,
    disable_profiling,
    enable_profiling,
    format_profile,
    get_profiler,
    profile_scope,
    profile_to_dict,
    profiled,
    profiling_enabled,
    reset_profiling,
    write_profile_json,
)
from .provenance import (
    ExplainRecord,
    TermExplain,
    disable_provenance,
    enable_provenance,
    explain,
    explain_history,
    last_explain,
    provenance_enabled,
    reset_provenance,
)
from .trace import (
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    reset_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "BenchRecord",
    "ComparisonReport",
    "ComparisonRow",
    "Counter",
    "ExplainRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProfileNode",
    "Profiler",
    "SpanRecord",
    "SpanSummary",
    "TermExplain",
    "Timer",
    "Tracer",
    "append_history",
    "chrome_trace_events",
    "compare_runs",
    "counter",
    "detect_regressions",
    "disable_profiling",
    "disable_provenance",
    "disable_tracing",
    "enable_profiling",
    "enable_provenance",
    "enable_tracing",
    "explain",
    "explain_history",
    "format_profile",
    "gauge",
    "get_profiler",
    "get_registry",
    "get_tracer",
    "git_revision",
    "histogram",
    "host_fingerprint",
    "last_explain",
    "load_bench_file",
    "make_record",
    "new_run_id",
    "profile_scope",
    "profile_to_dict",
    "profiled",
    "profiling_enabled",
    "provenance_enabled",
    "read_history",
    "read_trace_jsonl",
    "render_dashboard",
    "reset_metrics",
    "reset_profiling",
    "reset_provenance",
    "reset_tracing",
    "rolling_baseline",
    "span",
    "summarize_spans",
    "timer",
    "trace_total_seconds",
    "tracing_enabled",
    "write_dashboard_html",
    "write_metrics_json",
    "write_profile_json",
    "write_trace_chrome",
    "write_trace_jsonl",
]


def reset_observability() -> None:
    """Reset tracing, profiling, metrics, and provenance to pristine.

    The test-suite hook: tracing and profiling disabled and emptied,
    every metric zeroed in place (handles stay live), provenance
    capture off with an empty history.
    """
    reset_tracing()
    reset_profiling()
    reset_metrics()
    reset_provenance()


__all__.append("reset_observability")
