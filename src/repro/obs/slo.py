"""Declarative SLOs with multi-window error-budget burn-rate alerts.

An SLO turns "the service feels slow" into an engineering contract:
*99.9% of requests succeed* (availability) or *p99 latency stays under
250 ms* (latency).  The error budget is the tolerated failure fraction
(``1 - objective``); the **burn rate** is how fast the service is
spending it — an error rate equal to the budget burns at rate 1.0 and
exhausts the budget exactly at the window's end.

Alerting follows the multi-window rule from the SRE workbook: an
objective *breaches* a :class:`BurnWindow` only when **both** the long
window (is the burn sustained?) and the short window (is it still
happening?) exceed ``max_burn``.  That keeps one transient spike from
paging while a sustained regression pages within minutes.

Two event sources feed the engine:

- the **live window** — a bounded process-global :class:`RequestWindow`
  the HTTP server feeds one event per request (outcome + latency), the
  basis of ``GET /slo``;
- **bench history** — rolling ``serve.loadgen.p99`` records in
  ``BENCH_HISTORY.jsonl`` (:func:`history_events`), the basis of
  ``gables slo check --history``.

Breaches become structured alert records appended to ``ALERTS.jsonl``
(:func:`append_alerts`); page-severity burns make ``gables slo check``
exit nonzero via :class:`~repro.errors.ObservabilityError` with code
``SLO_BURN_RATE_EXCEEDED``.  See ``docs/monitoring.md``.
"""

from __future__ import annotations

import calendar
import threading
import time
from collections import deque
from dataclasses import dataclass

from ..errors import ObservabilityError

__all__ = [
    "DEFAULT_BURN_WINDOWS",
    "SEVERITIES",
    "BurnWindow",
    "SLObjective",
    "SLOEvent",
    "RequestWindow",
    "request_window",
    "observe_request",
    "reset_slo",
    "default_objectives",
    "evaluate_objective",
    "evaluate_slos",
    "history_events",
    "alert_records",
    "append_alerts",
    "read_alerts",
    "format_slo_report",
]

#: Alert severities, least to most urgent (the escalation order).
SEVERITIES = ("ticket", "page")


def _bad_objective(message: str) -> ObservabilityError:
    return ObservabilityError(message, code="SLO_BAD_OBJECTIVE")


@dataclass(frozen=True)
class BurnWindow:
    """One multi-window burn-rate alert rule.

    ``long_s`` asks "is the burn sustained?", ``short_s`` asks "is it
    still happening right now?"; the rule fires only when both windows
    burn at ``max_burn`` or faster.
    """

    long_s: float
    short_s: float
    max_burn: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if not self.short_s > 0 or not self.long_s >= self.short_s:
            raise _bad_objective(
                f"burn window needs long_s >= short_s > 0, got "
                f"long_s={self.long_s!r} short_s={self.short_s!r}"
            )
        if not self.max_burn > 0:
            raise _bad_objective(
                f"burn window needs max_burn > 0, got {self.max_burn!r}"
            )
        if self.severity not in SEVERITIES:
            raise _bad_objective(
                f"severity must be one of {SEVERITIES}, "
                f"got {self.severity!r}"
            )

    def to_dict(self) -> dict:
        return {
            "long_s": self.long_s,
            "short_s": self.short_s,
            "max_burn": self.max_burn,
            "severity": self.severity,
        }


#: The classic fast-burn/slow-burn pair: page on a burn that would
#: spend a day's budget in ~100 minutes, ticket on a slow leak.
DEFAULT_BURN_WINDOWS = (
    BurnWindow(long_s=3600.0, short_s=300.0, max_burn=14.4,
               severity="page"),
    BurnWindow(long_s=6 * 3600.0, short_s=1800.0, max_burn=6.0,
               severity="ticket"),
)


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective over the request stream.

    ``kind`` is ``"availability"`` (an event is good when the request
    succeeded) or ``"latency"`` (good when it completed within
    ``threshold_s``).  ``objective`` is the target good fraction; the
    error budget is its complement.
    """

    name: str
    kind: str
    objective: float
    threshold_s: float | None = None
    windows: tuple = DEFAULT_BURN_WINDOWS

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise _bad_objective(
                f"objective kind must be availability or latency, "
                f"got {self.kind!r}"
            )
        if not 0.0 < self.objective < 1.0:
            raise _bad_objective(
                f"objective must be in (0, 1), got {self.objective!r}"
            )
        if self.kind == "latency":
            if self.threshold_s is None or not self.threshold_s > 0:
                raise _bad_objective(
                    f"latency objective {self.name!r} needs threshold_s > 0"
                )
        if not self.windows:
            raise _bad_objective(
                f"objective {self.name!r} needs at least one burn window"
            )
        object.__setattr__(self, "windows", tuple(self.windows))

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad-event fraction."""
        return 1.0 - self.objective

    def is_good(self, event: "SLOEvent") -> bool:
        """Whether ``event`` counts against this objective's budget."""
        if self.kind == "availability":
            return event.ok
        return event.ok and event.latency_s <= self.threshold_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "threshold_s": self.threshold_s,
            "windows": [window.to_dict() for window in self.windows],
        }


@dataclass(frozen=True)
class SLOEvent:
    """One observation: a request (weight 1) or a weighted aggregate."""

    ts: float
    ok: bool
    latency_s: float = 0.0
    weight: float = 1.0


def default_objectives(*, availability: float = 0.999,
                       latency_objective: float = 0.99,
                       threshold_s: float = 0.25,
                       windows=None) -> tuple:
    """The serve stack's standard objective pair.

    ``threshold_s`` should come from
    :attr:`~repro.serve.service.ServiceConfig.slo_p99_s` so the SLO the
    engine enforces is the one the service declares.
    """
    windows = tuple(windows) if windows else DEFAULT_BURN_WINDOWS
    return (
        SLObjective(name="availability", kind="availability",
                    objective=availability, windows=windows),
        SLObjective(name="latency_p99", kind="latency",
                    objective=latency_objective, threshold_s=threshold_s,
                    windows=windows),
    )


class RequestWindow:
    """A bounded, thread-safe buffer of recent request observations.

    The live half of the engine: the HTTP server appends one event per
    request; ``GET /slo`` evaluates objectives over whatever the
    window still holds.  Bounded so a long-lived server cannot grow
    without limit — old events age out of every burn window anyway.
    """

    def __init__(self, max_events: int = 65536) -> None:
        if max_events < 1:
            raise ObservabilityError(
                f"request window needs max_events >= 1, got {max_events}"
            )
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=max_events)

    def observe(self, *, ok: bool, latency_s: float, ts=None) -> SLOEvent:
        """Record one request outcome."""
        event = SLOEvent(
            ts=time.time() if ts is None else float(ts),
            ok=bool(ok),
            latency_s=float(latency_s),
        )
        with self._lock:
            self._events.append(event)
        return event

    def events(self) -> tuple:
        """All retained events, oldest first."""
        with self._lock:
            return tuple(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def reset(self) -> None:
        with self._lock:
            self._events.clear()


#: The process-global live window the server feeds.
_WINDOW = RequestWindow()


def request_window() -> RequestWindow:
    """The process-global live request window."""
    return _WINDOW


def observe_request(*, ok: bool, latency_s: float, ts=None) -> SLOEvent:
    """Record one request into the global window (the server hook)."""
    return _WINDOW.observe(ok=ok, latency_s=latency_s, ts=ts)


def reset_slo() -> None:
    """Clear the global request window (test-suite hook)."""
    _WINDOW.reset()


# ---------------------------------------------------------------------
# Burn-rate evaluation
# ---------------------------------------------------------------------


def _window_burn(objective: SLObjective, events, window_s: float,
                 now: float):
    """The burn rate over the trailing ``window_s``, or ``None`` (no data)."""
    cutoff = now - window_s
    total = 0.0
    bad = 0.0
    for event in events:
        if event.ts < cutoff or event.ts > now:
            continue
        total += event.weight
        if not objective.is_good(event):
            bad += event.weight
    if total <= 0:
        return None
    return (bad / total) / objective.budget


def evaluate_objective(objective: SLObjective, events, *,
                       now=None) -> dict:
    """Evaluate one objective's burn windows over ``events``.

    Returns a JSON-ready verdict: per-window long/short burns (``None``
    where the window held no data), which windows breached (both burns
    present and >= ``max_burn``), and the worst breached severity
    (``""`` when the objective is healthy).
    """
    if now is None:
        now = time.time()
    events = tuple(events)
    windows = []
    worst = ""
    for window in objective.windows:
        long_burn = _window_burn(objective, events, window.long_s, now)
        short_burn = _window_burn(objective, events, window.short_s, now)
        breached = (
            long_burn is not None and short_burn is not None
            and long_burn >= window.max_burn
            and short_burn >= window.max_burn
        )
        windows.append({
            **window.to_dict(),
            "long_burn": long_burn,
            "short_burn": short_burn,
            "breached": breached,
        })
        if breached and (not worst or SEVERITIES.index(window.severity)
                         > SEVERITIES.index(worst)):
            worst = window.severity
    return {
        "name": objective.name,
        "kind": objective.kind,
        "objective": objective.objective,
        "budget": objective.budget,
        "threshold_s": objective.threshold_s,
        "events": sum(e.weight for e in events),
        "windows": windows,
        "breached": bool(worst),
        "severity": worst,
    }


def evaluate_slos(objectives, events, *, now=None) -> dict:
    """Evaluate every objective over one event stream.

    The report ``GET /slo`` serves: per-objective verdicts plus the
    overall worst severity, ready for :func:`alert_records`.
    """
    if now is None:
        now = time.time()
    verdicts = [
        evaluate_objective(objective, events, now=now)
        for objective in objectives
    ]
    worst = ""
    for verdict in verdicts:
        severity = verdict["severity"]
        if severity and (not worst or SEVERITIES.index(severity)
                         > SEVERITIES.index(worst)):
            worst = severity
    return {
        "now": now,
        "objectives": verdicts,
        "breached": bool(worst),
        "severity": worst,
    }


# ---------------------------------------------------------------------
# Bench-history events (the offline half)
# ---------------------------------------------------------------------


def _record_ts(raw) -> float:
    """A bench record timestamp as epoch seconds; 0.0 when unparsable.

    History records carry ISO-8601 UTC strings
    (``2026-08-09T12:34:56Z``); numeric strings pass through.  A zero
    timestamp lands outside every burn window, so unparsable records
    simply never contribute to a breach.
    """
    if not raw:
        return 0.0
    try:
        return float(raw)
    except (TypeError, ValueError):
        pass
    try:
        return float(calendar.timegm(
            time.strptime(str(raw), "%Y-%m-%dT%H:%M:%SZ")
        ))
    except ValueError:
        return 0.0


def history_events(records, *, metric: str = "serve.loadgen.p99",
                   threshold_s: float) -> tuple:
    """Turn loadgen SLO bench records into weighted latency events.

    Each ``serve.loadgen.p99`` record summarizes one load run: it
    becomes a single event that is *good* when the recorded p99 stayed
    within ``threshold_s``, weighted by the run's sample count (the
    ``samples`` meta field the loadgen stamps) so a 1000-request run
    outweighs a 10-request smoke test.
    """
    if not threshold_s > 0:
        raise _bad_objective(
            f"history events need threshold_s > 0, got {threshold_s!r}"
        )
    events = []
    for record in records:
        if record.name != metric:
            continue
        meta = record.meta or {}
        weight = meta.get("samples", meta.get("clean_requests", 1))
        events.append(SLOEvent(
            ts=_record_ts(record.timestamp),
            ok=True,
            latency_s=float(record.value),
            weight=max(1.0, float(weight)),
        ))
    return tuple(events)


# ---------------------------------------------------------------------
# Alerts
# ---------------------------------------------------------------------


def alert_records(report: dict, *, source: str = "") -> list:
    """Structured alert documents for every breached objective."""
    alerts = []
    for verdict in report.get("objectives", ()):
        if not verdict.get("breached"):
            continue
        breached = [w for w in verdict["windows"] if w["breached"]]
        alerts.append({
            "kind": "slo_alert",
            "ts": report.get("now", 0.0),
            "source": source,
            "objective": verdict["name"],
            "severity": verdict["severity"],
            "budget": verdict["budget"],
            "windows": breached,
        })
    return alerts


def append_alerts(path, alerts) -> list:
    """Append alert documents to ``path`` (ALERTS.jsonl); returns them."""
    from ..io.jsonl import append_jsonl

    for alert in alerts:
        append_jsonl(path, alert)
    return list(alerts)


def read_alerts(path) -> tuple:
    """Read alert documents back, tolerating a torn final line."""
    from ..io.jsonl import read_jsonl_tolerant

    return read_jsonl_tolerant(
        path, error=ObservabilityError, label="alert record"
    )


def format_slo_report(report: dict) -> str:
    """The :func:`evaluate_slos` report as aligned, human-scannable text."""
    lines = []
    for verdict in report.get("objectives", ()):
        threshold = (
            f" <= {verdict['threshold_s']:g}s"
            if verdict.get("threshold_s") else ""
        )
        state = (
            f"BREACH ({verdict['severity']})"
            if verdict["breached"] else "ok"
        )
        lines.append(
            f"{verdict['name']:<16} {verdict['kind']}{threshold} "
            f"objective={verdict['objective']:g} "
            f"events={verdict['events']:g}  {state}"
        )
        for window in verdict["windows"]:
            def fmt(burn):
                return "n/a" if burn is None else f"{burn:.2f}"
            lines.append(
                f"  {window['severity']:<7} "
                f"long {window['long_s']:g}s burn {fmt(window['long_burn'])} "
                f"/ short {window['short_s']:g}s "
                f"burn {fmt(window['short_burn'])} "
                f"(max {window['max_burn']:g})"
                + ("  BREACHED" if window["breached"] else "")
            )
    overall = (
        f"SLO BREACH: severity {report['severity']}"
        if report.get("breached") else "all objectives within budget"
    )
    lines.append(overall)
    return "\n".join(lines)
