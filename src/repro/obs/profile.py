"""Deterministic phase-level profiler with near-zero disabled overhead.

Where :mod:`repro.obs.trace` records individual spans for later
inspection, the profiler *aggregates in place*: entering the same
scope name twice under the same parent folds into one tree node with a
call count and a cumulative total, so a 10k-point sweep costs 10k tiny
node updates rather than 10k retained records.  The result answers
"where did the time go, per pipeline stage?" directly::

    from repro.obs import enable_profiling, profile_scope

    enable_profiling()
    with profile_scope("explore.sweep"):
        ...                      # nested scopes accumulate below
    print(format_profile(get_profiler().report()))

Instrumented stages across the library (lowering construction,
``execute_lowered_phase``, the batch kernels, ``compose_result``, the
ERT sweep's measure/retry/outlier/fit stages, explore and report
generation) all funnel through :func:`profile_scope`, and the CLI's
``gables profile -- <subcommand>`` wraps any invocation in a root
scope and prints the self/cumulative tree.

Design constraints mirror the tracer, in priority order:

1. *Disabled is free.*  :func:`profile_scope` is one attribute check
   returning a shared no-op scope; hot paths additionally guard with
   :func:`profiling_enabled` so the disabled path skips the ``with``
   statement entirely.  The benchmark suite asserts the instrumented
   batch entry stays within 1% of the bare kernel.
2. *Thread safe.*  Scope stacks are thread-local; node creation is
   lock-protected, node updates are GIL-atomic attribute adds (same
   contract as :mod:`repro.obs.metrics`).
3. *Deterministic and dependency free.*  ``time.perf_counter`` and the
   stdlib only; an injectable clock makes the tree exactly testable.
"""

from __future__ import annotations

import functools
import math
import threading
import time
from dataclasses import dataclass

from ..errors import ObservabilityError


class _Node:
    """One mutable aggregation cell: (parent path, name) -> totals."""

    __slots__ = ("name", "count", "total_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.children: dict = {}


@dataclass(frozen=True)
class ProfileNode:
    """An immutable snapshot of one profile-tree node.

    ``total_s`` is cumulative (includes children); ``self_s`` is the
    time not attributed to any instrumented child, clamped at 0 (a
    child can outlast its parent only through clock jitter).
    """

    name: str
    count: int
    total_s: float
    self_s: float
    children: tuple

    def walk(self, depth: int = 0):
        """Yield ``(depth, node)`` pairs, depth-first, children in
        descending total-time order (the report order)."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> dict:
        """A JSON-ready mapping of this subtree."""
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileNode":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            count=int(data["count"]),
            total_s=float(data["total_s"]),
            self_s=float(data["self_s"]),
            children=tuple(
                cls.from_dict(child) for child in data.get("children", ())
            ),
        )


class _ActiveScope:
    """Context manager for one live profiling scope on one thread."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_ActiveScope":
        self._profiler._enter(self._name)
        self._start = self._profiler._clock()
        return self

    def __exit__(self, *_exc) -> bool:
        elapsed = self._profiler._clock() - self._start
        self._profiler._exit(self._name, elapsed)
        return False  # never swallow exceptions


class _NullScope:
    """The shared do-nothing scope handed out while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


NULL_SCOPE = _NullScope()


class Profiler:
    """Aggregates nested scopes into a per-thread-merged timing tree.

    A fresh profiler starts *disabled*; :func:`enable_profiling` (or
    setting ``profiler.enabled = True``) turns collection on.  Scopes
    opened under the same parent path with the same name share one
    node, whatever thread they ran on.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self.enabled = False
        self._clock = clock
        self._lock = threading.Lock()
        self._local = threading.local()
        self._root = _Node("")

    # -- scope lifecycle -----------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def scope(self, name: str) -> _ActiveScope:
        """Open a scope; use as a context manager."""
        if not name:
            raise ObservabilityError("profile scope name must be non-empty")
        return _ActiveScope(self, name)

    def _enter(self, name: str) -> None:
        stack = self._stack()
        parent = stack[-1] if stack else self._root
        node = parent.children.get(name)
        if node is None:
            with self._lock:
                node = parent.children.get(name)
                if node is None:
                    node = parent.children[name] = _Node(name)
        stack.append(node)

    def _exit(self, name: str, elapsed: float) -> None:
        stack = self._stack()
        # Exception safety: unwind past any scopes a non-local exit
        # left open above us (mirrors the tracer's contract).
        while stack:
            node = stack.pop()
            if node.name == name:
                node.count += 1
                node.total_s += elapsed
                break

    # -- inspection ----------------------------------------------------

    def report(self) -> tuple:
        """Snapshot the tree as :class:`ProfileNode` roots.

        Roots (and every child list) come back in descending cumulative
        time; ``self_s`` is computed here, once, from the frozen totals.
        """
        with self._lock:
            return tuple(
                _freeze(child)
                for child in _ordered(self._root.children)
            )

    def total_seconds(self) -> float:
        """Cumulative wall time across the root scopes."""
        with self._lock:
            return math.fsum(
                node.total_s for node in self._root.children.values()
            )

    def active_depth(self) -> int:
        """How many scopes are open on the calling thread."""
        return len(self._stack())

    def reset(self) -> None:
        """Drop the collected tree (the enabled flag is untouched)."""
        with self._lock:
            self._root = _Node("")
        self._local = threading.local()


def _ordered(children: dict) -> list:
    return sorted(
        children.values(), key=lambda node: (-node.total_s, node.name)
    )


def _freeze(node: _Node) -> ProfileNode:
    frozen_children = tuple(
        _freeze(child) for child in _ordered(node.children)
    )
    child_total = math.fsum(child.total_s for child in frozen_children)
    return ProfileNode(
        name=node.name,
        count=node.count,
        total_s=node.total_s,
        self_s=max(0.0, node.total_s - child_total),
        children=frozen_children,
    )


#: The process-global profiler used by all library instrumentation.
_PROFILER = Profiler()


def get_profiler() -> Profiler:
    """The process-global profiler."""
    return _PROFILER


def profiling_enabled() -> bool:
    """True when the global profiler is collecting."""
    return _PROFILER.enabled


def enable_profiling() -> Profiler:
    """Turn the global profiler on and return it."""
    _PROFILER.enabled = True
    return _PROFILER


def disable_profiling() -> None:
    """Turn the global profiler off (the collected tree is kept)."""
    _PROFILER.enabled = False


def reset_profiling() -> None:
    """Disable the global profiler and drop everything it collected."""
    _PROFILER.enabled = False
    _PROFILER.reset()


def profile_scope(name: str):
    """Open a scope on the global profiler, or a no-op when disabled.

    The disabled path is a single attribute check returning a shared
    singleton — cheap enough for per-evaluation instrumentation on hot
    loops (hot paths additionally guard with
    :func:`profiling_enabled` to skip the ``with`` statement too).
    """
    if not _PROFILER.enabled:
        return NULL_SCOPE
    return _PROFILER.scope(name)


def profiled(name=None):
    """Decorator form of :func:`profile_scope`.

    Use bare (``@profiled``, scope named ``module.qualname``) or with
    an explicit scope name (``@profiled("ert.fit_roofline")``).  The
    disabled path adds one attribute check per call.
    """

    def decorate(fn, scope_name=None):
        scope_name = scope_name or (
            f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__qualname__}"
        )

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _PROFILER.enabled:
                return fn(*args, **kwargs)
            with _PROFILER.scope(scope_name):
                return fn(*args, **kwargs)

        return wrapper

    if callable(name):  # used as @profiled without parentheses
        return decorate(name)
    return lambda fn: decorate(fn, name)


# ---------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------


def format_profile(nodes, total_s: float | None = None) -> str:
    """The self/cumulative timing tree as aligned text.

    ``nodes`` is the output of :meth:`Profiler.report`; ``total_s``
    overrides the percentage denominator (defaults to the sum of the
    root totals — pass the end-to-end wall time to report coverage
    against it instead).
    """
    nodes = tuple(nodes)
    if total_s is None:
        total_s = math.fsum(node.total_s for node in nodes)
    rows = [("phase", "calls", "total (s)", "self (s)", "% total")]
    for root in nodes:
        for depth, node in root.walk():
            share = 100.0 * node.total_s / total_s if total_s > 0 else 0.0
            rows.append((
                "  " * depth + node.name,
                str(node.count),
                f"{node.total_s:.6f}",
                f"{node.self_s:.6f}",
                f"{share:.1f}",
            ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for row in rows:
        lines.append(
            row[0].ljust(widths[0])
            + "".join(
                "  " + cell.rjust(widths[i])
                for i, cell in enumerate(row[1:], start=1)
            )
        )
    return "\n".join(lines)


def profile_to_dict(nodes) -> dict:
    """The whole report as one JSON-ready document."""
    nodes = tuple(nodes)
    return {
        "schema": 1,
        "total_s": math.fsum(node.total_s for node in nodes),
        "tree": [node.to_dict() for node in nodes],
    }


def write_profile_json(path, nodes=None) -> dict:
    """Write a profile report (default: the global profiler's) as JSON.

    Returns the document that was written.
    """
    import json

    if nodes is None:
        nodes = _PROFILER.report()
    document = profile_to_dict(nodes)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document
