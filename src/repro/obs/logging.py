"""Dependency-free structured JSONL logging, correlated to traces.

``logging.basicConfig`` gives humans lines to read; a fleet of worker
processes needs logs a *program* can merge, filter, and join against
spans.  This module writes one JSON object per line with the fields
that make cross-process debugging possible::

    {"ts": 1754650000.123, "level": "info", "event": "fleet.point",
     "message": "", "pid": 4242, "thread": "MainThread",
     "trace_id": "9f1c...", "span_id": 17, "worker_id": "w1",
     "fields": {"spec": "Qualcomm-2016-003"}}

Correlation is automatic: every record stamps the process-current
:class:`~repro.obs.context.TraceContext` (trace id, worker id) and the
innermost *active* span id of the global tracer, so a merged log line
can be joined back to the exact span that emitted it.

Design constraints mirror the rest of ``repro.obs``:

1. *Disabled is free.*  :func:`log_event` is one module-global ``None``
   check when no logger is configured — cheap enough to leave in the
   fleet evaluation loop, and the benchmark suite holds the hooked
   loop within the 1% disabled-overhead budget.
2. *Crash tolerant.*  Records are appended and flushed eagerly;
   :func:`read_log_jsonl` tolerates a torn final line (an interrupted
   append) exactly like :mod:`repro.resilience.checkpoint`, but fails
   loudly on corruption anywhere else.
3. *Dependency free.*  ``json``, ``time``, ``threading`` only.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

from ..errors import ObservabilityError
from .context import current_context
from .trace import get_tracer

#: Accepted levels, least to most severe (the filtering order).
LOG_LEVELS = ("debug", "info", "warning", "error")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LOG_LEVELS)}


@dataclass(frozen=True)
class LogRecord:
    """One structured log line (the JSONL schema, field for field)."""

    ts: float  # wall-clock epoch seconds (time.time)
    level: str
    event: str
    message: str = ""
    pid: int = 0
    thread: str = ""
    trace_id: str = ""
    span_id: int | None = None
    worker_id: str = ""
    request_id: str = ""
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "ts": self.ts,
            "level": self.level,
            "event": self.event,
            "message": self.message,
            "pid": self.pid,
            "thread": self.thread,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "worker_id": self.worker_id,
            "request_id": self.request_id,
            "fields": dict(self.fields),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogRecord":
        span_id = data.get("span_id")
        return cls(
            ts=float(data["ts"]),
            level=str(data["level"]),
            event=str(data["event"]),
            message=str(data.get("message", "")),
            pid=int(data.get("pid", 0)),
            thread=str(data.get("thread", "")),
            trace_id=str(data.get("trace_id", "")),
            span_id=None if span_id is None else int(span_id),
            worker_id=str(data.get("worker_id", "")),
            request_id=str(data.get("request_id", "")),
            fields=dict(data.get("fields", {})),
        )


class StructuredLogger:
    """Appends correlated JSONL records to one file.

    Thread safe (one lock around the append) and crash tolerant (each
    record is flushed before the lock is released).  The logger keeps
    its file handle open for the lifetime of the run; :meth:`close` is
    idempotent.
    """

    def __init__(self, path, *, min_level: str = "debug",
                 clock=time.time) -> None:
        if min_level not in _LEVEL_RANK:
            raise ObservabilityError(
                f"min_level must be one of {LOG_LEVELS}, got {min_level!r}"
            )
        self.path = os.fspath(path)
        self.min_level = min_level
        self._min_rank = _LEVEL_RANK[min_level]
        self._clock = clock
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        self._written = 0

    @property
    def written(self) -> int:
        """Records written since construction."""
        return self._written

    def log(self, level: str, event: str, message: str = "",
            **fields) -> LogRecord | None:
        """Append one record; returns it, or ``None`` when filtered.

        The active span id comes from the calling thread's innermost
        open span (the tracer's stack), so a log line emitted inside
        ``with span(...)`` joins to that span after merge.
        """
        rank = _LEVEL_RANK.get(level)
        if rank is None:
            raise ObservabilityError(
                f"log level must be one of {LOG_LEVELS}, got {level!r}"
            )
        if rank < self._min_rank:
            return None
        context = current_context()
        stack = get_tracer()._stack()
        record = LogRecord(
            ts=self._clock(),
            level=level,
            event=event,
            message=message,
            pid=os.getpid(),
            thread=threading.current_thread().name,
            trace_id=context.trace_id if context else "",
            span_id=stack[-1].span_id if stack else None,
            worker_id=context.worker_id if context else "",
            request_id=context.request_id if context else "",
            fields=fields,
        )
        line = json.dumps(record.to_dict(), sort_keys=True, default=repr)
        with self._lock:
            if self._handle.closed:
                return None
            self._handle.write(line + "\n")
            self._handle.flush()
            self._written += 1
        return record

    def debug(self, event: str, message: str = "", **fields):
        return self.log("debug", event, message, **fields)

    def info(self, event: str, message: str = "", **fields):
        return self.log("info", event, message, **fields)

    def warning(self, event: str, message: str = "", **fields):
        return self.log("warning", event, message, **fields)

    def error(self, event: str, message: str = "", **fields):
        return self.log("error", event, message, **fields)

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


#: The process-global logger; ``None`` keeps :func:`log_event` free.
_LOGGER: StructuredLogger | None = None


def configure_logging(path, *, min_level: str = "debug") -> StructuredLogger:
    """Install a global :class:`StructuredLogger` writing to ``path``."""
    global _LOGGER
    if _LOGGER is not None:
        _LOGGER.close()
    _LOGGER = StructuredLogger(path, min_level=min_level)
    return _LOGGER


def get_logger() -> StructuredLogger | None:
    """The global structured logger, or ``None`` when unconfigured."""
    return _LOGGER


def logging_configured() -> bool:
    """True when :func:`log_event` currently writes anywhere."""
    return _LOGGER is not None


def reset_logging() -> None:
    """Close and remove the global logger (test-suite hook)."""
    global _LOGGER
    if _LOGGER is not None:
        _LOGGER.close()
    _LOGGER = None


def log_event(level: str, event: str, message: str = "", **fields):
    """Log through the global logger, or no-op when none is configured.

    The disabled path is a single module-global ``None`` check — cheap
    enough for per-point instrumentation in the fleet evaluation loop.
    """
    if _LOGGER is None:
        return None
    return _LOGGER.log(level, event, message, **fields)


# ---------------------------------------------------------------------
# Reading and summarizing
# ---------------------------------------------------------------------


def read_log_jsonl(path) -> tuple:
    """Parse a JSONL log file back into :class:`LogRecord` objects.

    A torn *final* line (a crashed or killed writer) is skipped
    silently; corruption anywhere else raises — same contract as the
    checkpoint and bench-history readers.
    """
    from ..io.jsonl import read_jsonl_tolerant

    return read_jsonl_tolerant(
        path,
        LogRecord.from_dict,
        error=ObservabilityError,
        label="log record",
    )


def summarize_logs(records) -> dict:
    """Fold log records into a JSON-ready overview.

    Counts per level and per event, the covered wall-clock window, the
    distinct workers/traces seen, and the error records verbatim (they
    are the lines a summary must never hide).
    """
    records = tuple(records)
    by_level = {level: 0 for level in LOG_LEVELS}
    by_event: dict = {}
    by_request: dict = {}
    workers: set = set()
    traces: set = set()
    errors = []
    for record in records:
        by_level[record.level] = by_level.get(record.level, 0) + 1
        by_event[record.event] = by_event.get(record.event, 0) + 1
        if record.worker_id:
            workers.add(record.worker_id)
        if record.trace_id:
            traces.add(record.trace_id)
        if record.request_id:
            by_request[record.request_id] = (
                by_request.get(record.request_id, 0) + 1
            )
        if record.level == "error":
            errors.append(record.to_dict())
    summary = {
        "records": len(records),
        "levels": {k: v for k, v in by_level.items() if v},
        "events": dict(sorted(by_event.items())),
        "workers": sorted(workers),
        "traces": sorted(traces),
        "requests": dict(sorted(by_request.items())),
        "errors": errors,
    }
    if records:
        times = [r.ts for r in records]
        summary["first_ts"] = min(times)
        summary["last_ts"] = max(times)
        summary["window_s"] = max(times) - min(times)
    return summary


def format_log_summary(summary: dict) -> str:
    """The :func:`summarize_logs` overview as aligned text."""
    lines = [f"{summary['records']} log record(s)"]
    if "window_s" in summary:
        lines[0] += f" over {summary['window_s']:.3f}s"
    if summary.get("workers"):
        lines.append("workers: " + ", ".join(summary["workers"]))
    if summary.get("levels"):
        lines.append("levels:  " + ", ".join(
            f"{level}={count}"
            for level, count in summary["levels"].items()
        ))
    if summary.get("requests"):
        lines.append(
            f"requests: {len(summary['requests'])} distinct "
            "(X-Gables-Request-Id)"
        )
    if summary.get("events"):
        width = max(len(event) for event in summary["events"])
        lines.append("events:")
        for event, count in summary["events"].items():
            lines.append(f"  {event:<{width}}  {count}")
    for entry in summary.get("errors", ()):
        lines.append(
            f"ERROR {entry['event']}: {entry.get('message', '')} "
            f"(worker {entry.get('worker_id') or '-'})"
        )
    return "\n".join(lines)


def tail_logs(records, n: int = 20) -> tuple:
    """The last ``n`` records by timestamp (stable for ties)."""
    if n < 0:
        raise ObservabilityError(f"tail length must be >= 0, got {n}")
    ordered = sorted(records, key=lambda r: r.ts)
    return tuple(ordered[-n:]) if n else ()
