"""Nestable, thread-safe tracing spans with near-zero disabled overhead.

The tracer answers "where did the time go?" for any library operation::

    from repro.obs import enable_tracing, span

    enable_tracing()
    with span("sim.run_kernel", engine="GPU") as sp:
        ...                      # timed body
        sp.set_attribute("gflops", 295.0)

Spans nest: a span opened while another is active on the same thread
records that span as its parent, so the finished records form a forest
that :mod:`repro.obs.export` can serialize and summarize as a tree.

Design constraints (in priority order):

1. *Disabled is free.*  Model evaluation is a hot path (the benchmark
   harness times tens of thousands of ``evaluate()`` calls), so when
   tracing is off :func:`span` returns a shared singleton no-op context
   manager: one attribute check, no allocation beyond the ``kwargs``
   dict.  The benchmark suite asserts the instrumented paths stay
   within a few percent of un-instrumented throughput.
2. *Thread safe.*  Span stacks are thread-local (nesting never crosses
   threads); the finished-span list is guarded by a lock.
3. *Dependency free.*  ``time.perf_counter`` and the stdlib only.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field


@dataclass
class SpanRecord:
    """One finished (or in-flight) span.

    ``end_s`` is ``None`` while the span is open; every record handed
    out by :meth:`Tracer.finished_spans` is closed.  Times come from
    ``time.perf_counter`` and are only meaningful relative to each
    other within one process.
    """

    name: str
    span_id: int
    parent_id: int | None
    thread: str
    start_s: float
    end_s: float | None = None
    status: str = "ok"  # "ok" | "error"
    attributes: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Wall time inside the span (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        """A JSON-ready mapping (the JSONL trace event schema)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        """Inverse of :meth:`to_dict` (``duration_s`` is derived)."""
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            thread=data["thread"],
            start_s=data["start_s"],
            end_s=data["end_s"],
            status=data.get("status", "ok"),
            attributes=dict(data.get("attributes", {})),
        )


class _ActiveSpan:
    """Context manager for one live span on one thread."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def set_attribute(self, key: str, value) -> "_ActiveSpan":
        """Attach a structured attribute; chainable."""
        self.record.attributes[key] = value
        return self

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self.record)
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is not None:
            self.record.status = "error"
            self.record.attributes.setdefault(
                "error.type", exc_type.__name__
            )
        self._tracer._finish(self.record)
        return False  # never swallow exceptions


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def set_attribute(self, _key: str, _value) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


NULL_SPAN = _NullSpan()

#: Sentinel distinguishing "no parent passed" from an explicit None
#: parent (a forced root) in :meth:`Tracer.span`.
_PARENT_FROM_STACK = object()


class Tracer:
    """Collects spans; one process-global instance serves the library.

    A fresh tracer starts *disabled*; :func:`enable_tracing` (or
    setting ``tracer.enabled = True``) turns collection on.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self.enabled = False
        self._clock = clock
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: list = []

    # -- span lifecycle ------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, parent_id=_PARENT_FROM_STACK,
             **attributes) -> _ActiveSpan:
        """Open a span; use as a context manager.

        ``parent_id`` defaults to the innermost open span on the
        calling thread; pass an explicit id to graft the span under a
        parent from *elsewhere* — another thread, or the client span
        named by a request's ``X-Gables-Parent-Span`` header — or
        ``None`` to force a root.
        """
        if parent_id is _PARENT_FROM_STACK:
            stack = self._stack()
            parent_id = stack[-1].span_id if stack else None
        record = SpanRecord(
            name=name,
            span_id=next(self._ids),
            parent_id=parent_id,
            thread=threading.current_thread().name,
            start_s=self._clock(),
            attributes=attributes,
        )
        return _ActiveSpan(self, record)

    def _push(self, record: SpanRecord) -> None:
        self._stack().append(record)

    def _finish(self, record: SpanRecord) -> None:
        record.end_s = self._clock()
        stack = self._stack()
        # Exception safety: unwind past any spans a non-local exit
        # (exception, generator abandonment) left unclosed above us.
        while stack:
            top = stack.pop()
            if top.span_id == record.span_id:
                break
        with self._lock:
            self._finished.append(record)

    # -- inspection ----------------------------------------------------

    def finished_spans(self) -> tuple:
        """All closed spans, in completion order."""
        with self._lock:
            return tuple(self._finished)

    def active_depth(self) -> int:
        """How many spans are open on the calling thread."""
        return len(self._stack())

    def reset(self) -> None:
        """Drop collected spans (the enabled flag is untouched)."""
        with self._lock:
            self._finished.clear()
        self._local = threading.local()


#: The process-global tracer used by all library instrumentation.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def tracing_enabled() -> bool:
    """True when the global tracer is collecting."""
    return _TRACER.enabled


def enable_tracing() -> Tracer:
    """Turn the global tracer on and return it."""
    _TRACER.enabled = True
    return _TRACER


def disable_tracing() -> None:
    """Turn the global tracer off (collected spans are kept)."""
    _TRACER.enabled = False


def reset_tracing() -> None:
    """Disable the global tracer and drop everything it collected."""
    _TRACER.enabled = False
    _TRACER.reset()


def span(name: str, parent_id=_PARENT_FROM_STACK, **attributes):
    """Open a span on the global tracer, or a no-op when disabled.

    The disabled path is a single attribute check returning a shared
    singleton — cheap enough for per-evaluation instrumentation on hot
    loops.  ``parent_id`` forwards to :meth:`Tracer.span` for callers
    grafting under a remote parent.
    """
    if not _TRACER.enabled:
        return NULL_SPAN
    return _TRACER.span(name, parent_id=parent_id, **attributes)
