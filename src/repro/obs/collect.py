"""Per-worker telemetry shards and the cross-process merger.

A fleet run spreads one logical sweep across worker processes; each
worker collects its own telemetry — spans, metrics, a profile tree,
structured logs, and liveness heartbeats — because the process-global
collectors in :mod:`repro.obs` are exactly that: per process.  This
module gives every worker a *shard directory* to drain its collectors
into, and gives the parent a merger that folds the shards back into
one coherent trace, one metrics snapshot, one profile tree, and one
log stream.

Shard layout (one directory per worker under the telemetry root)::

    telemetry/
      worker-w0/
        manifest.json     identity: context, pid, clock anchor
        spans.jsonl       finished spans (repro.obs.export JSONL)
        metrics.json      registry snapshot
        profile.json      profile_to_dict document
        logs.jsonl        structured log records
        heartbeats.jsonl  periodic CPU/RSS liveness samples
      worker-w1/
        ...

The manifest is written *eagerly* at collector construction, so a
worker that crashes mid-shard still leaves its identity and clock
anchor behind; every JSONL stream tolerates a torn final line on read
(same contract as the checkpoint and log readers).

Merging obeys three laws, each pinned by a property test:

- **spans are a union** — span ids are renumbered into disjoint
  per-shard ranges (ids are only unique per process) and timestamps
  are rebased onto the shared wall clock via each shard's
  wall↔monotonic anchor, so nothing collides and Perfetto lanes line
  up;
- **metrics add** — :func:`repro.obs.metrics.merge_snapshots`;
- **profiles add** — same-name-path nodes sum ``count``/``total_s``/
  ``self_s`` exactly (floating-point addition of the constituents).
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field, replace

from ..errors import ObservabilityError
from .context import TraceContext, anchor_offset, clock_anchor
from .export import chrome_span_events, read_trace_jsonl, write_trace_jsonl
from .logging import get_logger, read_log_jsonl
from .metrics import get_registry, merge_snapshots
from .profile import ProfileNode, get_profiler, profile_to_dict
from .trace import get_tracer

#: Shard file names (the on-disk contract of a worker directory).
MANIFEST_FILE = "manifest.json"
SPANS_FILE = "spans.jsonl"
METRICS_FILE = "metrics.json"
PROFILE_FILE = "profile.json"
LOGS_FILE = "logs.jsonl"
HEARTBEATS_FILE = "heartbeats.jsonl"

MANIFEST_SCHEMA = 1


def resource_sample() -> dict:
    """One CPU/RSS liveness sample for the current process, JSON-ready.

    ``cpu_s`` is user+system time from ``os.times``; ``rss_kb`` is the
    peak resident set from ``getrusage`` (kilobytes on Linux), or
    ``None`` where the ``resource`` module is unavailable.
    """
    times = os.times()
    sample = {
        "ts": time.time(),
        "cpu_s": times.user + times.system,
        "rss_kb": None,
    }
    try:
        import resource

        sample["rss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, OSError):  # pragma: no cover - non-POSIX
        pass
    return sample


def shard_dir_name(worker_id: str) -> str:
    """The shard directory name for one worker."""
    if not worker_id:
        raise ObservabilityError("shard directories need a worker_id")
    return f"worker-{worker_id}"


class ShardCollector:
    """Drains one worker's process-global collectors into a shard.

    Construction creates the shard directory and writes the manifest
    (identity + clock anchor) immediately; :meth:`heartbeat` appends a
    liveness sample; :meth:`finalize` snapshots the tracer, registry,
    and profiler into the shard files.  The structured-log path is
    exposed as :attr:`log_path` for ``configure_logging``.
    """

    def __init__(self, root, context: TraceContext) -> None:
        self.context = context
        self.dir = os.path.join(os.fspath(root), shard_dir_name(context.worker_id))
        os.makedirs(self.dir, exist_ok=True)
        self.anchor = clock_anchor()
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "pid": os.getpid(),
            "anchor": self.anchor,
            "context": context.to_dict(),
        }
        with open(self.path(MANIFEST_FILE), "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        self._heartbeats = 0

    def path(self, name: str) -> str:
        return os.path.join(self.dir, name)

    @property
    def log_path(self) -> str:
        """Where this shard's structured log belongs."""
        return self.path(LOGS_FILE)

    def heartbeat(self) -> dict:
        """Append one :func:`resource_sample` to the heartbeat stream."""
        sample = resource_sample()
        with open(self.path(HEARTBEATS_FILE), "a", encoding="utf-8") as handle:
            handle.write(json.dumps(sample, sort_keys=True) + "\n")
            handle.flush()
        self._heartbeats += 1
        return sample

    @property
    def heartbeats_written(self) -> int:
        return self._heartbeats

    def finalize(self) -> dict:
        """Snapshot tracer/registry/profiler into the shard files.

        Returns ``{"spans": n, "metrics": n, "profile_roots": n}`` so
        callers can log what the shard holds.  The structured logger,
        if it points at this shard, is flushed by its own eager writes.
        """
        spans = get_tracer().finished_spans()
        write_trace_jsonl(self.path(SPANS_FILE), spans)
        snapshot = get_registry().snapshot()
        with open(self.path(METRICS_FILE), "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        nodes = get_profiler().report()
        with open(self.path(PROFILE_FILE), "w", encoding="utf-8") as handle:
            json.dump(profile_to_dict(nodes), handle, indent=2, sort_keys=True)
            handle.write("\n")
        logger = get_logger()
        if logger is not None and logger.path == self.log_path:
            logger.close()
        return {
            "spans": len(spans),
            "metrics": len(snapshot),
            "profile_roots": len(nodes),
        }


@dataclass(frozen=True)
class TelemetryShard:
    """One worker's telemetry, read back from its shard directory."""

    dir: str
    context: TraceContext
    pid: int
    anchor: dict
    spans: tuple = ()
    metrics: dict = field(default_factory=dict)
    profile: tuple = ()
    logs: tuple = ()
    heartbeats: tuple = ()

    @property
    def worker_id(self) -> str:
        return self.context.worker_id

    @property
    def shard(self):
        return self.context.shard


def _read_json(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _read_heartbeats(path) -> tuple:
    """Heartbeat samples, torn-tail tolerant like every shard stream."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    samples = []
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            samples.append(json.loads(line))
        except ValueError as err:
            if line_no == len(lines):
                break  # torn tail from a killed worker
            raise ObservabilityError(
                f"{path}:{line_no}: bad heartbeat sample ({err})"
            ) from None
    return tuple(samples)


def read_shard(shard_dir) -> TelemetryShard:
    """Read one worker directory back into a :class:`TelemetryShard`.

    The manifest is mandatory — a directory without one is not a shard.
    Every other stream is optional (a crashed worker may never have
    finalized); missing files read as empty.
    """
    shard_dir = os.fspath(shard_dir)
    manifest_path = os.path.join(shard_dir, MANIFEST_FILE)
    try:
        manifest = _read_json(manifest_path)
        context = TraceContext.from_dict(manifest["context"])
        pid = int(manifest["pid"])
        anchor = dict(manifest["anchor"])
    except (OSError, ValueError, KeyError, TypeError) as err:
        raise ObservabilityError(
            f"{shard_dir}: unreadable shard manifest ({err})"
        ) from None

    def optional(name, reader, empty):
        path = os.path.join(shard_dir, name)
        if not os.path.exists(path):
            return empty
        return reader(path)

    profile_doc = optional(PROFILE_FILE, _read_json, None)
    profile = ()
    if profile_doc is not None:
        profile = tuple(
            ProfileNode.from_dict(node) for node in profile_doc.get("tree", ())
        )
    return TelemetryShard(
        dir=shard_dir,
        context=context,
        pid=pid,
        anchor=anchor,
        spans=optional(SPANS_FILE, read_trace_jsonl, ()),
        metrics=optional(METRICS_FILE, _read_json, {}),
        profile=profile,
        logs=optional(LOGS_FILE, read_log_jsonl, ()),
        heartbeats=optional(HEARTBEATS_FILE, _read_heartbeats, ()),
    )


def discover_shards(root) -> tuple:
    """Shard directories under ``root`` (sorted by worker directory name)."""
    root = os.fspath(root)
    if not os.path.isdir(root):
        raise ObservabilityError(f"telemetry directory not found: {root}")
    found = []
    for name in sorted(os.listdir(root)):
        candidate = os.path.join(root, name)
        if os.path.isdir(candidate) and os.path.exists(
            os.path.join(candidate, MANIFEST_FILE)
        ):
            found.append(candidate)
    return tuple(found)


def load_shards(root) -> tuple:
    """Read every shard under ``root``; raises when none exist."""
    dirs = discover_shards(root)
    if not dirs:
        raise ObservabilityError(
            f"no telemetry shards (worker-*/{MANIFEST_FILE}) under {root}"
        )
    return tuple(read_shard(d) for d in dirs)


# ---------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class MergedTelemetry:
    """The fleet's telemetry folded back into one coherent view.

    ``spans`` are renumbered (disjoint id ranges per shard) and rebased
    onto the wall clock; ``metrics`` obey the snapshot addition laws;
    ``profile`` is the name-path-summed tree; ``logs`` are every
    worker's records in timestamp order.
    """

    fleet_run_id: str
    trace_id: str
    workers: tuple
    spans: tuple
    metrics: dict
    profile: tuple
    logs: tuple
    heartbeats: dict  # worker_id -> tuple of samples
    shards: tuple = ()

    def summary(self) -> dict:
        """Counts and identity, JSON-ready (the merge report)."""
        return {
            "fleet_run_id": self.fleet_run_id,
            "trace_id": self.trace_id,
            "workers": list(self.workers),
            "spans": len(self.spans),
            "metrics": len(self.metrics),
            "profile_roots": len(self.profile),
            "log_records": len(self.logs),
            "heartbeats": {
                worker: len(samples)
                for worker, samples in sorted(self.heartbeats.items())
            },
        }


def _rebase_spans(shard: TelemetryShard, id_offset: int) -> tuple:
    """Shard spans renumbered by ``id_offset`` and rebased to wall time."""
    offset_s = anchor_offset(shard.anchor)
    rebased = []
    for record in shard.spans:
        rebased.append(replace(
            record,
            span_id=record.span_id + id_offset,
            parent_id=(
                None if record.parent_id is None
                else record.parent_id + id_offset
            ),
            start_s=record.start_s + offset_s,
            end_s=None if record.end_s is None else record.end_s + offset_s,
        ))
    return tuple(rebased)


def merge_profiles(trees) -> tuple:
    """Sum same-name-path profile trees across shards.

    ``trees`` is an iterable of root tuples (one per shard).  Nodes
    sharing a name under the same parent path merge by adding
    ``count``/``total_s``/``self_s``; children recurse.  Output order
    is descending total time then name, like :meth:`Profiler.report`.
    """

    def fold(node_lists) -> tuple:
        by_name: dict = {}
        for nodes in node_lists:
            for node in nodes:
                by_name.setdefault(node.name, []).append(node)
        merged = []
        for name, group in by_name.items():
            merged.append(ProfileNode(
                name=name,
                count=sum(node.count for node in group),
                total_s=math.fsum(node.total_s for node in group),
                self_s=math.fsum(node.self_s for node in group),
                children=fold([node.children for node in group]),
            ))
        merged.sort(key=lambda node: (-node.total_s, node.name))
        return tuple(merged)

    return fold(list(trees))


def merge_telemetry(shards) -> MergedTelemetry:
    """Fold worker shards into one :class:`MergedTelemetry`.

    Shards are processed in ``(shard index, worker id)`` order so the
    merge is deterministic regardless of directory listing order.
    """
    shards = tuple(shards)
    if not shards:
        raise ObservabilityError("merge_telemetry needs at least one shard")
    ordered = sorted(
        shards,
        key=lambda s: (s.shard if s.shard is not None else -1, s.worker_id),
    )
    trace_ids = {s.context.trace_id for s in ordered}
    if len(trace_ids) > 1:
        raise ObservabilityError(
            "shards belong to different traces: "
            + ", ".join(sorted(trace_ids))
        )
    spans = []
    id_offset = 0
    for shard in ordered:
        spans.extend(_rebase_spans(shard, id_offset))
        if shard.spans:
            id_offset += max(r.span_id for r in shard.spans) + 1
    logs = tuple(sorted(
        (record for shard in ordered for record in shard.logs),
        key=lambda r: (r.ts, r.worker_id),
    ))
    return MergedTelemetry(
        fleet_run_id=ordered[0].context.fleet_run_id,
        trace_id=ordered[0].context.trace_id,
        workers=tuple(s.worker_id for s in ordered),
        spans=tuple(spans),
        metrics=merge_snapshots(*(s.metrics for s in ordered)),
        profile=merge_profiles(s.profile for s in ordered),
        logs=logs,
        heartbeats={s.worker_id: s.heartbeats for s in ordered},
        shards=ordered,
    )


def merged_chrome_trace(shards) -> dict:
    """Every shard's spans as one Chrome trace document.

    Each worker keeps its real ``pid`` (its own Perfetto process lane,
    labelled ``worker <id>``), and all timestamps share a single zero
    point: the earliest wall-rebased span start across the fleet.
    """
    shards = tuple(shards)
    starts = [
        record.start_s + anchor_offset(shard.anchor)
        for shard in shards
        for record in shard.spans
        if record.end_s is not None
    ]
    t0 = min(starts, default=0.0)
    events = []
    for shard in shards:
        label = f"worker {shard.worker_id}"
        if shard.shard is not None:
            label += f" (shard {shard.shard})"
        events.extend(chrome_span_events(
            shard.spans,
            pid=shard.pid,
            process_name=label,
            clock_offset_s=anchor_offset(shard.anchor),
            t0=t0,
        ))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_merged(out_dir, merged: MergedTelemetry) -> dict:
    """Write a merged view under ``out_dir``; returns name -> path.

    Emits ``trace.chrome.json`` (one Perfetto lane per worker),
    ``spans.jsonl`` (the renumbered union), ``metrics.json``,
    ``profile.json``, ``logs.jsonl``, and ``summary.json``.
    """
    out_dir = os.fspath(out_dir)
    os.makedirs(out_dir, exist_ok=True)
    paths = {}

    def emit_json(name, document):
        path = os.path.join(out_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        paths[name] = path

    spans_path = os.path.join(out_dir, SPANS_FILE)
    write_trace_jsonl(spans_path, merged.spans)
    paths[SPANS_FILE] = spans_path
    logs_path = os.path.join(out_dir, LOGS_FILE)
    with open(logs_path, "w", encoding="utf-8") as handle:
        for record in merged.logs:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
    paths[LOGS_FILE] = logs_path
    emit_json("trace.chrome.json", merged_chrome_trace(merged.shards))
    emit_json(METRICS_FILE, merged.metrics)
    emit_json(PROFILE_FILE, profile_to_dict(merged.profile))
    emit_json("summary.json", merged.summary())
    return paths


# ---------------------------------------------------------------------
# Fleet health: heartbeat / straggler analysis
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerHealth:
    """One worker's liveness digest for the fleet health table."""

    worker_id: str
    shard: int | None
    pid: int
    heartbeats: int
    wall_s: float  # first..last heartbeat window
    cpu_s: float  # last cumulative CPU sample
    rss_kb: int | None  # peak RSS across samples
    straggler: bool


def straggler_report(shards, *, threshold: float = 1.5) -> tuple:
    """Per-worker health rows; flags workers ``threshold``× the median.

    A worker whose heartbeat window exceeds ``threshold`` times the
    fleet median wall window is flagged a straggler.  Workers with no
    heartbeats report a zero window and are never flagged (they either
    finished before the first beat or never started — the log stream
    says which).
    """
    if threshold <= 0:
        raise ObservabilityError(
            f"straggler threshold must be > 0, got {threshold!r}"
        )
    shards = tuple(shards)
    windows = {}
    for shard in shards:
        times = [sample["ts"] for sample in shard.heartbeats]
        windows[shard.worker_id] = (max(times) - min(times)) if times else 0.0
    active = sorted(w for w in windows.values() if w > 0)
    median = active[len(active) // 2] if active else 0.0
    rows = []
    for shard in shards:
        wall = windows[shard.worker_id]
        cpu = 0.0
        rss = None
        for sample in shard.heartbeats:
            cpu = max(cpu, float(sample.get("cpu_s") or 0.0))
            sample_rss = sample.get("rss_kb")
            if sample_rss is not None:
                rss = max(rss or 0, int(sample_rss))
        rows.append(WorkerHealth(
            worker_id=shard.worker_id,
            shard=shard.shard,
            pid=shard.pid,
            heartbeats=len(shard.heartbeats),
            wall_s=wall,
            cpu_s=cpu,
            rss_kb=rss,
            straggler=bool(median > 0 and wall > threshold * median),
        ))
    rows.sort(key=lambda r: (r.shard if r.shard is not None else -1,
                             r.worker_id))
    return tuple(rows)
