"""Evaluation provenance: an auditable *explain record* per bound.

Gables reports a single number — the attainable performance — produced
by a max over component times (equivalently, a min over performance
bounds).  When that number surprises, the question is always "which
term won, and by how much?".  An :class:`ExplainRecord` captures the
full derivation for one ``core.gables.evaluate()`` call:

- the inputs (SoC name, ``Bpeak``, per-IP ``Ai``/``Bi``; workload
  fractions and intensities);
- every per-IP term (compute time, transfer time, which of the two the
  ``max()`` picked);
- the shared-memory term and the work-averaged intensity;
- the winning ``min()`` branch — the bottleneck — and every component
  that ties it.

The record is self-auditing: :meth:`ExplainRecord.to_system` lowers it
onto the generic series/parallel substrate of
:mod:`repro.analysis.bottleneck`, and :meth:`ExplainRecord.audit`
checks that *independent* attribution names the same bottleneck the
model reported — the same cross-check the test suite runs.

Capture is opt-in (:func:`enable_provenance`), keeping the hot path
allocation-free by default; the library keeps a bounded ring of the
most recent records (:func:`last_explain`, :func:`explain_history`).
:func:`explain` computes a record on demand for any (SoC, workload)
pair without touching the global state.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from ..analysis.bottleneck import Stage, bottleneck_of, series


@dataclass(frozen=True)
class TermExplain:
    """Provenance for one IP's term (one branch of the outer min)."""

    name: str
    fraction: float
    intensity: float
    compute_time: float
    transfer_time: float
    data_bytes: float
    time: float
    limiter: str  # "compute" | "bandwidth" | "idle"

    @property
    def perf_bound(self) -> float:
        """The performance-domain dual of this term's time."""
        if self.time == 0:
            return math.inf
        return 1.0 / self.time


@dataclass(frozen=True)
class ExplainRecord:
    """The full derivation of one attainable-performance bound."""

    soc: str
    workload: str
    memory_bandwidth: float
    ip_peaks: tuple  # Ai * Ppeak per IP, ops/s
    ip_bandwidths: tuple  # Bi per IP, bytes/s
    fractions: tuple
    intensities: tuple
    terms: tuple  # TermExplain per IP
    memory_time: float
    memory_perf_bound: float
    average_intensity: float
    attainable: float
    bottleneck: str
    binding_components: tuple
    #: Extension components (bus times, coordination), as (name, time)
    #: pairs in presentation order — populated by variant evaluations.
    extra_times: tuple = ()

    # -- audit ---------------------------------------------------------

    def component_times(self) -> dict:
        """Every min()-branch as a name -> seconds-per-op mapping."""
        times = {term.name: term.time for term in self.terms}
        times["memory"] = self.memory_time
        times.update(self.extra_times)
        return times

    def to_system(self):
        """Lower onto the bottleneck-analysis series composition.

        Per unit of work every component must "pass" the usecase, so
        the components compose in *series* with throughput ``1/time``
        (``inf`` for components taking no time — they can never bind).
        """
        stages = [
            Stage(name, math.inf if t == 0 else 1.0 / t)
            for name, t in self.component_times().items()
        ]
        return series(*stages)

    def audit(self) -> bool:
        """Re-derive the bottleneck via :mod:`repro.analysis.bottleneck`.

        Returns True when the independent series-composition attribution
        agrees with this record on both the binding component and the
        attainable throughput.
        """
        report = bottleneck_of(self.to_system())
        return (
            report.stage.name == self.bottleneck
            and math.isclose(report.throughput, self.attainable,
                             rel_tol=1e-9)
        )

    # -- presentation --------------------------------------------------

    def narrative(self) -> str:
        """A human-readable walk through the winning min() branch."""
        lines = [
            f"evaluate({self.soc!r}, {self.workload!r}) -> "
            f"{self.attainable:.6g} ops/s, bound by {self.bottleneck!r}"
        ]
        for term in self.terms:
            if term.limiter == "idle":
                lines.append(f"  {term.name}: idle (f=0), cannot bind")
                continue
            winner = ("link transfer" if term.limiter == "bandwidth"
                      else "compute")
            lines.append(
                f"  {term.name}: max(compute {term.compute_time:.4g}s, "
                f"transfer {term.transfer_time:.4g}s) -> {winner} "
                f"({term.time:.4g}s/op, bound {term.perf_bound:.6g} ops/s)"
            )
        lines.append(
            f"  memory: {self.memory_time:.4g}s/op moving "
            f"{math.fsum(t.data_bytes for t in self.terms):.4g} B/op "
            f"at Iavg {self.average_intensity:.4g}"
        )
        for name, t in self.extra_times:
            lines.append(f"  {name}: {t:.4g}s/op shared-resource term")
        binding = ", ".join(self.binding_components)
        lines.append(
            f"  slowest component wins the max(): {binding}"
            + (" (balanced tie)" if len(self.binding_components) > 1 else "")
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-ready mapping of the whole record."""
        return {
            "soc": self.soc,
            "workload": self.workload,
            "memory_bandwidth": self.memory_bandwidth,
            "ip_peaks": list(self.ip_peaks),
            "ip_bandwidths": list(self.ip_bandwidths),
            "fractions": list(self.fractions),
            "intensities": [
                ("inf" if math.isinf(i) else i) for i in self.intensities
            ],
            "terms": [
                {
                    "name": t.name,
                    "fraction": t.fraction,
                    "intensity": "inf" if math.isinf(t.intensity) else t.intensity,
                    "compute_time": t.compute_time,
                    "transfer_time": t.transfer_time,
                    "data_bytes": t.data_bytes,
                    "time": t.time,
                    "limiter": t.limiter,
                }
                for t in self.terms
            ],
            "memory_time": self.memory_time,
            "memory_perf_bound": (
                "inf" if math.isinf(self.memory_perf_bound)
                else self.memory_perf_bound
            ),
            "average_intensity": (
                "inf" if math.isinf(self.average_intensity)
                else self.average_intensity
            ),
            "attainable": self.attainable,
            "bottleneck": self.bottleneck,
            "binding_components": list(self.binding_components),
            "extra_times": {name: t for name, t in self.extra_times},
        }


def from_result(soc, workload, result) -> ExplainRecord:
    """Build an :class:`ExplainRecord` from an evaluated result.

    ``soc``/``workload`` are the inputs ``result`` came from (duck
    typed; any :class:`~repro.core.params.SoCSpec`-shaped pair works).
    """
    terms = tuple(
        TermExplain(
            name=term.name,
            fraction=term.fraction,
            intensity=term.intensity,
            compute_time=term.compute_time,
            transfer_time=term.transfer_time,
            data_bytes=term.data_bytes,
            time=term.time,
            limiter=term.limiter,
        )
        for term in result.ip_terms
    )
    return ExplainRecord(
        soc=getattr(soc, "name", "?"),
        workload=getattr(workload, "name", "?"),
        memory_bandwidth=soc.memory_bandwidth,
        ip_peaks=tuple(soc.ip_peak(i) for i in range(soc.n_ips)),
        ip_bandwidths=tuple(ip.bandwidth for ip in soc.ips),
        fractions=tuple(workload.fractions),
        intensities=tuple(workload.intensities),
        terms=terms,
        memory_time=result.memory_time,
        memory_perf_bound=result.memory_perf_bound,
        average_intensity=result.average_intensity,
        attainable=result.attainable,
        bottleneck=result.bottleneck,
        binding_components=tuple(result.binding_components),
        extra_times=tuple(getattr(result, "extra_times", {}).items()),
    )


def explain(soc, workload) -> ExplainRecord:
    """Evaluate and explain, without touching the global capture ring."""
    from ..core.gables import evaluate

    return from_result(soc, workload, evaluate(soc, workload))


#: Bounded ring of the most recent captured records.
_HISTORY: deque = deque(maxlen=64)
_ENABLED = False


def provenance_enabled() -> bool:
    """True when ``evaluate()`` captures explain records."""
    return _ENABLED


def enable_provenance() -> None:
    """Capture an explain record for every subsequent ``evaluate()``."""
    global _ENABLED
    _ENABLED = True


def disable_provenance() -> None:
    """Stop capturing (history is kept)."""
    global _ENABLED
    _ENABLED = False


def reset_provenance() -> None:
    """Disable capture and drop the history ring."""
    global _ENABLED
    _ENABLED = False
    _HISTORY.clear()


def capture(soc, workload, result) -> None:
    """Record provenance for one evaluation (called by the model)."""
    _HISTORY.append(from_result(soc, workload, result))


def last_explain() -> ExplainRecord | None:
    """The most recently captured record, or None."""
    return _HISTORY[-1] if _HISTORY else None


def explain_history() -> tuple:
    """Captured records, oldest first (bounded ring of 64)."""
    return tuple(_HISTORY)
