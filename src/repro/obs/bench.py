"""Benchmark history: append-only run records with regression detection.

Benchmark snapshots used to be one-shot files with ad-hoc schemas
(``BENCH_obs.json`` was a raw metrics snapshot, ``BENCH_variants.json``
a bespoke timing dict), so nothing could answer "did this PR make the
hot path slower?".  This module defines one normalized record shape —
:class:`BenchRecord`: a named scalar plus host fingerprint, git
revision, run id, and timestamp — and three capabilities on top of it:

- **history**: every benchmark run appends its records to
  ``BENCH_HISTORY.jsonl`` (:func:`append_history`), a greppable JSONL
  trajectory that survives across PRs and CI runs;
- **legacy reading**: :func:`load_bench_file` still understands the
  pre-history ``BENCH_*.json`` schemas for one release, converting
  them into records so old snapshots join the comparison;
- **regression detection**: :func:`detect_regressions` compares the
  latest run against a rolling-median baseline with a MAD noise gate,
  flagging timing metrics that got >= 20% slower — the check behind
  ``gables bench compare`` and the CI ``bench-history`` job.

The rolling median + MAD rule: a current value is a regression when it
exceeds *both* ``median * (1 + threshold)`` (the material-slowdown
bar) and ``median + 3 * 1.4826 * MAD`` (the this-isn't-just-noise
bar).  With fewer than ``min_samples`` baseline points nothing is
flagged — one noisy first run must not poison the trajectory.
"""

from __future__ import annotations

import json
import math
import os
import platform as _platform
import subprocess
import time
from dataclasses import dataclass, field

from ..errors import ObservabilityError

#: Record schema version stamped into every serialized record.
SCHEMA_VERSION = 1

#: Default regression bar: flag when >= 20% slower than the baseline.
DEFAULT_THRESHOLD = 0.20

#: Default rolling-baseline window (runs, newest first).
DEFAULT_WINDOW = 10

#: Baseline runs needed before anything can be flagged.
DEFAULT_MIN_SAMPLES = 2

#: Scale factor making the MAD a consistent sigma estimate.
MAD_SIGMA = 1.4826


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark observation: a named scalar with provenance.

    ``unit`` is ``"s"`` for timings (the only unit regression detection
    judges — bigger is worse), ``"count"``/``"x"``/... for everything
    else.  ``run_id`` groups the records of one benchmark-suite
    invocation; ``meta`` carries free-form context (grid size, variant
    name, legacy-schema origin).

    ``worker_id``/``shard``/``fleet_run_id`` are fleet provenance for
    records produced by sharded runs (``gables fleet run``), and
    ``engine`` names the batch-evaluation tier that produced a timing
    (``"compiled"``/``"interpreted"``).  All are serialized only when
    set, so single-process histories keep their exact prior shape — no
    schema bump, and old readers (which ignore unknown keys) stay
    compatible.
    """

    name: str
    value: float
    unit: str = "s"
    run_id: str = ""
    timestamp: str = ""
    git_rev: str = "unknown"
    host: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    worker_id: str = ""
    shard: int | None = None
    fleet_run_id: str = ""
    engine: str = ""

    def to_dict(self) -> dict:
        """A JSON-ready mapping (the JSONL history schema)."""
        data = {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "value": self.value,
            "unit": self.unit,
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "git_rev": self.git_rev,
            "host": dict(self.host),
            "meta": dict(self.meta),
        }
        if self.worker_id:
            data["worker_id"] = self.worker_id
        if self.shard is not None:
            data["shard"] = self.shard
        if self.fleet_run_id:
            data["fleet_run_id"] = self.fleet_run_id
        if self.engine:
            data["engine"] = self.engine
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "BenchRecord":
        """Inverse of :meth:`to_dict` (tolerates missing provenance)."""
        shard = data.get("shard")
        return cls(
            name=data["name"],
            value=float(data["value"]),
            unit=str(data.get("unit", "s")),
            run_id=str(data.get("run_id", "")),
            timestamp=str(data.get("timestamp", "")),
            git_rev=str(data.get("git_rev", "unknown")),
            host=dict(data.get("host", {})),
            meta=dict(data.get("meta", {})),
            worker_id=str(data.get("worker_id", "")),
            shard=None if shard is None else int(shard),
            fleet_run_id=str(data.get("fleet_run_id", "")),
            engine=str(data.get("engine", "")),
        )

    @property
    def provenance_key(self) -> str:
        """The comparison key: name, suffixed with provenance.

        ``fleet.worker.throughput[worker=w1;shard=1]`` when the fleet
        fields are present, ``...[engine=compiled]`` when an engine tag
        is, the bare name otherwise — so sharded records compare
        worker-against-same-worker and compiled lanes against compiled
        baselines instead of collapsing everything into one series.
        ``fleet_run_id`` identifies a single run (like ``run_id``) and
        is deliberately *not* part of the key.
        """
        parts = []
        if self.worker_id:
            parts.append(f"worker={self.worker_id}")
        if self.shard is not None:
            parts.append(f"shard={self.shard}")
        if self.engine:
            parts.append(f"engine={self.engine}")
        if not parts:
            return self.name
        return f"{self.name}[{';'.join(parts)}]"


def host_fingerprint() -> dict:
    """Where this run happened: platform, python, machine, cpu count.

    Timing comparisons across different fingerprints are meaningless;
    :func:`detect_regressions` and the overhead benchmarks use this to
    restrict baselines to same-host records.
    """
    return {
        "platform": _platform.platform(),
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


def git_revision(root=None) -> str:
    """The current short git revision, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def new_run_id(now=None) -> str:
    """A sortable run identifier: UTC timestamp plus pid."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(now))
    return f"{stamp}-{os.getpid()}"


def make_record(
    name: str,
    value: float,
    unit: str = "s",
    *,
    run_id: str | None = None,
    git_rev: str | None = None,
    host: dict | None = None,
    meta: dict | None = None,
    worker_id: str = "",
    shard: int | None = None,
    fleet_run_id: str = "",
    engine: str = "",
) -> BenchRecord:
    """A fully provenance-stamped record for *this* host and revision."""
    if not name:
        raise ObservabilityError("benchmark record name must be non-empty")
    return BenchRecord(
        name=name,
        value=float(value),
        unit=unit,
        run_id=run_id if run_id is not None else new_run_id(),
        timestamp=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        git_rev=git_rev if git_rev is not None else git_revision(),
        host=host if host is not None else host_fingerprint(),
        meta=dict(meta) if meta else {},
        worker_id=worker_id,
        shard=shard,
        fleet_run_id=fleet_run_id,
        engine=engine,
    )


# ---------------------------------------------------------------------
# History file (JSONL, append-only)
# ---------------------------------------------------------------------


def append_history(path, records) -> int:
    """Append records to a JSONL history file; returns the count."""
    count = 0
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_history(path) -> tuple:
    """Read a JSONL history file back into records, oldest first.

    A torn *final* line (a crashed appender) is skipped silently;
    corruption anywhere else raises — the history is an artifact worth
    failing loudly over.
    """
    from ..io.jsonl import read_jsonl_tolerant

    return read_jsonl_tolerant(
        path,
        BenchRecord.from_dict,
        error=ObservabilityError,
        label="benchmark record",
    )


def load_bench_file(path) -> tuple:
    """Read any ``BENCH_*.json`` snapshot as records.

    Understands three shapes:

    - the normalized schema: ``{"schema": 1, "records": [...]}``;
    - the legacy variant-sweep snapshot
      (``{"variant", "points", "scalar_seconds", "batch_seconds",
      "speedup"}``), mapped to ``variants.<name>.*`` timing records;
    - the legacy raw metrics snapshot (name -> ``{"type", ...}``),
      mapped to ``"count"``-unit records.

    The legacy readers exist for one release; regenerate snapshots to
    drop them.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except ValueError as err:
            raise ObservabilityError(
                f"{path}: not a JSON benchmark snapshot ({err})"
            ) from None
    if not isinstance(data, dict):
        raise ObservabilityError(
            f"{path}: benchmark snapshot must be a JSON object"
        )
    if data.get("schema") == SCHEMA_VERSION and "records" in data:
        return tuple(
            BenchRecord.from_dict(entry) for entry in data["records"]
        )
    if "scalar_seconds" in data and "batch_seconds" in data:
        variant = str(data.get("variant", "unknown"))
        meta = {"legacy": "variants", "points": data.get("points")}
        return (
            BenchRecord(name=f"variants.{variant}.scalar_seconds",
                        value=float(data["scalar_seconds"]), unit="s",
                        meta=dict(meta)),
            BenchRecord(name=f"variants.{variant}.batch_seconds",
                        value=float(data["batch_seconds"]), unit="s",
                        meta=dict(meta)),
            BenchRecord(name=f"variants.{variant}.speedup",
                        value=float(data.get("speedup", 0.0)), unit="x",
                        meta=dict(meta)),
        )
    if data and all(
        isinstance(entry, dict) and "type" in entry
        for entry in data.values()
    ):
        records = []
        for name, entry in sorted(data.items()):
            value = entry.get("value", entry.get("mean", 0.0))
            records.append(BenchRecord(
                name=name,
                value=float(value or 0.0),
                unit="count" if entry["type"] == "counter" else "value",
                meta={"legacy": "metrics", "type": entry["type"]},
            ))
        return tuple(records)
    raise ObservabilityError(
        f"{path}: unrecognized benchmark snapshot schema"
    )


# ---------------------------------------------------------------------
# Rolling-baseline comparison
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class ComparisonRow:
    """One metric's current value against its rolling baseline."""

    name: str
    unit: str
    current: float
    baseline_median: float | None
    baseline_mad: float
    baseline_runs: int
    regressed: bool

    @property
    def ratio(self) -> float:
        """current / baseline median (``inf`` with no or zero baseline)."""
        if not self.baseline_median:
            return math.inf
        return self.current / self.baseline_median


@dataclass(frozen=True)
class ComparisonReport:
    """The full ``bench compare`` verdict."""

    run_id: str
    rows: tuple
    threshold: float

    @property
    def regressions(self) -> tuple:
        """The rows that breached the regression bar."""
        return tuple(row for row in self.rows if row.regressed)

    def format(self) -> str:
        """A human-readable comparison table."""
        lines = [
            f"run {self.run_id or '<unstamped>'} vs rolling baseline "
            f"(threshold +{self.threshold:.0%}):"
        ]
        header = (f"  {'metric':<44} {'current':>12} {'baseline':>12} "
                  f"{'ratio':>7}  verdict")
        lines.append(header)
        for row in self.rows:
            if row.baseline_median is None:
                baseline = "-"
                ratio = "-"
                verdict = f"no baseline ({row.baseline_runs} runs)"
            else:
                baseline = f"{row.baseline_median:.6g}"
                ratio = f"{row.ratio:.2f}x"
                verdict = "REGRESSED" if row.regressed else "ok"
            lines.append(
                f"  {row.name:<44} {row.current:>12.6g} {baseline:>12} "
                f"{ratio:>7}  {verdict}"
            )
        flagged = self.regressions
        lines.append(
            f"  {len(flagged)} regression(s) in {len(self.rows)} "
            "timing metric(s)"
        )
        return "\n".join(lines)


def _median(values) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def rolling_baseline(values, window: int = DEFAULT_WINDOW) -> tuple:
    """``(median, mad)`` of the most recent ``window`` values.

    ``values`` are oldest first; the window keeps the newest.  The MAD
    is the median absolute deviation, unscaled (callers multiply by
    :data:`MAD_SIGMA` for a sigma-equivalent).
    """
    if window < 1:
        raise ObservabilityError(f"window must be >= 1, got {window}")
    recent = list(values)[-window:]
    if not recent:
        raise ObservabilityError("rolling baseline needs at least one value")
    median = _median(recent)
    mad = _median([abs(v - median) for v in recent])
    return median, mad


def compare_runs(
    history,
    *,
    current_run: str | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
    min_samples: int = DEFAULT_MIN_SAMPLES,
) -> ComparisonReport:
    """Compare one run's timing records against the rolling baseline.

    ``history`` is any iterable of records, oldest first (the
    :func:`read_history` order).  ``current_run`` defaults to the
    newest ``run_id`` present; every *earlier* run contributes to the
    per-metric rolling baseline (one value per run: that run's last
    record of the metric).  Only ``unit == "s"`` records are judged —
    counters have no slower-is-worse direction.

    Records carrying fleet provenance (``worker_id``/``shard``) are
    grouped by their :attr:`BenchRecord.provenance_key` — each worker
    lane gets its own baseline instead of collapsing every shard into
    one noisy series.
    """
    records = [r for r in history if r.unit == "s"]
    if not records:
        return ComparisonReport(run_id=current_run or "", rows=(),
                                threshold=threshold)
    run_order: list = []
    for record in records:
        if record.run_id not in run_order:
            run_order.append(record.run_id)
    if current_run is None:
        current_run = run_order[-1]
    elif current_run not in run_order:
        raise ObservabilityError(
            f"run {current_run!r} has no timing records in the history"
        )
    baseline_runs = [rid for rid in run_order if rid != current_run]

    by_metric: dict = {}
    for record in records:
        by_metric.setdefault(record.provenance_key, {})[record.run_id] = record

    rows = []
    for name in sorted(by_metric):
        runs = by_metric[name]
        current = runs.get(current_run)
        if current is None:
            continue
        baseline_values = [
            runs[rid].value for rid in baseline_runs if rid in runs
        ]
        if len(baseline_values) < min_samples:
            rows.append(ComparisonRow(
                name=name, unit=current.unit, current=current.value,
                baseline_median=None, baseline_mad=0.0,
                baseline_runs=len(baseline_values), regressed=False,
            ))
            continue
        median, mad = rolling_baseline(baseline_values, window)
        noise_bar = median + 3.0 * MAD_SIGMA * mad
        regressed = (
            median > 0
            and current.value > median * (1.0 + threshold)
            and current.value > noise_bar
        )
        rows.append(ComparisonRow(
            name=name, unit=current.unit, current=current.value,
            baseline_median=median, baseline_mad=mad,
            baseline_runs=len(baseline_values), regressed=regressed,
        ))
    return ComparisonReport(
        run_id=current_run, rows=tuple(rows), threshold=threshold
    )


def detect_regressions(
    history,
    *,
    current_run: str | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
    min_samples: int = DEFAULT_MIN_SAMPLES,
) -> tuple:
    """The flagged rows of :func:`compare_runs` (empty when clean)."""
    return compare_runs(
        history,
        current_run=current_run,
        threshold=threshold,
        window=window,
        min_samples=min_samples,
    ).regressions
