"""Prometheus-style text exposition for the metrics registry.

:func:`render_exposition` turns a registry snapshot (the mapping
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` returns) into the
text format every monitoring scraper already speaks::

    # TYPE serve_requests counter
    serve_requests 42.0
    # TYPE serve_request_seconds histogram
    serve_request_seconds_bucket{endpoint="/eval",le="0.0001"} 0
    ...
    serve_request_seconds_sum{endpoint="/eval"} 1.25
    serve_request_seconds_count{endpoint="/eval"} 42

Mapping rules:

- dotted metric names are sanitized (``serve.requests`` →
  ``serve_requests``; any character outside ``[a-zA-Z0-9_:]`` becomes
  an underscore);
- counters and gauges expose their value directly;
- :class:`~repro.obs.metrics.BucketHistogram` becomes a native
  Prometheus ``histogram``: cumulative ``_bucket{le="..."}`` series
  (the exposition is cumulative even though the registry stores
  per-bucket counts), plus ``_sum`` and ``_count``;
- the sampled-window :class:`~repro.obs.metrics.Histogram` becomes a
  ``summary``: ``{quantile="0.5"}``/``{quantile="0.95"}`` series from
  its windowed percentiles, plus exact ``_sum``/``_count``.

:func:`parse_exposition` is the inverse used by the round-trip tests
and the CI scrape check: it rebuilds a snapshot-shaped mapping (keys
re-encoded with :func:`~repro.obs.metrics.encode_metric_key` over the
*sanitized* names) and raises :class:`~repro.errors.ObservabilityError`
with code ``OBS_EXPOSITION_MALFORMED`` on text it cannot make sense of.
"""

from __future__ import annotations

import math
import re

from ..errors import ObservabilityError
from .metrics import encode_metric_key, get_registry

__all__ = [
    "render_exposition",
    "parse_exposition",
    "exposition_content_type",
]

#: Characters legal in an exposed metric name; everything else is
#: rewritten to ``_`` by :func:`_sanitize_name`.
_NAME_OK_RE = re.compile(r"[^a-zA-Z0-9_:]")

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)


def exposition_content_type() -> str:
    """The Content-Type for the text exposition format."""
    return "text/plain; version=0.0.4; charset=utf-8"


def _sanitize_name(name: str) -> str:
    cleaned = _NAME_OK_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize_name(str(key))}="{_escape_label(labels[key])}"'
        for key in sorted(labels)
    )
    return "{" + inner + "}"


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _split_key(key: str) -> str:
    """The base metric name from a snapshot key (``name{...}`` form)."""
    return key.split("{", 1)[0]


def _render_family(lines, name, kind, series) -> None:
    lines.append(f"# TYPE {name} {kind}")
    lines.extend(series)


def render_exposition(snapshot=None) -> str:
    """Render ``snapshot`` (default: the live registry) as exposition text."""
    if snapshot is None:
        snapshot = get_registry().snapshot()
    # Group series by exposed family name so each # TYPE header covers
    # every label set of the metric, as the format requires.
    families: dict = {}
    order: list = []
    for key in snapshot:
        entry = snapshot[key]
        base = _sanitize_name(_split_key(key))
        if base not in families:
            families[base] = []
            order.append(base)
        families[base].append((key, entry))
    lines: list = []
    for base in order:
        entries = families[base]
        kind = entries[0][1].get("type")
        for _, entry in entries:
            if entry.get("type") != kind:
                raise ObservabilityError(
                    f"metric family {base!r} mixes types "
                    f"{kind!r} and {entry.get('type')!r}",
                    code="OBS_EXPOSITION_MALFORMED",
                )
        if kind in ("counter", "gauge"):
            series = [
                f"{base}{_format_labels(entry.get('labels'))} "
                f"{_format_value(entry.get('value', 0.0))}"
                for _, entry in entries
            ]
            _render_family(lines, base, kind, series)
        elif kind == "histogram":
            series = []
            for _, entry in entries:
                labels = dict(entry.get("labels") or {})
                for quantile, field in (("0.5", "p50"), ("0.95", "p95")):
                    if field in entry:
                        q_labels = dict(labels)
                        q_labels["quantile"] = quantile
                        series.append(
                            f"{base}{_format_labels(q_labels)} "
                            f"{_format_value(entry[field])}"
                        )
                tail = _format_labels(labels)
                series.append(
                    f"{base}_sum{tail} {_format_value(entry.get('sum', 0.0))}"
                )
                series.append(
                    f"{base}_count{tail} "
                    f"{_format_value(entry.get('count', 0))}"
                )
            _render_family(lines, base, "summary", series)
        elif kind == "bucket_histogram":
            series = []
            for _, entry in entries:
                labels = dict(entry.get("labels") or {})
                bounds = entry.get("bounds", ())
                buckets = entry.get("buckets", ())
                if len(buckets) != len(bounds) + 1:
                    raise ObservabilityError(
                        f"bucket histogram {base!r} has {len(buckets)} "
                        f"buckets for {len(bounds)} bounds",
                        code="OBS_EXPOSITION_MALFORMED",
                    )
                cumulative = 0
                for bound, bucket_count in zip(bounds, buckets):
                    cumulative += bucket_count
                    le_labels = dict(labels)
                    le_labels["le"] = _format_value(bound)
                    series.append(
                        f"{base}_bucket{_format_labels(le_labels)} "
                        f"{_format_value(cumulative)}"
                    )
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                series.append(
                    f"{base}_bucket{_format_labels(inf_labels)} "
                    f"{_format_value(entry.get('count', 0))}"
                )
                tail = _format_labels(labels)
                series.append(
                    f"{base}_sum{tail} {_format_value(entry.get('sum', 0.0))}"
                )
                series.append(
                    f"{base}_count{tail} "
                    f"{_format_value(entry.get('count', 0))}"
                )
            _render_family(lines, base, "histogram", series)
        else:
            raise ObservabilityError(
                f"cannot expose metric {base!r} of unknown type {kind!r}",
                code="OBS_EXPOSITION_MALFORMED",
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------
# Parsing (the round-trip half)
# ---------------------------------------------------------------------


def _parse_labels(raw: str, line: str) -> dict:
    labels: dict = {}
    index = 0
    length = len(raw)
    while index < length:
        equals = raw.find("=", index)
        if equals < 0 or equals + 1 >= length or raw[equals + 1] != '"':
            raise ObservabilityError(
                f"malformed label set in exposition line {line!r}",
                code="OBS_EXPOSITION_MALFORMED",
            )
        name = raw[index:equals]
        value_chars: list = []
        cursor = equals + 2
        while cursor < length:
            char = raw[cursor]
            if char == "\\":
                if cursor + 1 >= length:
                    break
                nxt = raw[cursor + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt)
                )
                cursor += 2
                continue
            if char == '"':
                break
            value_chars.append(char)
            cursor += 1
        if cursor >= length or raw[cursor] != '"':
            raise ObservabilityError(
                f"unterminated label value in exposition line {line!r}",
                code="OBS_EXPOSITION_MALFORMED",
            )
        labels[name] = "".join(value_chars)
        index = cursor + 1
        if index < length:
            if raw[index] != ",":
                raise ObservabilityError(
                    f"malformed label separator in exposition line {line!r}",
                    code="OBS_EXPOSITION_MALFORMED",
                )
            index += 1
    return labels


def _parse_value(raw: str, line: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        raise ObservabilityError(
            f"malformed sample value in exposition line {line!r}",
            code="OBS_EXPOSITION_MALFORMED",
        ) from None


def parse_exposition(text: str) -> dict:
    """Parse exposition text back into a snapshot-shaped mapping.

    The result maps ``name{labels}`` keys (sanitized names) to entries
    with the same fields :func:`render_exposition` consumed:
    counters/gauges carry ``value``; histograms carry ``count``,
    ``sum``, ``bounds`` and per-bucket ``buckets``; summaries carry
    ``count``/``sum`` plus any ``p50``/``p95`` quantiles.
    """
    types: dict = {}
    samples: list = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                    raise ObservabilityError(
                        f"unknown metric type in exposition line {line!r}",
                        code="OBS_EXPOSITION_MALFORMED",
                    )
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ObservabilityError(
                f"malformed exposition line {line!r}",
                code="OBS_EXPOSITION_MALFORMED",
            )
        labels = _parse_labels(match.group("labels") or "", line)
        value = _parse_value(match.group("value"), line)
        samples.append((match.group("name"), labels, value))

    def family_of(name: str) -> tuple:
        """(family name, sample role) honoring _bucket/_sum/_count."""
        for suffix, role in (("_bucket", "bucket"), ("_sum", "sum"),
                             ("_count", "count")):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) in ("histogram", "summary"):
                return base, role
        return name, "value"

    result: dict = {}
    histograms: dict = {}
    for name, labels, value in samples:
        base, role = family_of(name)
        kind = types.get(base, "untyped")
        if kind in ("counter", "gauge", "untyped"):
            key = encode_metric_key(base, labels)
            entry = {"type": "gauge" if kind == "untyped" else kind,
                     "value": value}
            if labels:
                entry["labels"] = dict(labels)
            result[key] = entry
        else:
            plain = {k: v for k, v in labels.items()
                     if k not in ("le", "quantile")}
            key = encode_metric_key(base, plain)
            slot = histograms.setdefault(
                key, {"kind": kind, "labels": plain, "buckets": [],
                      "quantiles": {}, "sum": 0.0, "count": 0}
            )
            if role == "bucket":
                if "le" not in labels:
                    raise ObservabilityError(
                        f"bucket sample without le label: {name!r}",
                        code="OBS_EXPOSITION_MALFORMED",
                    )
                slot["buckets"].append(
                    (_parse_value(labels["le"], labels["le"]), value)
                )
            elif role == "sum":
                slot["sum"] = value
            elif role == "count":
                slot["count"] = int(value)
            elif "quantile" in labels:
                slot["quantiles"][labels["quantile"]] = value
            else:
                raise ObservabilityError(
                    f"unexpected bare sample {name!r} in {kind} family",
                    code="OBS_EXPOSITION_MALFORMED",
                )
    for key, slot in histograms.items():
        if slot["kind"] == "summary":
            entry = {
                "type": "histogram",
                "count": slot["count"],
                "sum": slot["sum"],
            }
            for quantile, field in (("0.5", "p50"), ("0.95", "p95")):
                if quantile in slot["quantiles"]:
                    entry[field] = slot["quantiles"][quantile]
        else:
            ordered = sorted(slot["buckets"], key=lambda pair: pair[0])
            if not ordered or not math.isinf(ordered[-1][0]):
                raise ObservabilityError(
                    f"histogram {key!r} exposition lacks a +Inf bucket",
                    code="OBS_EXPOSITION_MALFORMED",
                )
            bounds = [bound for bound, _ in ordered[:-1]]
            cumulative = [int(count) for _, count in ordered]
            buckets = [cumulative[0]] + [
                b - a for a, b in zip(cumulative, cumulative[1:])
            ]
            if any(count < 0 for count in buckets):
                raise ObservabilityError(
                    f"histogram {key!r} bucket counts are not cumulative",
                    code="OBS_EXPOSITION_MALFORMED",
                )
            entry = {
                "type": "bucket_histogram",
                "count": slot["count"],
                "sum": slot["sum"],
                "bounds": bounds,
                "buckets": buckets,
            }
        if slot["labels"]:
            entry["labels"] = dict(slot["labels"])
        result[key] = entry
    return {key: result[key] for key in sorted(result)}
