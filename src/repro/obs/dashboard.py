"""One-page self-contained HTML performance dashboard.

:func:`render_dashboard` folds the observability surfaces — metrics
snapshot, profiler tree, span waterfall, benchmark history — plus
roofline thumbnails into a single HTML document with inline CSS and
inline SVG only: no scripts, no network fetches, openable from a file
share or a CI artifact.  ``gables report dashboard out.html`` runs a
small instrumented demo workload (the Figure 6 walkthrough plus a
fraction sweep) when the current process has nothing collected yet, so
the page is never empty.

The ``viz`` package imports ``core`` which imports ``obs``, so this
module must lazy-import ``viz`` inside functions to avoid a cycle.
"""

from __future__ import annotations

import html as _html
import math

from .bench import read_history
from .metrics import get_registry
from .profile import format_profile, get_profiler
from .trace import get_tracer

#: Cap rendered waterfall rows; beyond this the longest spans win.
MAX_WATERFALL_ROWS = 48

#: Cap sparkline panels (one per timing metric in the history).
MAX_SPARKLINES = 12

#: Cap span bars per worker lane in the fleet view.
MAX_LANE_ROWS = 10

#: Log-tail length in the fleet view.
FLEET_LOG_TAIL = 20

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 72rem; color: #0b0b0b; background: #fcfcfb; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem;
     border-bottom: 1px solid #e4e3de; padding-bottom: 0.3rem; }
table { border-collapse: collapse; font-size: 0.85rem; }
th, td { padding: 0.25rem 0.7rem; text-align: left;
         border-bottom: 1px solid #e4e3de; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
pre { background: #f4f3ef; padding: 0.8rem; overflow-x: auto;
      font-size: 0.8rem; }
.spark { display: inline-block; margin: 0.4rem 1rem 0.4rem 0;
         vertical-align: top; font-size: 0.8rem; }
.thumb { display: inline-block; margin: 0.4rem 1rem 0.4rem 0;
         vertical-align: top; }
.empty { color: #52514e; font-style: italic; }
footer { margin-top: 3rem; color: #52514e; font-size: 0.8rem; }
"""


def _span_depths(spans) -> dict:
    by_id = {record.span_id: record for record in spans}
    depths: dict = {}

    def depth_of(record) -> int:
        cached = depths.get(record.span_id)
        if cached is not None:
            return cached
        seen = set()
        depth = 0
        parent_id = record.parent_id
        while parent_id is not None and parent_id in by_id:
            if parent_id in seen:
                break
            seen.add(parent_id)
            depth += 1
            parent_id = by_id[parent_id].parent_id
        depths[record.span_id] = depth
        return depth

    for record in spans:
        depth_of(record)
    return depths


def waterfall_svg(spans, width: int = 960) -> str:
    """Finished spans as a timeline waterfall (one bar per span).

    Bars run from each span's start to its end relative to the earliest
    start; rows follow start order, colors cycle by nesting depth.
    When there are more spans than :data:`MAX_WATERFALL_ROWS`, the
    longest survive (the short ones are exactly the ones a waterfall
    cannot resolve visually anyway).
    """
    from ..viz.svg import SERIES_COLORS, TEXT_PRIMARY, SvgCanvas

    closed = [record for record in spans if record.end_s is not None]
    if not closed:
        canvas = SvgCanvas(width=max(width, 64), height=64)
        canvas.text(12, 36, "no finished spans", size=12)
        return canvas.to_string()
    if len(closed) > MAX_WATERFALL_ROWS:
        keep = set(
            id(r) for r in sorted(
                closed, key=lambda r: -r.duration_s
            )[:MAX_WATERFALL_ROWS]
        )
        closed = [r for r in closed if id(r) in keep]
    closed.sort(key=lambda r: r.start_s)
    depths = _span_depths(closed)
    t0 = min(r.start_s for r in closed)
    t1 = max(r.end_s for r in closed)
    span_s = max(t1 - t0, 1e-12)
    row_h, gap, margin, header = 18, 2, 12, 24
    label_w = 220
    height = header + len(closed) * (row_h + gap) + margin
    canvas = SvgCanvas(width=max(width, 64), height=max(height, 64))
    plot_w = canvas.width - margin - label_w - margin
    canvas.text(margin, header - 8,
                f"{len(closed)} spans over {span_s:.6f}s",
                color=TEXT_PRIMARY, size=12, weight="bold")
    for row, record in enumerate(closed):
        y = header + row * (row_h + gap)
        depth = depths[record.span_id]
        label = ("  " * min(depth, 8)) + record.name
        if len(label) > 34:
            label = label[:33] + "…"
        canvas.text(margin, y + row_h - 5, label, size=10)
        x = margin + label_w + plot_w * (record.start_s - t0) / span_s
        bar_w = max(1.0, plot_w * record.duration_s / span_s)
        canvas.rect(
            x, y, bar_w, row_h,
            SERIES_COLORS[depth % len(SERIES_COLORS)],
            tooltip=(f"{record.name}: {record.duration_s:.6f}s "
                     f"(thread {record.thread}, status {record.status})"),
        )
    return canvas.to_string()


def sparkline_svg(values, width: int = 180, height: int = 40,
                  label: str = "") -> str:
    """A tiny trend line for one metric's history (newest right)."""
    from ..viz.svg import SERIES_COLORS, SvgCanvas

    values = [float(v) for v in values]
    canvas = SvgCanvas(width=max(width, 64), height=max(height, 64))
    if not values:
        return canvas.to_string()
    margin = 6
    lo, hi = min(values), max(values)
    spread = (hi - lo) or 1.0
    plot_w = canvas.width - 2 * margin
    plot_h = canvas.height - 2 * margin
    step = plot_w / max(len(values) - 1, 1)
    points = [
        (margin + i * step,
         margin + plot_h * (1.0 - (v - lo) / spread))
        for i, v in enumerate(values)
    ]
    if len(points) == 1:
        points = [points[0], (points[0][0] + 1, points[0][1])]
    canvas.polyline(points, SERIES_COLORS[0], width=1.5,
                    tooltip=label or None)
    canvas.circle(points[-1][0], points[-1][1], r=2.5,
                  color=SERIES_COLORS[5])
    return canvas.to_string()


def _bucket_quantile(entry: dict, q: float):
    """Upper-bound quantile estimate from a bucket_histogram entry."""
    count = entry.get("count", 0)
    buckets = entry.get("buckets", ())
    if not count or not buckets:
        return None
    rank = max(1, math.ceil(q * count))
    cumulative = 0
    bounds = entry.get("bounds", ())
    for index, bucket_count in enumerate(buckets):
        cumulative += bucket_count
        if cumulative >= rank:
            if index < len(bounds):
                return bounds[index]
            return entry.get("max")
    return entry.get("max")


def _metrics_section(snapshot) -> str:
    if not snapshot:
        return '<p class="empty">no metrics collected</p>'
    rows = []
    for name, entry in sorted(snapshot.items()):
        kind = entry.get("type", "?")
        if kind == "histogram":
            count = entry.get("count", 0)
            total = entry.get("sum", 0.0)
            mean = entry.get("mean", total / count if count else 0.0)
            value = f"n={count} sum={total:.6g} mean={mean:.6g}"
            if "p95" in entry:
                value += f" p50={entry['p50']:.6g} p95={entry['p95']:.6g}"
        elif kind == "bucket_histogram":
            value = (f"n={entry.get('count', 0)} "
                     f"sum={entry.get('sum', 0.0):.6g}")
            p50 = _bucket_quantile(entry, 0.50)
            p99 = _bucket_quantile(entry, 0.99)
            if p50 is not None and p99 is not None:
                value += f" p50<={p50:.6g} p99<={p99:.6g}"
        else:
            value = f"{entry.get('value', 0):.6g}"
        rows.append(
            f"<tr><td>{_html.escape(name)}</td>"
            f"<td>{_html.escape(kind)}</td>"
            f'<td class="num">{_html.escape(value)}</td></tr>'
        )
    return ("<table><tr><th>metric</th><th>type</th><th>value</th></tr>"
            + "".join(rows) + "</table>")


def _profile_section(nodes) -> str:
    from ..viz.flamegraph import profile_flame_svg

    nodes = tuple(nodes)
    if not nodes:
        return '<p class="empty">profiler collected nothing</p>'
    tree = _html.escape(format_profile(nodes))
    flame = profile_flame_svg(nodes, width=960)
    return f"<pre>{tree}</pre>{flame}"


def _sparkline_section(history) -> str:
    timings = [r for r in history if r.unit == "s"]
    if not timings:
        return ('<p class="empty">no benchmark history '
                "(run the benchmark suite to populate "
                "BENCH_HISTORY.jsonl)</p>")
    series: dict = {}
    for record in timings:
        series.setdefault(record.name, []).append(record.value)
    parts = []
    for name in sorted(series)[:MAX_SPARKLINES]:
        values = series[name]
        parts.append(
            '<span class="spark">'
            f"{sparkline_svg(values, label=name)}<br>"
            f"{_html.escape(name)}: {values[-1]:.6g}s "
            f"({len(values)} runs)</span>"
        )
    dropped = len(series) - min(len(series), MAX_SPARKLINES)
    if dropped:
        parts.append(f'<p class="empty">({dropped} more metrics in the '
                     "history file)</p>")
    return "".join(parts)


def fleet_lanes_svg(shards, width: int = 960) -> str:
    """Per-worker span lanes on one shared wall-clock axis.

    Each worker (telemetry shard) gets a band; inside it, that
    worker's longest spans (up to :data:`MAX_LANE_ROWS`) are drawn as
    bars, timestamps rebased through the shard's clock anchor so the
    lanes line up the way the merged Perfetto trace does.
    """
    from ..viz.svg import SERIES_COLORS, TEXT_PRIMARY, SvgCanvas
    from .context import anchor_offset

    lanes = []
    for shard in shards:
        offset = anchor_offset(shard.anchor)
        spans = [
            (record.start_s + offset, record.end_s + offset, record)
            for record in shard.spans if record.end_s is not None
        ]
        spans.sort(key=lambda item: -(item[1] - item[0]))
        spans = sorted(spans[:MAX_LANE_ROWS], key=lambda item: item[0])
        lanes.append((shard, spans))
    all_spans = [item for _, spans in lanes for item in spans]
    if not all_spans:
        canvas = SvgCanvas(width=max(width, 64), height=64)
        canvas.text(12, 36, "no worker spans", size=12)
        return canvas.to_string()
    t0 = min(start for start, _, _ in all_spans)
    t1 = max(end for _, end, _ in all_spans)
    total_s = max(t1 - t0, 1e-12)
    row_h, gap, margin, header, lane_pad = 14, 2, 12, 24, 10
    label_w = 200
    height = header + margin
    for _, spans in lanes:
        height += lane_pad + max(len(spans), 1) * (row_h + gap)
    canvas = SvgCanvas(width=max(width, 64), height=max(height, 64))
    plot_w = canvas.width - margin - label_w - margin
    canvas.text(margin, header - 8,
                f"{len(lanes)} worker lanes over {total_s:.6f}s",
                color=TEXT_PRIMARY, size=12, weight="bold")
    y = header
    for lane_index, (shard, spans) in enumerate(lanes):
        y += lane_pad
        label = f"worker {shard.worker_id} (pid {shard.pid})"
        canvas.text(margin, y + row_h - 4, label, size=10,
                    color=TEXT_PRIMARY, weight="bold")
        color = SERIES_COLORS[lane_index % len(SERIES_COLORS)]
        for row, (start, end, record) in enumerate(spans):
            bar_y = y + row * (row_h + gap)
            x = margin + label_w + plot_w * (start - t0) / total_s
            bar_w = max(1.0, plot_w * (end - start) / total_s)
            canvas.rect(
                x, bar_y, bar_w, row_h, color,
                tooltip=(f"{shard.worker_id}: {record.name} "
                         f"{end - start:.6f}s"),
            )
        y += max(len(spans), 1) * (row_h + gap)
    return canvas.to_string()


def _fleet_health_table(shards) -> str:
    from .collect import straggler_report

    rows = []
    for health in straggler_report(shards):
        rss = "-" if health.rss_kb is None else f"{health.rss_kb}"
        verdict = "STRAGGLER" if health.straggler else "ok"
        rows.append(
            f"<tr><td>{_html.escape(health.worker_id)}</td>"
            f'<td class="num">{health.shard}</td>'
            f'<td class="num">{health.pid}</td>'
            f'<td class="num">{health.heartbeats}</td>'
            f'<td class="num">{health.wall_s:.3f}</td>'
            f'<td class="num">{health.cpu_s:.3f}</td>'
            f'<td class="num">{rss}</td>'
            f"<td>{verdict}</td></tr>"
        )
    return (
        "<table><tr><th>worker</th><th>shard</th><th>pid</th>"
        "<th>heartbeats</th><th>wall (s)</th><th>cpu (s)</th>"
        "<th>peak rss (kB)</th><th>verdict</th></tr>"
        + "".join(rows) + "</table>"
    )


def _fleet_log_tail(merged) -> str:
    from .logging import tail_logs

    tail = tail_logs(merged.logs, FLEET_LOG_TAIL)
    if not tail:
        return '<p class="empty">no structured log records</p>'
    lines = []
    for record in tail:
        extra = ""
        if record.fields:
            extra = " " + " ".join(
                f"{key}={value}" for key, value in sorted(record.fields.items())
            )
        lines.append(
            f"{record.ts:.3f} {record.level:<7} [{record.worker_id or '-'}] "
            f"{record.event}{(' ' + record.message) if record.message else ''}"
            f"{extra}"
        )
    return f"<pre>{_html.escape(chr(10).join(lines))}</pre>"


def _fleet_section(merged) -> str:
    """The fleet tab: lanes, health table, merged flamegraph, log tail."""
    from ..viz.flamegraph import profile_flame_svg

    summary = merged.summary()
    trace = summary["trace_id"][:12] or "<none>"
    headline = (
        f"fleet run {summary['fleet_run_id'] or '<unstamped>'} — "
        f"trace {trace}…, "
        f"{len(summary['workers'])} workers, {summary['spans']} spans, "
        f"{summary['log_records']} log records"
    )
    if merged.profile:
        flame = profile_flame_svg(
            merged.profile, width=960, title="merged fleet profile"
        )
    else:
        flame = '<p class="empty">no merged profile</p>'
    return (
        f"<p>{_html.escape(headline)}</p>"
        f"<h3>Worker lanes</h3>{fleet_lanes_svg(merged.shards)}"
        f"<h3>Worker health</h3>{_fleet_health_table(merged.shards)}"
        f"<h3>Merged flamegraph</h3>{flame}"
        f"<h3>Log tail</h3>{_fleet_log_tail(merged)}"
    )


def _roofline_section(rooflines) -> str:
    rooflines = tuple(rooflines)
    if not rooflines:
        return '<p class="empty">no roofline thumbnails</p>'
    return "".join(
        f'<span class="thumb">{svg}<br>{_html.escape(label)}</span>'
        for label, svg in rooflines
    )


def render_dashboard(
    *,
    metrics=None,
    profile_nodes=None,
    spans=None,
    history=(),
    rooflines=(),
    fleet=None,
    title: str = "Gables performance observatory",
) -> str:
    """The one-page dashboard as a self-contained HTML string.

    Every argument defaults to the live global collector (metrics
    registry, profiler, tracer); pass explicit data to render saved
    artifacts instead.  ``fleet`` is an optional
    :class:`~repro.obs.collect.MergedTelemetry` — when given, a fleet
    health section (per-worker lanes, heartbeat/straggler table, merged
    flamegraph, log tail) renders first.  The output embeds everything
    inline — CSS, SVG, text — and references no external resources.
    """
    if metrics is None:
        metrics = get_registry().snapshot()
    if profile_nodes is None:
        profile_nodes = get_profiler().report()
    if spans is None:
        spans = get_tracer().finished_spans()
    fleet_html = ""
    if fleet is not None:
        fleet_html = (
            '<section id="fleet">\n<h2>Fleet</h2>\n'
            f"{_fleet_section(fleet)}\n</section>\n"
        )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{_html.escape(title)}</title>
<style>{_CSS}</style>
</head>
<body>
<h1>{_html.escape(title)}</h1>
{fleet_html}<section id="metrics">
<h2>Metrics</h2>
{_metrics_section(metrics)}
</section>
<section id="profile">
<h2>Phase profile</h2>
{_profile_section(profile_nodes)}
</section>
<section id="waterfall">
<h2>Span waterfall</h2>
{waterfall_svg(spans)}
</section>
<section id="sparklines">
<h2>Benchmark history</h2>
{_sparkline_section(history)}
</section>
<section id="rooflines">
<h2>Rooflines</h2>
{_roofline_section(rooflines)}
</section>
<footer>generated offline by the repro observability stack —
no scripts, no network.</footer>
</body>
</html>
"""


def demo_rooflines() -> tuple:
    """Roofline SVG thumbnails for the Figure 6 walkthrough."""
    from ..core.two_ip import FIGURE_6_SEQUENCE
    from ..viz import RooflinePlotData, roofline_svg

    thumbs = []
    for scenario in FIGURE_6_SEQUENCE:
        data = RooflinePlotData.from_model(
            scenario.soc(), scenario.workload()
        )
        thumbs.append((scenario.name, roofline_svg(data, width=300,
                                                   height=220)))
    return tuple(thumbs)


def collect_demo_activity() -> None:
    """Run a small instrumented workload into the global collectors.

    Enables tracing and profiling, evaluates the Figure 6 walkthrough
    (base model and the interconnect variant) and a 9-point fraction
    sweep, so a fresh process still renders a populated dashboard.
    Collection stays enabled so the caller's own activity keeps
    accumulating; callers that care should reset afterwards.
    """
    from ..core import evaluate, evaluate_variant, variant_from_config
    from ..core.two_ip import FIGURE_6_SEQUENCE
    from ..explore import sweep_fraction
    from .trace import enable_tracing

    enable_tracing()
    profiler = get_profiler()
    profiler.enabled = True
    for scenario in FIGURE_6_SEQUENCE:
        soc, workload = scenario.soc(), scenario.workload()
        evaluate(soc, workload)
        evaluate_variant(
            soc, workload, variant_from_config("interconnect", soc, None)
        )
    demo = FIGURE_6_SEQUENCE[1]
    sweep_fraction(
        demo.soc(), demo.workload(), 1,
        [k / 8 for k in range(9)],
    )


def write_dashboard_html(path, history_path=None, demo: bool = True) -> str:
    """Render the dashboard to ``path``; returns the HTML written.

    With ``demo`` (the default), an instrumented demo workload runs
    first whenever the global profiler has collected nothing, so the
    page always has content.  ``history_path`` points at a
    ``BENCH_HISTORY.jsonl`` file (missing file -> empty trend section).
    """
    if demo and not get_profiler().report():
        collect_demo_activity()
    history: tuple = ()
    if history_path is not None:
        try:
            history = read_history(history_path)
        except OSError:
            history = ()
    document = render_dashboard(history=history, rooflines=demo_rooflines())
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return document


def write_fleet_dashboard_html(path, telemetry_dir,
                               history_path=None) -> str:
    """Render a fleet run's merged telemetry to ``path`` as a dashboard.

    Loads every worker shard under ``telemetry_dir``, merges them, and
    renders the dashboard *from the merged view*: the fleet section on
    top, and the metrics / profile / waterfall sections showing the
    merged snapshot, tree, and renumbered spans rather than this
    process's (empty) collectors.
    """
    from .collect import (
        MergedTelemetry,
        discover_shards,
        merge_telemetry,
        read_shard,
    )

    shards = tuple(
        read_shard(d) for d in discover_shards(telemetry_dir)
    )
    if shards:
        merged = merge_telemetry(shards)
    else:
        # Zero workers (an aborted run, an empty directory) still
        # deserves a valid page, not a traceback.
        merged = MergedTelemetry(
            fleet_run_id="", trace_id="", workers=(), spans=(),
            metrics={}, profile=(), logs=(), heartbeats={}, shards=(),
        )
    history: tuple = ()
    if history_path is not None:
        try:
            history = read_history(history_path)
        except OSError:
            history = ()
    document = render_dashboard(
        metrics=merged.metrics,
        profile_nodes=merged.profile,
        spans=merged.spans,
        history=history,
        fleet=merged,
        title="Gables fleet observatory",
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return document


# ---------------------------------------------------------------------
# The live serve tab (scraped from a running gables-serve)
# ---------------------------------------------------------------------


def _http_get(url: str, path: str, *, timeout_s: float = 10.0) -> str:
    """One stdlib GET against a ``gables serve`` endpoint; body text."""
    import http.client

    from ..errors import ObservabilityError

    if url.startswith("http://"):
        netloc = url[len("http://"):]
    elif "://" in url:
        raise ObservabilityError(
            f"only http:// URLs are supported, got {url!r}"
        )
    else:
        netloc = url
    host, _, port = netloc.rstrip("/").partition(":")
    conn = http.client.HTTPConnection(
        host or "127.0.0.1", int(port) if port else 80, timeout=timeout_s
    )
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        if response.status >= 400:
            raise ObservabilityError(
                f"GET {path} on {url} answered {response.status}"
            )
        return response.read().decode("utf-8")
    except OSError as err:
        raise ObservabilityError(
            f"cannot scrape {url}{path}: {err or type(err).__name__}"
        ) from err
    finally:
        conn.close()


def _slo_section(slo: dict) -> str:
    if not slo or not slo.get("objectives"):
        return '<p class="empty">no SLO report</p>'
    from .slo import format_slo_report

    state = (
        f"SLO BREACH — severity {slo.get('severity')}"
        if slo.get("breached") else "all objectives within budget"
    )
    return (
        f"<p><strong>{_html.escape(state)}</strong> "
        f"({slo.get('window_events', 0)} events in window)</p>"
        f"<pre>{_html.escape(format_slo_report(slo))}</pre>"
    )


def render_serve_dashboard(*, metrics=None, slo=None, url: str = "",
                           refresh_s: float = 5.0,
                           title: str = "Gables serve observatory") -> str:
    """The live serve tab as a self-contained auto-refreshing page.

    Same no-scripts rule as :func:`render_dashboard` — the refresh is a
    ``<meta http-equiv="refresh">`` tag, so the page stays openable
    from a file share while tracking a live server when served fresh.
    ``metrics`` is a snapshot-shaped mapping (e.g. from
    :func:`~repro.obs.expo.parse_exposition`), ``slo`` the ``GET /slo``
    report document.
    """
    metrics = metrics or {}
    slo = slo or {}
    source = (
        f"scraped from {_html.escape(url)}" if url else "no live source"
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="{refresh_s:g}">
<title>{_html.escape(title)}</title>
<style>{_CSS}</style>
</head>
<body>
<h1>{_html.escape(title)}</h1>
<p>{source}; auto-refreshes every {refresh_s:g}s.</p>
<section id="slo">
<h2>SLO error budget</h2>
{_slo_section(slo)}
</section>
<section id="serve-metrics">
<h2>Serve metrics</h2>
{_metrics_section(metrics)}
</section>
<footer>generated by the repro observability stack —
no scripts, refresh via meta tag only.</footer>
</body>
</html>
"""


def write_serve_dashboard_html(path, url: str, *,
                               refresh_s: float = 5.0) -> str:
    """Scrape ``/metrics`` + ``/slo`` from ``url`` and render the serve tab.

    The page auto-refreshes via a meta tag, so pointing a browser at a
    periodically rewritten file (or serving it behind the scraper)
    yields a live view without any client-side code.
    """
    from .expo import parse_exposition

    metrics = parse_exposition(_http_get(url, "/metrics"))
    import json as _json

    slo = _json.loads(_http_get(url, "/slo"))
    document = render_serve_dashboard(
        metrics=metrics, slo=slo, url=url, refresh_s=refresh_s
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return document
