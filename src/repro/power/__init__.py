"""Power and energy extension: the axis the paper motivates but defers.

The paper frames every SoC decision inside a ~3 W thermal design point
and an all-day battery; this package adds that axis to Gables without
new workload inputs:

- :mod:`.energy` — per-IP energy models, usecase energy accounting,
  battery-life estimates, offload energy ratios;
- :mod:`.tdp` — TDP-constrained attainable performance (the "power
  roofline") and the sufficient-TDP solver;
- :mod:`.scenario` — day-level episode accounting (the all-day-battery
  constraint).
"""

from .energy import (
    EnergyModel,
    IPEnergy,
    UsecaseEnergy,
    battery_life_hours,
    offload_energy_ratio,
    usecase_energy,
)
from .scenario import (
    DayReport,
    Episode,
    EpisodeCost,
    day_report,
    episode_cost,
    hours_of_usecase_within_budget,
)
from .tdp import (
    POWER,
    PowerConstrainedResult,
    dynamic_energy_per_op,
    evaluate_power_constrained,
    max_tdp_needed,
    power_roofline_curve,
)

__all__ = [
    "DayReport",
    "EnergyModel",
    "Episode",
    "EpisodeCost",
    "IPEnergy",
    "POWER",
    "day_report",
    "episode_cost",
    "hours_of_usecase_within_budget",
    "PowerConstrainedResult",
    "UsecaseEnergy",
    "battery_life_hours",
    "dynamic_energy_per_op",
    "evaluate_power_constrained",
    "max_tdp_needed",
    "offload_energy_ratio",
    "power_roofline_curve",
    "usecase_energy",
]
