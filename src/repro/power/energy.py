"""Energy models for SoC usecases.

The paper's motivation is energy-first: consumer SoCs live under "a
tight 3 Watt thermal design point" with all-day-battery requirements,
and accelerators exist because they are "an order of magnitude" more
energy-efficient than CPUs.  Base Gables models performance only; this
package adds the energy axis so early-stage studies can ask the
paper's implicit questions — does an offload that *speeds things up*
also fit the power budget, and what does a usecase cost in battery?

An :class:`EnergyModel` assigns each IP an energy per operation and a
static (leakage/idle) power, plus a DRAM energy per byte.  Usecase
energy then follows directly from the same ``fi``/``Ii`` parameters
Gables already uses — no new workload inputs required.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import require_finite_positive, require_nonnegative
from ..core.gables import evaluate, ip_terms
from ..core.params import SoCSpec, Workload
from ..errors import SpecError, WorkloadError


@dataclass(frozen=True)
class IPEnergy:
    """Energy parameters for one IP block.

    Parameters
    ----------
    joules_per_op:
        Dynamic energy of one operation on this IP.  Accelerators have
        much lower values than the CPU — the paper quotes the Hexagon
        DSP at ~8x and ~25x better than CPU and GPU respectively.
    idle_watts:
        Static power whenever the SoC is on (clock/leakage).
    """

    joules_per_op: float
    idle_watts: float = 0.0

    def __post_init__(self) -> None:
        require_finite_positive(self.joules_per_op, "joules_per_op")
        require_nonnegative(self.idle_watts, "idle_watts")


@dataclass(frozen=True)
class EnergyModel:
    """Per-IP energy plus the DRAM interface cost.

    Parameters
    ----------
    ip_energy:
        One :class:`IPEnergy` per IP, in SoC order.
    dram_joules_per_byte:
        Energy to move one byte across the off-chip interface (LPDDR
        I/O + controller).  Off-chip movement often dominates — the
        reason operational intensity is an *energy* knob too.
    """

    ip_energy: tuple
    dram_joules_per_byte: float

    def __post_init__(self) -> None:
        if not isinstance(self.ip_energy, tuple):
            object.__setattr__(self, "ip_energy", tuple(self.ip_energy))
        if not self.ip_energy:
            raise SpecError("EnergyModel needs at least one IP entry")
        for entry in self.ip_energy:
            if not isinstance(entry, IPEnergy):
                raise SpecError("ip_energy must contain IPEnergy instances")
        require_finite_positive(self.dram_joules_per_byte,
                                "dram_joules_per_byte")

    @property
    def n_ips(self) -> int:
        """Number of IPs this model covers."""
        return len(self.ip_energy)

    def check_matches(self, soc: SoCSpec) -> None:
        """Raise unless this model covers exactly ``soc``'s IPs."""
        if self.n_ips != soc.n_ips:
            raise WorkloadError(
                f"energy model covers {self.n_ips} IPs but SoC has "
                f"{soc.n_ips}"
            )

    @classmethod
    def mobile_default(cls, soc: SoCSpec) -> "EnergyModel":
        """A defensible mobile default, scaled by acceleration.

        The CPU is pinned at 50 pJ/op (a big-core ballpark); each
        accelerator is assumed ``5x + Ai/2`` more efficient — crude,
        but it reproduces the order-of-magnitude gap the paper cites.
        DRAM costs 100 pJ/byte (LPDDR4-class).
        """
        cpu_pj = 50e-12
        entries = []
        for index, ip in enumerate(soc.ips):
            if index == 0:
                entries.append(IPEnergy(cpu_pj, idle_watts=0.05))
            else:
                efficiency = 5.0 + ip.acceleration / 2.0
                entries.append(
                    IPEnergy(cpu_pj / efficiency, idle_watts=0.01)
                )
        return cls(ip_energy=tuple(entries), dram_joules_per_byte=100e-12)


@dataclass(frozen=True)
class UsecaseEnergy:
    """Energy accounting for one unit of usecase work.

    All figures are per normalized work unit (1 op of usecase work);
    multiply by the usecase's total ops for absolute joules.
    """

    compute_joules: float  # sum over IPs of fi * J/op
    dram_joules: float  # total off-chip bytes * J/byte
    static_joules: float  # idle power * runtime
    runtime: float  # seconds per unit work (from Gables)

    @property
    def total_joules(self) -> float:
        """Everything, per unit work."""
        return self.compute_joules + self.dram_joules + self.static_joules

    @property
    def average_power(self) -> float:
        """Watts drawn while the usecase runs."""
        return self.total_joules / self.runtime

    @property
    def energy_per_op(self) -> float:
        """Joules per operation (work is normalized to 1 op)."""
        return self.total_joules


def usecase_energy(
    soc: SoCSpec, workload: Workload, model: EnergyModel
) -> UsecaseEnergy:
    """Energy of one unit of usecase work at the Gables operating point.

    Uses the Gables runtime (the attainable bound) for the static
    term: a faster design finishes sooner and leaks less — the
    race-to-idle effect.
    """
    model.check_matches(soc)
    result = evaluate(soc, workload)
    runtime = 1.0 / result.attainable

    compute = math.fsum(
        workload.fractions[i] * model.ip_energy[i].joules_per_op
        for i in range(soc.n_ips)
    )
    total_bytes = math.fsum(term.data_bytes for term in ip_terms(soc, workload))
    dram = total_bytes * model.dram_joules_per_byte
    static = runtime * math.fsum(
        entry.idle_watts for entry in model.ip_energy
    )
    return UsecaseEnergy(
        compute_joules=compute,
        dram_joules=dram,
        static_joules=static,
        runtime=runtime,
    )


def battery_life_hours(
    soc: SoCSpec,
    workload: Workload,
    model: EnergyModel,
    battery_watt_hours: float,
    ops_per_second: float | None = None,
) -> float:
    """Hours of continuous usecase execution on a given battery.

    By default the usecase runs at the Gables attainable rate; pass
    ``ops_per_second`` for a fixed-rate usecase (e.g. locked 30 FPS),
    which draws proportionally less dynamic power.
    """
    require_finite_positive(battery_watt_hours, "battery_watt_hours")
    energy = usecase_energy(soc, workload, model)
    attainable = 1.0 / energy.runtime
    if ops_per_second is None:
        rate = attainable
    else:
        require_finite_positive(ops_per_second, "ops_per_second")
        if ops_per_second > attainable:
            raise WorkloadError(
                f"requested rate {ops_per_second:.3g} ops/s exceeds the "
                f"attainable bound {attainable:.3g}"
            )
        rate = ops_per_second
    dynamic_watts = (energy.compute_joules + energy.dram_joules) * rate
    static_watts = energy.static_joules / energy.runtime
    total_watts = dynamic_watts + static_watts
    return battery_watt_hours / total_watts


def offload_energy_ratio(
    soc: SoCSpec, workload: Workload, model: EnergyModel
) -> float:
    """Energy of the usecase relative to running it all on the CPU.

    < 1 means the offload saves energy.  The comparison keeps the
    CPU-only intensity equal to the usecase's ``I0``.
    """
    cpu_only = Workload.single_ip(
        soc.n_ips, 0, workload.intensities[0], name="cpu-only"
    )
    offloaded = usecase_energy(soc, workload, model).total_joules
    baseline = usecase_energy(soc, cpu_only, model).total_joules
    return offloaded / baseline
