"""TDP-constrained Gables: the power roofline.

Mobile SoCs live under a thermal design power (the paper: "a tight 3
Watt thermal design point constraint").  Sustained performance is
therefore bounded not only by compute and bandwidth but by power:

    P_power = (TDP - P_static) / E_avg

where ``E_avg`` is the usecase's average energy per op (dynamic compute
plus off-chip movement).  This extension adds that bound as one more
term in the Gables min() — a *horizontal* roofline in (intensity,
performance) space whose height rises with operational intensity
(fewer off-chip joules per op), making data reuse a power lever just
as Section VII's fourth conjecture treats it as a bandwidth lever.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import require_finite_positive
from ..core.curves import RooflineCurve
from ..core.gables import evaluate, ip_terms
from ..core.params import SoCSpec, Workload
from ..core.result import GablesResult, pick_bottleneck
from ..errors import EvaluationError
from .energy import EnergyModel

#: Component label for the power bound in results.
POWER = "power"


@dataclass(frozen=True)
class PowerConstrainedResult:
    """Gables result plus the TDP term.

    ``gables`` carries the unconstrained evaluation; ``attainable`` is
    the power-aware bound, ``power_bound`` the TDP-only ceiling, and
    ``bottleneck`` may now be ``"power"``.
    """

    gables: GablesResult
    power_bound: float
    attainable: float
    bottleneck: str
    tdp_watts: float

    @property
    def power_limited(self) -> bool:
        """True when TDP, not compute or bandwidth, binds."""
        return self.bottleneck == POWER

    def sustained_fraction(self) -> float:
        """Share of the performance-only bound that TDP permits."""
        return self.attainable / self.gables.attainable


def dynamic_energy_per_op(
    soc: SoCSpec, workload: Workload, model: EnergyModel
) -> float:
    """Average dynamic joules per usecase op (compute + DRAM traffic)."""
    model.check_matches(soc)
    compute = math.fsum(
        workload.fractions[i] * model.ip_energy[i].joules_per_op
        for i in range(soc.n_ips)
    )
    total_bytes = math.fsum(
        term.data_bytes for term in ip_terms(soc, workload)
    )
    return compute + total_bytes * model.dram_joules_per_byte


def evaluate_power_constrained(
    soc: SoCSpec,
    workload: Workload,
    model: EnergyModel,
    tdp_watts: float,
) -> PowerConstrainedResult:
    """Evaluate Gables with the TDP term added to the min().

    The static power of all IPs is burned regardless; only the
    remainder buys dynamic work.  Raises when static power alone
    exceeds the TDP (the design cannot even idle).
    """
    require_finite_positive(tdp_watts, "tdp_watts")
    base = evaluate(soc, workload)

    static = math.fsum(entry.idle_watts for entry in model.ip_energy)
    headroom = tdp_watts - static
    if headroom <= 0:
        raise EvaluationError(
            f"static power {static:.3g} W alone exceeds the "
            f"{tdp_watts:.3g} W TDP"
        )
    energy_per_op = dynamic_energy_per_op(soc, workload, model)
    power_bound = headroom / energy_per_op

    times = {term.name: term.time for term in base.ip_terms}
    times["memory"] = base.memory_time
    times[POWER] = 1.0 / power_bound
    primary, _ = pick_bottleneck(times)

    attainable = min(base.attainable, power_bound)
    return PowerConstrainedResult(
        gables=base,
        power_bound=power_bound,
        attainable=attainable,
        bottleneck=primary,
        tdp_watts=tdp_watts,
    )


def power_roofline_curve(
    soc: SoCSpec,
    workload: Workload,
    model: EnergyModel,
    tdp_watts: float,
    name: str = POWER,
) -> RooflineCurve:
    """The power bound as a plottable curve over average intensity.

    At average intensity ``I`` the off-chip term is ``E_dram / I``
    joules per op, so the bound is::

        P(I) = (TDP - P_static) / (E_compute + E_dram_per_byte / I)

    We approximate it on the scaled-roofline axes with the slant/roof
    form: slope ``headroom / E_dram_per_byte`` (the I -> 0 asymptote is
    linear in I) and roof ``headroom / E_compute`` (the I -> inf
    limit).  The min() of the two *over*-estimates the smooth curve by
    at most 2x (worst at the ridge, where both energy terms are equal)
    — still a valid upper bound, in keeping with the plot's roofline
    grammar; :func:`evaluate_power_constrained` uses the exact form.
    """
    require_finite_positive(tdp_watts, "tdp_watts")
    model.check_matches(soc)
    static = math.fsum(entry.idle_watts for entry in model.ip_energy)
    headroom = tdp_watts - static
    if headroom <= 0:
        raise EvaluationError("no TDP headroom above static power")
    compute_energy = math.fsum(
        workload.fractions[i] * model.ip_energy[i].joules_per_op
        for i in range(soc.n_ips)
    )
    return RooflineCurve(
        name=name,
        slope=headroom / model.dram_joules_per_byte,
        roof=headroom / compute_energy,
    )


def max_tdp_needed(
    soc: SoCSpec, workload: Workload, model: EnergyModel
) -> float:
    """TDP at which power stops binding for this usecase.

    Power draw at the performance-only bound, plus static power: any
    budget at or above this leaves the Gables answer unchanged — the
    thermal analogue of
    :func:`repro.explore.minimum_sufficient_bandwidth`.
    """
    base = evaluate(soc, workload)
    static = math.fsum(entry.idle_watts for entry in model.ip_energy)
    energy_per_op = dynamic_energy_per_op(soc, workload, model)
    return static + energy_per_op * base.attainable
