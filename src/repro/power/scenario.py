"""Day-scenario energy accounting: the all-day-battery constraint.

The paper's opening constraint set is "strict power, thermal and
energy constraints ... and all-day battery life".  A phone's day is a
sequence of usecase episodes — camera for minutes, video for an hour,
idle for most of it.  This module composes the per-usecase energy
model into day-level answers: total energy, battery drain, and which
episode dominates the budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import require_finite_positive, require_nonnegative
from ..core.params import SoCSpec, Workload
from ..errors import SpecError, WorkloadError
from .energy import EnergyModel, usecase_energy


@dataclass(frozen=True)
class Episode:
    """One stretch of the day running a usecase at a fixed rate.

    Parameters
    ----------
    workload:
        The usecase's Gables parameters.
    duration_s:
        Wall-clock seconds the episode lasts.
    ops_per_second:
        Demand rate (e.g. ``ops_per_frame * fps``); ``None`` means
        flat-out at the SoC's attainable bound.
    name:
        Label for reports.
    """

    workload: Workload
    duration_s: float
    ops_per_second: float | None = None
    name: str = ""

    def __post_init__(self) -> None:
        require_finite_positive(self.duration_s, "duration_s")
        if self.ops_per_second is not None:
            require_finite_positive(self.ops_per_second, "ops_per_second")
        if not self.name:
            object.__setattr__(self, "name", self.workload.name)


@dataclass(frozen=True)
class EpisodeCost:
    """Energy accounting for one episode."""

    name: str
    duration_s: float
    average_watts: float
    joules: float


@dataclass(frozen=True)
class DayReport:
    """Energy accounting for a whole scenario."""

    episodes: tuple
    total_joules: float
    battery_watt_hours: float

    @property
    def battery_drain_fraction(self) -> float:
        """Share of the battery the scenario consumes (may exceed 1)."""
        return self.total_joules / (self.battery_watt_hours * 3600.0)

    @property
    def survives(self) -> bool:
        """True when the battery outlasts the scenario."""
        return self.battery_drain_fraction <= 1.0

    def dominant_episode(self) -> EpisodeCost:
        """The episode consuming the most energy."""
        return max(self.episodes, key=lambda episode: episode.joules)

    def energy_share(self) -> dict:
        """Episode name -> fraction of the day's energy."""
        return {
            episode.name: episode.joules / self.total_joules
            for episode in self.episodes
        }


def episode_cost(soc: SoCSpec, episode: Episode,
                 model: EnergyModel) -> EpisodeCost:
    """Watts and joules for one episode on one SoC.

    At a fixed demand rate below the attainable bound, dynamic power
    scales down proportionally (the SoC idles between items); static
    power runs for the whole episode either way.
    """
    energy = usecase_energy(soc, episode.workload, model)
    attainable = 1.0 / energy.runtime
    rate = episode.ops_per_second
    if rate is None:
        rate = attainable
    elif rate > attainable * (1 + 1e-9):
        raise WorkloadError(
            f"episode {episode.name!r} demands {rate:.3g} ops/s but the "
            f"SoC attains only {attainable:.3g}"
        )
    dynamic_watts = (energy.compute_joules + energy.dram_joules) * rate
    static_watts = energy.static_joules / energy.runtime
    watts = dynamic_watts + static_watts
    return EpisodeCost(
        name=episode.name,
        duration_s=episode.duration_s,
        average_watts=watts,
        joules=watts * episode.duration_s,
    )


def day_report(soc: SoCSpec, episodes, model: EnergyModel,
               battery_watt_hours: float) -> DayReport:
    """Evaluate a whole scenario against a battery.

    Episode names must be unique so the energy-share report is
    unambiguous.
    """
    require_finite_positive(battery_watt_hours, "battery_watt_hours")
    episodes = list(episodes)
    if not episodes:
        raise SpecError("a day scenario needs at least one episode")
    names = [episode.name for episode in episodes]
    if len(set(names)) != len(names):
        raise SpecError(f"episode names must be unique, got {names!r}")
    costs = tuple(episode_cost(soc, episode, model) for episode in episodes)
    return DayReport(
        episodes=costs,
        total_joules=math.fsum(cost.joules for cost in costs),
        battery_watt_hours=battery_watt_hours,
    )


def hours_of_usecase_within_budget(
    soc: SoCSpec,
    workload: Workload,
    model: EnergyModel,
    battery_watt_hours: float,
    background_watts: float = 0.3,
    ops_per_second: float | None = None,
) -> float:
    """Hours of one usecase a battery sustains, with system overhead.

    Adds a constant ``background_watts`` (display, radios, rails) on
    top of the SoC's draw — the difference between a chip-level and a
    phone-level battery answer.
    """
    require_nonnegative(background_watts, "background_watts")
    cost = episode_cost(
        soc,
        Episode(workload, duration_s=3600.0,
                ops_per_second=ops_per_second),
        model,
    )
    total_watts = cost.average_watts + background_watts
    return battery_watt_hours / total_watts
