"""The fault-isolated evaluation core behind the HTTP surface.

:class:`EvaluationService` is the transport-free heart of
``gables serve``; :mod:`repro.serve.server` is a thin HTTP adapter
over it.  Robustness is the load-bearing design, one mechanism per
failure mode:

- **admission control** — a bounded in-flight budget; requests beyond
  it are *shed* with ``SERVE_OVERLOADED`` (HTTP 429 + ``Retry-After``)
  instead of queuing without bound, and a draining service refuses new
  work with ``SERVE_SHUTTING_DOWN`` (503).
- **deadlines** — every request carries a wall-clock budget (default
  and cap from :class:`ServiceConfig`); a request that cannot finish
  in time returns ``SERVE_DEADLINE_EXCEEDED`` (504) while the work of
  every other in-flight request is unaffected.
- **micro-batching** — concurrent scalar ``eval`` requests are
  coalesced (up to ``batch_max`` within ``batch_window_s``) into one
  :func:`repro.core.batch.evaluate_batch` call per SoC under
  ``on_error="record"`` semantics, so one poisoned request degrades to
  a structured per-request error and its batch neighbors come back
  **bitwise identical** to an offline scalar ``evaluate``.
- **result cache** — responses are cached on the canonical
  spec/workload hash; with a ``cache_path`` the cache is an
  append-only JSONL file recovered on restart through the shared
  torn-tail-tolerant reader (crash-only restart: kill the process,
  start it again, warm cache).
- **circuit breaker** — batch work normally runs the compiled engine
  tier; if that tier starts *failing* the breaker trips and routes
  batches to the interpreted engine for a cooldown (each failed
  attempt also falls back immediately, so the request that observed
  the failure still succeeds).
- **watchdog** — a wedged worker thread (stuck evaluating) is
  detected after ``watchdog_hang_s``, its in-flight batch is failed
  with ``SERVE_WORKER_CRASHED``, and a fresh worker is started; the
  stale thread's late results are discarded (first writer wins).
- **graceful drain** — :meth:`EvaluationService.drain` stops
  admission, lets in-flight work finish inside a timeout, then stops
  the worker and watchdog.

Chaos hooks: when ``allow_fault_injection`` is set, a request may
carry ``"fault": "crash" | "wedge" | "compiled-crash"`` to exercise
exactly these paths (the load generator's fault plans do); outside
chaos runs the field is rejected at validation.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..core.batch import evaluate_batch
from ..core.variants import evaluate_variant, variant_from_config
from ..errors import (
    FINE_GRAINED_CODES,
    ReproError,
    ServeError,
    SimulationError,
    SpecError,
    error_classes,
)
from ..explore.sweep import (
    sweep_fraction,
    sweep_intensity,
    sweep_memory_bandwidth,
)
from ..io.json_codec import encode_result, encode_soc
from ..io.jsonl import append_jsonl, read_jsonl_tolerant
from ..obs.metrics import counter as _counter
from .protocol import (
    EvalRequest,
    canonical_request_key,
    parse_eval_request,
    parse_sweep_request,
    parse_variants_request,
)

_REQUESTS = _counter("serve.requests")
_REQ_EVAL = _counter("serve.requests.eval")
_REQ_SWEEP = _counter("serve.requests.sweep")
_REQ_VARIANTS = _counter("serve.requests.variants")
_SHED = _counter("serve.shed")
_DEADLINE_MISSES = _counter("serve.deadline_exceeded")
_BATCHES = _counter("serve.batches")
_BATCHED = _counter("serve.batched_requests")
_CACHE_HITS = _counter("serve.cache.hits")
_CACHE_MISSES = _counter("serve.cache.misses")
_BREAKER_TRIPS = _counter("serve.breaker.trips")
_BREAKER_FALLBACKS = _counter("serve.breaker.fallbacks")
_RECYCLES = _counter("serve.watchdog.recycles")
_FAULTS = _counter("serve.faults.injected")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunable robustness budgets of one service instance.

    The defaults are sized for a small shared box: shed beyond 64
    in-flight requests, coalesce for at most 2 ms, give every request
    10 s unless it asks for less (never more than 60 s), recycle a
    worker stuck longer than 2 s.
    """

    queue_limit: int = 64
    batch_window_s: float = 0.002
    batch_max: int = 64
    default_deadline_s: float = 10.0
    max_deadline_s: float = 60.0
    max_sweep_points: int = 10_000
    max_body_bytes: int = 1_000_000
    cache_capacity: int = 1024
    cache_path: str | None = None
    engine: str = "auto"
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 5.0
    watchdog_poll_s: float = 0.05
    watchdog_hang_s: float = 2.0
    wedge_s: float = 8.0
    allow_fault_injection: bool = False
    slo_p99_s: float = 0.25

    def __post_init__(self) -> None:
        for name, minimum in (
            ("queue_limit", 1), ("batch_max", 1), ("cache_capacity", 1),
            ("max_sweep_points", 1), ("max_body_bytes", 1),
            ("breaker_threshold", 1),
        ):
            if getattr(self, name) < minimum:
                raise SpecError(
                    f"{name} must be >= {minimum}, got {getattr(self, name)}"
                )
        for name in (
            "batch_window_s", "default_deadline_s", "max_deadline_s",
            "breaker_cooldown_s", "watchdog_poll_s", "watchdog_hang_s",
            "wedge_s", "slo_p99_s",
        ):
            if not getattr(self, name) > 0:
                raise SpecError(
                    f"{name} must be positive, got {getattr(self, name)!r}"
                )
        if self.engine not in ("auto", "compiled", "interpreted"):
            raise SpecError(
                f"engine must be auto|compiled|interpreted, got "
                f"{self.engine!r}"
            )


class CircuitBreaker:
    """Closed → open → half-open breaker over the compiled batch tier.

    ``threshold`` consecutive failures trip it open; after
    ``cooldown_s`` one probe is allowed through (half-open) and its
    outcome decides between closing and re-opening.  Thread safe.
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 5.0,
                 clock=time.monotonic) -> None:
        self._threshold = int(threshold)
        self._cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"``."""
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May the protected tier be attempted right now?"""
        with self._lock:
            if self._state == "closed" or self._state == "half-open":
                return True
            if self._clock() - self._opened_at >= self._cooldown_s:
                self._state = "half-open"
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            tripping = (
                self._state == "half-open"
                or self._failures >= self._threshold
            )
            if tripping and self._state != "open":
                self._state = "open"
                self._opened_at = self._clock()
                _BREAKER_TRIPS.inc()
            elif tripping:
                self._opened_at = self._clock()


class ResultCache:
    """Bounded LRU of response payloads, optionally crash-persistent.

    With a ``path`` every insert is appended as one JSONL line
    (:func:`repro.io.append_jsonl`); a restarted service replays the
    file through the shared torn-tail-tolerant reader and keeps the
    newest ``capacity`` entries — the crash-only recovery story: no
    shutdown handshake is needed for the cache to survive.
    """

    def __init__(self, capacity: int, path=None) -> None:
        self._capacity = int(capacity)
        self._path = path
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        if path is not None:
            import os

            if os.path.exists(os.fspath(path)):
                for key, payload in read_jsonl_tolerant(
                    path, _decode_cache_entry, error=ServeError,
                    label="cache record",
                ):
                    self._entries[key] = payload
                    self._entries.move_to_end(key)
                while len(self._entries) > self._capacity:
                    self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str):
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                _CACHE_MISSES.inc()
                return None
            self._entries.move_to_end(key)
            _CACHE_HITS.inc()
            return payload

    def put(self, key: str, payload: dict) -> None:
        with self._lock:
            fresh = key not in self._entries
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
            if fresh and self._path is not None:
                append_jsonl(self._path, {"key": key, "payload": payload})


def _decode_cache_entry(record) -> tuple:
    if not isinstance(record, dict):
        raise TypeError("cache record is not an object")
    return str(record["key"]), record["payload"]


def _error_for_code(code: str, message: str) -> ReproError:
    """Reconstruct the catalogued exception for a recorded failure."""
    cls = FINE_GRAINED_CODES.get(code)
    if cls is None:
        by_default = {c.code: c for c in error_classes()}
        cls = by_default.get(code, ReproError)
    return cls(message, code=code)


class _EvalJob:
    """One coalescable eval request: inputs, deadline, and a one-shot
    result slot (first writer wins — a watchdog failing a wedged batch
    and the stale worker finishing late cannot both land)."""

    __slots__ = (
        "request", "deadline", "soc_key", "event", "payload", "error",
        "_done", "_lock",
    )

    def __init__(self, request: EvalRequest, deadline: float,
                 soc_key: str) -> None:
        self.request = request
        self.deadline = deadline
        self.soc_key = soc_key
        self.event = threading.Event()
        self.payload = None
        self.error = None
        self._done = False
        self._lock = threading.Lock()

    def finish(self, payload=None, error=None) -> bool:
        """Deliver the outcome; False when someone else already did."""
        with self._lock:
            if self._done:
                return False
            self._done = True
            self.payload = payload
            self.error = error
        self.event.set()
        return True


def _deadline_error(context: str) -> ServeError:
    _DEADLINE_MISSES.inc()
    return ServeError(
        f"{context} exceeded its deadline budget",
        code="SERVE_DEADLINE_EXCEEDED",
    )


class EvaluationService:
    """Admission, coalescing, isolation, and degradation — no HTTP.

    All three ``handle_*`` entry points are thread safe (the HTTP
    layer calls them from one thread per connection), raise
    :class:`~repro.errors.ReproError` subclasses for every failure,
    and return JSON-ready payload dicts on success.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 clock=time.monotonic) -> None:
        self.config = config if config is not None else ServiceConfig()
        self._clock = clock
        self.cache = ResultCache(
            self.config.cache_capacity, self.config.cache_path
        )
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold,
            self.config.breaker_cooldown_s,
            clock=clock,
        )
        self._cv = threading.Condition()
        self._queue: deque = deque()
        self._inflight = 0
        self._draining = False
        self._stopping = False
        self._closed = False
        self._started_at = time.time()
        self._worker_gen = 0
        self._current_batch = None
        self._busy_since = None
        self._worker = None
        self._start_worker()
        self._watchdog = threading.Thread(
            target=self._watchdog_loop, name="gables-serve-watchdog",
            daemon=True,
        )
        self._watchdog.start()

    # -- admission -----------------------------------------------------

    @contextmanager
    def _admitted(self):
        with self._cv:
            if self._draining or self._stopping:
                raise ServeError(
                    "server is draining and admits no new requests",
                    code="SERVE_SHUTTING_DOWN",
                )
            if self._inflight >= self.config.queue_limit:
                _SHED.inc()
                raise ServeError(
                    f"admission queue full ({self.config.queue_limit} "
                    f"in flight); retry later",
                    code="SERVE_OVERLOADED",
                )
            self._inflight += 1
        try:
            yield
        finally:
            with self._cv:
                self._inflight -= 1
                self._cv.notify_all()

    def _request_deadline(self, requested) -> float:
        budget = (
            self.config.default_deadline_s if requested is None
            else min(requested, self.config.max_deadline_s)
        )
        return self._clock() + budget

    def _check_fault_allowed(self, fault) -> None:
        if fault is not None and not self.config.allow_fault_injection:
            raise ServeError(
                "fault injection is disabled on this server "
                "(start it with --chaos to enable)",
                code="SERVE_BAD_REQUEST",
            )

    # -- request handlers ----------------------------------------------

    def handle_eval(self, document) -> dict:
        """Scalar evaluation: validate, coalesce, isolate, respond."""
        _REQUESTS.inc()
        _REQ_EVAL.inc()
        with self._admitted():
            request = parse_eval_request(document)
            self._check_fault_allowed(request.fault)
            deadline = self._request_deadline(request.deadline_s)
            if self._clock() >= deadline:
                # Already over budget (e.g. a microscopic deadline):
                # fail before the cache can short-circuit the verdict.
                raise _deadline_error("eval request")
            if request.fault is None:
                cached = self.cache.get(request.cache_key)
                if cached is not None:
                    meta = dict(cached.get("meta", {}))
                    meta["cached"] = True
                    return {**cached, "meta": meta}
            soc_key = canonical_request_key(encode_soc(request.soc))
            job = _EvalJob(request, deadline, soc_key)
            with self._cv:
                if self._stopping:
                    raise ServeError(
                        "server is draining and admits no new requests",
                        code="SERVE_SHUTTING_DOWN",
                    )
                self._queue.append(job)
                self._cv.notify_all()
            remaining = deadline - self._clock()
            if not job.event.wait(max(0.0, remaining)):
                if job.finish(error=_deadline_error("eval request")):
                    raise job.error
                # The worker won the race while we were timing out.
            if job.error is not None:
                raise job.error
            if request.fault is None:
                self.cache.put(request.cache_key, job.payload)
            return job.payload

    def handle_sweep(self, document) -> dict:
        """Parameter sweep, evaluated inline on the calling thread."""
        _REQUESTS.inc()
        _REQ_SWEEP.inc()
        with self._admitted():
            request = parse_sweep_request(
                document, max_points=self.config.max_sweep_points
            )
            deadline = self._request_deadline(request.deadline_s)
            if self._clock() >= deadline:
                raise _deadline_error("sweep request")

            def run(engine: str):
                if request.param == "f":
                    return sweep_fraction(
                        request.soc, request.workload, request.ip_index,
                        request.values, on_error=request.on_error,
                        engine=engine,
                    )
                if request.param == "intensity":
                    return sweep_intensity(
                        request.soc, request.workload, request.ip_index,
                        request.values, on_error=request.on_error,
                        engine=engine,
                    )
                return sweep_memory_bandwidth(
                    request.soc, request.workload, request.values,
                    on_error=request.on_error, engine=engine,
                )

            series, engine = self._with_engine_fallback(run)
            return {
                "kind": "sweep",
                "parameter": series.parameter,
                "values": list(series.values()),
                "attainables": list(series.attainables()),
                "bottlenecks": [p.bottleneck for p in series.points],
                "transitions": [
                    {
                        "value": t.value,
                        "previous_value": t.previous_value,
                        "from": t.from_component,
                        "to": t.to_component,
                        "index": t.index,
                    }
                    for t in series.bottleneck_transitions()
                ],
                "errors": [
                    {
                        "coords": list(f.coords),
                        "code": f.code,
                        "message": f.message,
                    }
                    for f in series.errors
                ],
                "meta": {"engine": engine, "points": len(series.points)},
            }

    def handle_variants(self, document=None) -> dict:
        """Variant catalog (no body) or one variant evaluation."""
        _REQUESTS.inc()
        _REQ_VARIANTS.inc()
        if document is None:
            from ..core.variants import VARIANT_CHOICES

            # "phases" is workload-free (returns a PhasedResult, not a
            # GablesResult) and is not servable over this protocol.
            return {
                "kind": "variants",
                "variants": [v for v in VARIANT_CHOICES if v != "phases"],
            }
        with self._admitted():
            request = parse_variants_request(document)
            deadline = self._request_deadline(request.deadline_s)
            if self._clock() >= deadline:
                raise _deadline_error("variants request")
            try:
                variant = variant_from_config(
                    request.variant, request.soc, request.config
                )
                result = evaluate_variant(
                    request.soc, request.workload, variant
                )
            except ReproError:
                raise
            except Exception as err:
                raise ServeError(
                    f"worker crashed evaluating variant "
                    f"{request.variant!r}: {err}",
                    code="SERVE_WORKER_CRASHED",
                ) from err
            return {
                "kind": "eval",
                "result": encode_result(result),
                "meta": {
                    "cached": False,
                    "batched": 1,
                    "engine": "interpreted",
                    "variant": request.variant,
                },
            }

    # -- health and lifecycle ------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` document: liveness plus service metrics."""
        with self._cv:
            inflight = self._inflight
            queued = len(self._queue)
            draining = self._draining
        return {
            "status": "draining" if draining else "ok",
            "uptime_s": time.time() - self._started_at,
            "inflight": inflight,
            "queued": queued,
            "queue_limit": self.config.queue_limit,
            "breaker": self.breaker.state,
            "cache_entries": len(self.cache),
            "metrics": {
                "requests": _REQUESTS.value,
                "shed": _SHED.value,
                "deadline_exceeded": _DEADLINE_MISSES.value,
                "batches": _BATCHES.value,
                "batched_requests": _BATCHED.value,
                "cache_hits": _CACHE_HITS.value,
                "breaker_trips": _BREAKER_TRIPS.value,
                "watchdog_recycles": _RECYCLES.value,
                "faults_injected": _FAULTS.value,
            },
        }

    def load_stats(self) -> dict:
        """Instantaneous load: in-flight and queued request counts.

        The ``/metrics`` handler snapshots these into the
        ``serve.queue.depth``/``serve.inflight`` gauges at scrape time.
        """
        with self._cv:
            return {"inflight": self._inflight, "queued": len(self._queue)}

    def ready(self) -> tuple:
        """``(is_ready, document)`` for ``/readyz``.

        Not ready while draining (the SIGTERM window: load balancers
        stop routing here before in-flight work finishes) or while the
        admission queue is saturated.
        """
        with self._cv:
            draining = self._draining or self._stopping
            saturated = self._inflight >= self.config.queue_limit
        ready = not draining and not saturated
        return ready, {
            "ready": ready,
            "draining": draining,
            "saturated": saturated,
        }

    def drain(self, timeout_s: float = 10.0) -> dict:
        """Graceful shutdown: stop admitting, finish in-flight, stop.

        Returns ``{"drained": bool, "inflight_left": int}`` —
        ``drained`` is False only when in-flight work outlived the
        timeout (those requests are failed by their own deadlines, not
        abandoned silently).  Idempotent.
        """
        deadline = self._clock() + timeout_s
        with self._cv:
            self._draining = True
            self._cv.notify_all()
            while self._inflight > 0:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                self._cv.wait(min(remaining, 0.05))
            left = self._inflight
            self._stopping = True
            self._cv.notify_all()
        worker = self._worker
        if worker is not None:
            worker.join(timeout=max(0.1, deadline - self._clock()))
        with self._cv:
            self._closed = True
        self._watchdog.join(timeout=1.0)
        return {"drained": left == 0, "inflight_left": left}

    # -- the coalescing worker -----------------------------------------

    def _start_worker(self) -> None:
        with self._cv:
            gen = self._worker_gen
        worker = threading.Thread(
            target=self._worker_loop, args=(gen,),
            name=f"gables-serve-worker-{gen}", daemon=True,
        )
        self._worker = worker
        worker.start()

    def _worker_loop(self, gen: int) -> None:
        while True:
            jobs = self._next_batch(gen)
            if jobs is None:
                return
            try:
                self._process_batch(jobs, gen)
            finally:
                with self._cv:
                    if gen == self._worker_gen:
                        self._current_batch = None
                        self._busy_since = None

    def _next_batch(self, gen: int):
        """Block for work, then coalesce within the latency budget."""
        with self._cv:
            while True:
                if gen != self._worker_gen:
                    return None
                if self._queue:
                    break
                if self._stopping:
                    return None
                self._cv.wait(0.1)
            jobs = [self._queue.popleft()]
            horizon = self._clock() + self.config.batch_window_s
            while len(jobs) < self.config.batch_max:
                if self._queue:
                    jobs.append(self._queue.popleft())
                    continue
                remaining = horizon - self._clock()
                if remaining <= 0 or self._stopping:
                    break
                self._cv.wait(remaining)
                if gen != self._worker_gen:
                    # Recycled while coalescing: hand the batch to the
                    # fresh worker instead of racing it.
                    self._queue.extendleft(reversed(jobs))
                    return None
            self._current_batch = list(jobs)
            self._busy_since = self._clock()
        return jobs

    def _process_batch(self, jobs, gen: int) -> None:
        _BATCHES.inc()
        _BATCHED.inc(len(jobs))
        chaos = self.config.allow_fault_injection
        now = self._clock()
        live = []
        for job in jobs:
            if job.deadline <= now:
                job.finish(error=_deadline_error("eval request"))
            else:
                live.append(job)
        if chaos and any(j.request.fault == "wedge" for j in live):
            _FAULTS.inc()
            # Simulated stuck worker: sleep through the watchdog's
            # patience.  When (if) we wake, our generation is stale
            # and every job was already failed over to the client.
            time.sleep(self.config.wedge_s)
            with self._cv:
                if gen != self._worker_gen:
                    return
        groups: dict = {}
        for job in live:
            if chaos and job.request.fault == "crash":
                _FAULTS.inc()
                job.finish(error=ServeError(
                    "injected fault: worker crashed evaluating this "
                    "request",
                    code="SERVE_WORKER_CRASHED",
                ))
            elif job.request.variant is None:
                groups.setdefault(job.soc_key, []).append(job)
            else:
                self._run_single(job)
        for group in groups.values():
            self._run_group(group)

    def _run_single(self, job) -> None:
        """One isolated variant evaluation; never raises."""
        request = job.request
        try:
            variant = variant_from_config(
                request.variant, request.soc, request.config
            )
            result = evaluate_variant(request.soc, request.workload, variant)
            payload = _eval_payload(
                result, batched=1, engine="interpreted",
                variant=request.variant,
            )
        except ReproError as err:
            job.finish(error=err)
        except Exception as err:
            job.finish(error=ServeError(
                f"worker crashed evaluating request: {err}",
                code="SERVE_WORKER_CRASHED",
            ))
        else:
            job.finish(payload=payload)

    def _with_engine_fallback(self, run):
        """Run ``run(engine)`` under the circuit breaker.

        The preferred engine (compiled tiers allowed) is attempted
        when the breaker admits it; a failure there records on the
        breaker and the *same* work retries interpreted, so the
        request that observed a compiled-tier fault still succeeds.
        Returns ``(result, engine_used)``.
        """
        preferred = self.config.engine
        if preferred != "interpreted" and self.breaker.allow():
            try:
                result = run(preferred)
            except ReproError:
                self.breaker.record_failure()
                _BREAKER_FALLBACKS.inc()
            else:
                self.breaker.record_success()
                return result, preferred
        return run("interpreted"), "interpreted"

    def _run_group(self, jobs) -> None:
        """Coalesced scalar evaluations for one SoC; never raises.

        ``on_error="record"`` keeps a bad row from touching its
        neighbors: valid rows are bitwise identical to an all-valid
        batch (pinned by the resilience suite), which in turn is
        bitwise identical to the scalar evaluator.
        """
        soc = jobs[0].request.soc
        fractions = np.array(
            [j.request.workload.fractions for j in jobs], dtype=float
        )
        intensities = np.array(
            [j.request.workload.intensities for j in jobs], dtype=float
        )
        chaos = self.config.allow_fault_injection
        inject_compiled = chaos and any(
            j.request.fault == "compiled-crash" for j in jobs
        )

        def run(engine: str):
            if inject_compiled and engine != "interpreted":
                _FAULTS.inc()
                raise SimulationError(
                    "injected fault: compiled tier crashed"
                )
            return evaluate_batch(
                soc, fractions, intensities, on_error="record",
                engine=engine,
            )

        try:
            batch, engine = self._with_engine_fallback(run)
        except ReproError as err:
            for job in jobs:
                job.finish(error=err)
            return
        except Exception as err:
            for job in jobs:
                job.finish(error=ServeError(
                    f"worker crashed evaluating batch: {err}",
                    code="SERVE_WORKER_CRASHED",
                ))
            return
        for index, job in enumerate(jobs):
            if batch.valid is not None and not bool(batch.valid[index]):
                failure = next(
                    (f for f in batch.errors if f.coords == (index,)),
                    None,
                )
                if failure is None:
                    job.finish(error=ServeError(
                        "batch row failed without a recorded cause",
                        code="SERVE_WORKER_CRASHED",
                    ))
                else:
                    job.finish(error=_error_for_code(
                        failure.code, failure.message
                    ))
            else:
                job.finish(payload=_eval_payload(
                    batch.result(index), batched=len(jobs),
                    engine=engine, variant=None,
                ))

    # -- the watchdog --------------------------------------------------

    def _watchdog_loop(self) -> None:
        while True:
            time.sleep(self.config.watchdog_poll_s)
            with self._cv:
                if self._closed:
                    return
                busy = self._busy_since
                wedged = (
                    busy is not None
                    and self._clock() - busy > self.config.watchdog_hang_s
                )
                if not wedged:
                    continue
                jobs = list(self._current_batch or ())
                self._current_batch = None
                self._busy_since = None
                self._worker_gen += 1
            _RECYCLES.inc()
            for job in jobs:
                job.finish(error=ServeError(
                    "worker thread wedged mid-evaluation and was "
                    "recycled; request abandoned",
                    code="SERVE_WORKER_CRASHED",
                ))
            self._start_worker()


def _eval_payload(result, *, batched: int, engine: str, variant) -> dict:
    return {
        "kind": "eval",
        "result": encode_result(result),
        "meta": {
            "cached": False,
            "batched": batched,
            "engine": engine,
            "variant": variant or "base",
        },
    }
