"""Concurrent load + chaos harness for a running ``gables serve``.

:func:`run_load` drives a live endpoint with N client threads issuing
scenario evaluations from :data:`repro.core.FIGURE_6_SEQUENCE`, and —
under a :class:`~repro.resilience.FaultPlan` — deterministically mixes
in *poisoned* requests that each exercise one robustness path:

==============================  =====================================
plan field (as probability)     injected request / expected outcome
==============================  =====================================
``dropout_probability``         workload whose fractions do not sum
                                to one → ``WORKLOAD_*`` (HTTP 400)
``bandwidth_episode_...``       ``fault: "crash"`` chaos hook →
                                ``SERVE_WORKER_CRASHED`` (500)
``thermal_throttle_...``        unknown top-level key →
                                ``SERVE_BAD_REQUEST`` (400)
``noise`` (when > 0)            1 ns deadline →
                                ``SERVE_DEADLINE_EXCEEDED`` (504)
==============================  =====================================

Every injected failure must come back as a *structured* JSON error
with a catalogued code — an injected request that returns success, or
a clean request that fails, is counted against the run.  The clean
requests double as a correctness oracle: each response payload is
kept with its scenario index so the caller can compare against
offline :func:`~repro.core.gables.evaluate` bitwise.

The draw sequence is seeded, so a given ``(plan, seed, clients,
requests_per_client)`` always issues the same request mix — chaos
runs are reproducible, per the resilience charter.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from ..core import FIGURE_6_SEQUENCE
from ..errors import ServeError
from ..io.json_codec import encode_soc, encode_workload
from ..obs.bench import append_history, make_record, new_run_id
from ..resilience import FAULT_PLANS, FaultPlan
from .client import ServiceClient

#: Injection kinds, in the order draws are consumed.
INJECTION_KINDS = (
    "bad-workload", "worker-crash", "bad-schema", "tiny-deadline"
)

#: Codes each injection kind is allowed to come back with.  A chaos
#: ``fault`` hook on a server started *without* ``--chaos`` is refused
#: at validation — still a structured error, still a pass.
EXPECTED_CODES = {
    "bad-workload": ("WORKLOAD_INVALID", "WORKLOAD_MALFORMED"),
    "worker-crash": ("SERVE_WORKER_CRASHED", "SERVE_BAD_REQUEST"),
    "bad-schema": ("SERVE_BAD_REQUEST",),
    "tiny-deadline": ("SERVE_DEADLINE_EXCEEDED",),
}


@dataclass(frozen=True)
class LoadReport:
    """Everything one :func:`run_load` run observed.

    ``clean_failures``/``fault_misses`` are the pass/fail core: a
    healthy server keeps both empty no matter the fault plan.
    ``clean_samples`` holds ``(scenario_index, payload)`` pairs for
    bitwise comparison against the offline evaluator.
    """

    url: str
    plan: str
    clients: int
    requests: int
    clean_requests: int
    injected_requests: int
    clean_failures: tuple
    fault_outcomes: tuple  # (worker, sequence, kind, code) per injection
    fault_misses: tuple    # injected requests with a wrong outcome
    clean_latencies_s: tuple
    clean_samples: tuple
    wall_s: float

    @property
    def ok(self) -> bool:
        """True when every request behaved as its kind demands."""
        return not self.clean_failures and not self.fault_misses

    @property
    def p50_s(self) -> float:
        return _percentile(self.clean_latencies_s, 50.0)

    @property
    def p99_s(self) -> float:
        return _percentile(self.clean_latencies_s, 99.0)

    @property
    def rps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0


def _percentile(values, q: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return float("nan")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def _resolve_plan(fault_plan) -> FaultPlan:
    if fault_plan is None:
        return FAULT_PLANS["none"]
    if isinstance(fault_plan, str):
        if fault_plan not in FAULT_PLANS:
            raise ServeError(
                f"unknown fault plan {fault_plan!r}; choose from "
                f"{sorted(FAULT_PLANS)}",
                code="SERVE_BAD_REQUEST",
            )
        return FAULT_PLANS[fault_plan]
    return fault_plan


def _draw_injection(plan: FaultPlan, rng: random.Random):
    """The injection kind for one request, or ``None`` for clean.

    One draw per kind, consumed in :data:`INJECTION_KINDS` order, so
    the sequence depends only on the seed and the plan's
    probabilities.
    """
    draws = [rng.random() for _ in INJECTION_KINDS]
    chances = (
        plan.dropout_probability,
        plan.bandwidth_episode_probability,
        plan.thermal_throttle_probability,
        1.0 if plan.noise > 0 else 0.0,
    )
    for kind, draw, chance in zip(INJECTION_KINDS, draws, chances):
        if kind == "tiny-deadline":
            # noise is a magnitude, not a probability; reuse the
            # dropout rate for how *often* to test deadlines.
            chance = plan.dropout_probability if chance else 0.0
        if draw < chance:
            return kind
    return None


def _request_documents():
    """Encoded (scenario_index, soc, workload) triples, cached once."""
    documents = []
    for index, scenario in enumerate(FIGURE_6_SEQUENCE):
        soc = scenario.soc()
        documents.append(
            (index, encode_soc(soc), encode_workload(scenario.workload()))
        )
    return documents


def _poison(kind: str, soc_doc: dict, workload_doc: dict) -> dict:
    document = {"soc": soc_doc, "workload": dict(workload_doc)}
    if kind == "bad-workload":
        fractions = list(workload_doc["fractions"])
        fractions[0] = fractions[0] + 0.5
        document["workload"] = {**workload_doc, "fractions": fractions}
    elif kind == "worker-crash":
        document["fault"] = "crash"
    elif kind == "bad-schema":
        document["frobnicate"] = True
    elif kind == "tiny-deadline":
        document["deadline_s"] = 1e-9
    return document


def run_load(
    url: str,
    *,
    clients: int = 8,
    requests_per_client: int = 25,
    fault_plan=None,
    seed: int = 0,
    timeout_s: float = 30.0,
) -> LoadReport:
    """Hammer ``url`` from ``clients`` threads; return the evidence.

    Each thread owns one :class:`ServiceClient` connection and a
    per-thread RNG seeded from ``seed`` — thread interleaving affects
    only timing, never which requests are issued.
    """
    if clients < 1 or requests_per_client < 1:
        raise ServeError(
            "clients and requests_per_client must be >= 1",
            code="SERVE_BAD_REQUEST",
        )
    plan = _resolve_plan(fault_plan)
    documents = _request_documents()
    lock = threading.Lock()
    clean_failures: list = []
    fault_outcomes: list = []
    fault_misses: list = []
    clean_latencies: list = []
    clean_samples: list = []
    counts = {"clean": 0, "injected": 0}

    harness_errors: list = []

    def drive(worker: int) -> None:
        try:
            _drive(worker)
        except BaseException as err:  # noqa: BLE001 - reported below
            with lock:
                harness_errors.append((worker, err))

    def _drive(worker: int) -> None:
        rng = random.Random(seed * 1_000_003 + worker)
        with ServiceClient(url, timeout_s=timeout_s) as client:
            for sequence in range(requests_per_client):
                index, soc_doc, workload_doc = documents[
                    (worker + sequence) % len(documents)
                ]
                kind = _draw_injection(plan, rng)
                if kind is None:
                    document = {"soc": soc_doc, "workload": workload_doc}
                else:
                    document = _poison(kind, soc_doc, workload_doc)
                started = time.perf_counter()
                status, payload = client.raw("POST", "/eval", document)
                elapsed = time.perf_counter() - started
                with lock:
                    if kind is None:
                        counts["clean"] += 1
                        if status == 200:
                            clean_latencies.append(elapsed)
                            clean_samples.append((index, payload))
                        else:
                            clean_failures.append(
                                (worker, sequence, status, payload)
                            )
                    else:
                        counts["injected"] += 1
                        code = (
                            payload.get("error", {}).get("code", "")
                            if isinstance(payload, dict) else ""
                        )
                        fault_outcomes.append(
                            (worker, sequence, kind, code)
                        )
                        if status == 200 or code not in EXPECTED_CODES[kind]:
                            fault_misses.append(
                                (worker, sequence, kind, status, code)
                            )

    threads = [
        threading.Thread(target=drive, args=(w,), name=f"loadgen-{w}")
        for w in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if harness_errors:
        worker, err = harness_errors[0]
        raise ServeError(
            f"load generator client {worker} crashed "
            f"({len(harness_errors)} of {clients} clients failed): {err}",
            code="SERVE_WORKER_CRASHED",
        ) from err
    return LoadReport(
        url=url,
        plan=plan.name,
        clients=clients,
        requests=counts["clean"] + counts["injected"],
        clean_requests=counts["clean"],
        injected_requests=counts["injected"],
        clean_failures=tuple(clean_failures),
        fault_outcomes=tuple(fault_outcomes),
        fault_misses=tuple(fault_misses),
        clean_latencies_s=tuple(clean_latencies),
        clean_samples=tuple(clean_samples),
        wall_s=wall,
    )


def slo_records(report: LoadReport, *, run_id: str | None = None) -> tuple:
    """The p50/p99/rps SLO observations as bench-history records.

    Percentiles come from the *exact* per-request duration list the
    report holds (no sampled-window bias), and ``samples`` records how
    many durations backed them — the weight the SLO engine's
    :func:`~repro.obs.slo.history_events` gives each run.
    """
    run_id = run_id if run_id is not None else new_run_id()
    meta = {
        "plan": report.plan,
        "clients": report.clients,
        "requests": report.requests,
        "clean_requests": report.clean_requests,
        "injected_requests": report.injected_requests,
        "samples": len(report.clean_latencies_s),
    }
    records = [
        make_record(
            "serve.loadgen.p50", report.p50_s, "s",
            run_id=run_id, meta=meta,
        ),
        make_record(
            "serve.loadgen.p99", report.p99_s, "s",
            run_id=run_id, meta=meta,
        ),
        make_record(
            "serve.loadgen.rps", report.rps, "count",
            run_id=run_id, meta=meta,
        ),
    ]
    return tuple(records)


def record_slo(report: LoadReport, history_path, *,
               run_id: str | None = None) -> int:
    """Append the run's SLO records to a bench-history JSONL file."""
    return append_history(history_path, slo_records(report, run_id=run_id))


def format_report(report: LoadReport) -> str:
    """The load report as aligned, human-readable text."""
    lines = [
        f"loadgen against {report.url} (plan {report.plan!r}, "
        f"{report.clients} client(s))",
        f"  requests:  {report.requests} total, "
        f"{report.clean_requests} clean, "
        f"{report.injected_requests} injected",
        f"  outcome:   {'PASS' if report.ok else 'FAIL'} "
        f"({len(report.clean_failures)} clean failure(s), "
        f"{len(report.fault_misses)} fault miss(es))",
    ]
    if report.clean_latencies_s:
        lines.append(
            f"  latency:   p50 {report.p50_s * 1e3:.2f} ms, "
            f"p99 {report.p99_s * 1e3:.2f} ms, "
            f"{report.rps:.0f} req/s"
        )
    if report.fault_outcomes:
        by_kind: dict = {}
        for _worker, _sequence, kind, code in report.fault_outcomes:
            by_kind.setdefault(kind, []).append(code)
        for kind in sorted(by_kind):
            codes = by_kind[kind]
            lines.append(
                f"  fault {kind}: {len(codes)} injected -> "
                + ", ".join(sorted(set(codes)))
            )
    for worker, sequence, status, payload in report.clean_failures[:5]:
        lines.append(
            f"  CLEAN FAILURE client {worker} seq {sequence}: "
            f"HTTP {status} {payload}"
        )
    for worker, sequence, kind, status, code in report.fault_misses[:5]:
        lines.append(
            f"  FAULT MISS client {worker} seq {sequence} ({kind}): "
            f"HTTP {status} code {code!r}"
        )
    return "\n".join(lines)
