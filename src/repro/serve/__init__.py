"""Gables as a service: fault-isolated evaluation over HTTP/JSON.

The paper's model is cheap enough to evaluate anywhere; what a shared
deployment adds is *failure domains* — many clients, one process, no
request allowed to take another down with it.  This package is that
deployment story, dependency-free (stdlib ``http.server`` + threads):

- :mod:`~repro.serve.protocol` — request schemas, strict validation,
  the ``SERVE_*`` error codes and their HTTP status mapping, and the
  canonical request hash the result cache keys on;
- :mod:`~repro.serve.service` — admission control with load shedding,
  per-request deadlines, the micro-batching coalescer (bitwise
  identical to offline scalar evaluation), the compiled-tier circuit
  breaker, the wedged-worker watchdog, and graceful drain;
- :mod:`~repro.serve.server` — the thin HTTP adapter
  (``gables serve``), with ``/healthz``, ``/readyz``, and
  SIGTERM-triggered drain;
- :mod:`~repro.serve.client` — a blocking client that re-raises
  server-side failures as the same :class:`~repro.errors.ReproError`
  subclasses offline callers see (``gables client``);
- :mod:`~repro.serve.loadgen` — the chaos load harness: deterministic
  fault-plan-driven poison requests, bitwise clean-response oracle,
  p50/p99 SLO records for the benchmark history.

See ``docs/serving.md`` for the operational walkthrough.
"""

from .client import ServiceClient
from .loadgen import (
    LoadReport,
    format_report,
    record_slo,
    run_load,
    slo_records,
)
from .protocol import (
    HTTP_STATUS_BY_CODE,
    canonical_request_key,
    error_body,
    error_from_payload,
    http_status_for,
    parse_eval_request,
    parse_sweep_request,
    parse_variants_request,
)
from .server import GablesServer, run_server
from .service import (
    CircuitBreaker,
    EvaluationService,
    ResultCache,
    ServiceConfig,
)

__all__ = [
    "HTTP_STATUS_BY_CODE",
    "CircuitBreaker",
    "EvaluationService",
    "GablesServer",
    "LoadReport",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "canonical_request_key",
    "error_body",
    "error_from_payload",
    "format_report",
    "http_status_for",
    "parse_eval_request",
    "parse_sweep_request",
    "parse_variants_request",
    "record_slo",
    "run_load",
    "run_server",
    "slo_records",
]
