"""A minimal blocking client for the evaluation service.

Stdlib ``http.client`` only — the same zero-dependency rule as the
server.  :class:`ServiceClient` keeps one persistent HTTP/1.1
connection (reconnecting once on a torn socket), sends/receives the
:mod:`repro.serve.protocol` JSON documents, and re-raises server-side
failures as the *same* :class:`~repro.errors.ReproError` subclasses an
offline caller would see — ``except WorkloadError`` works identically
against a local :func:`~repro.core.gables.evaluate` and a remote one.
"""

from __future__ import annotations

import http.client
import json

from ..errors import ReproError, ServeError
from ..io.json_codec import encode_soc, encode_workload
from ..obs.context import current_context, inject_headers, new_context
from ..obs.trace import span
from .protocol import error_from_payload


class ServiceClient:
    """One connection to a ``gables serve`` endpoint.

    Parameters
    ----------
    url:
        Base URL, e.g. ``http://127.0.0.1:8080`` (http only; the
        service is a loopback/LAN tool, not an internet-facing one).
    timeout_s:
        Socket timeout for connect and each response.

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, url: str, *, timeout_s: float = 30.0) -> None:
        if url.startswith("http://"):
            netloc = url[len("http://"):]
        elif "://" in url:
            raise ServeError(
                f"only http:// URLs are supported, got {url!r}",
                code="SERVE_BAD_REQUEST",
            )
        else:
            netloc = url
        netloc = netloc.rstrip("/")
        host, _, port = netloc.partition(":")
        self._host = host or "127.0.0.1"
        self._port = int(port) if port else 80
        self._timeout_s = timeout_s
        self._conn: http.client.HTTPConnection | None = None
        self.last_request_id = ""

    # -- transport -----------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout_s
            )
        return self._conn

    def _exchange(self, method: str, path: str, document=None) -> tuple:
        body = None
        headers = {}
        if document is not None:
            body = json.dumps(document, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # Wire-level trace propagation: the request carries the active
        # trace id (or starts a fresh trace) and, when tracing is on,
        # names the live client span as the server span's parent — the
        # HTTP analogue of env propagation into fleet workers.
        context = current_context()
        if context is None:
            context = new_context()
        with span(
            "serve.client.request", endpoint=path, method=method,
            trace_id=context.trace_id,
        ) as client_span:
            record = getattr(client_span, "record", None)
            inject_headers(
                context, headers,
                parent_span_id=record.span_id if record else None,
            )
            for attempt in (1, 2):
                conn = self._connection()
                try:
                    conn.request(method, path, body=body, headers=headers)
                    response = conn.getresponse()
                    raw = response.read()
                    break
                except (ConnectionError, http.client.HTTPException,
                        OSError) as err:
                    # One reconnect covers a server-side keep-alive
                    # close; a second failure is a real connectivity
                    # problem.
                    self.close()
                    if attempt == 2:
                        raise ServeError(
                            f"cannot reach "
                            f"http://{self._host}:{self._port} "
                            f"({err or type(err).__name__})"
                        ) from err
            self.last_request_id = response.headers.get(
                "X-Gables-Request-Id", ""
            )
            client_span.set_attribute(
                "request_id", self.last_request_id
            ).set_attribute("status", response.status)
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, ValueError) as err:
            raise ServeError(
                f"server returned invalid JSON ({err})",
                code="SERVE_BAD_REQUEST",
            ) from None
        return response.status, payload

    def _call(self, method: str, path: str, document=None) -> dict:
        status, payload = self._exchange(method, path, document)
        if status >= 400:
            raise error_from_payload(payload)
        return payload

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- endpoints -----------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._call("GET", "/healthz")

    def ready(self) -> bool:
        """``GET /readyz`` — True when the server admits requests."""
        status, _ = self._exchange("GET", "/readyz")
        return status == 200

    def variant_names(self) -> tuple:
        """``GET /variants`` — the servable variant names."""
        return tuple(self._call("GET", "/variants")["variants"])

    def evaluate(self, soc, workload, *, variant=None, config=None,
                 deadline_s=None, fault=None) -> dict:
        """``POST /eval`` — one scalar evaluation.

        ``soc``/``workload`` may be spec objects (encoded here) or
        already-encoded JSON documents.  Returns the response payload;
        the encoded result lives under ``"result"`` and is bitwise
        identical to offline :func:`~repro.core.gables.evaluate`.
        Raises the reconstructed :class:`~repro.errors.ReproError` on
        any failure.
        """
        document = {
            "soc": _encode(soc, encode_soc),
            "workload": _encode(workload, encode_workload),
        }
        if variant is not None:
            document["variant"] = variant
        if config is not None:
            document["config"] = config
        if deadline_s is not None:
            document["deadline_s"] = deadline_s
        if fault is not None:
            document["fault"] = fault
        return self._call("POST", "/eval", document)

    def sweep(self, soc, workload, *, param, values, ip_index=None,
              on_error=None, deadline_s=None) -> dict:
        """``POST /sweep`` — one parameter sweep."""
        document = {
            "soc": _encode(soc, encode_soc),
            "workload": _encode(workload, encode_workload),
            "param": param,
            "values": list(values),
        }
        if ip_index is not None:
            document["ip_index"] = ip_index
        if on_error is not None:
            document["on_error"] = on_error
        if deadline_s is not None:
            document["deadline_s"] = deadline_s
        return self._call("POST", "/sweep", document)

    def evaluate_variant(self, soc, workload, variant, *, config=None,
                         deadline_s=None) -> dict:
        """``POST /variants`` — one variant evaluation."""
        document = {
            "soc": _encode(soc, encode_soc),
            "workload": _encode(workload, encode_workload),
            "variant": variant,
        }
        if config is not None:
            document["config"] = config
        if deadline_s is not None:
            document["deadline_s"] = deadline_s
        return self._call("POST", "/variants", document)

    def raw(self, method: str, path: str, document=None) -> tuple:
        """An unchecked exchange: ``(status, payload)``, no raising.

        The load generator uses this to observe error responses as
        data instead of exceptions.
        """
        return self._exchange(method, path, document)


def _encode(value, encoder):
    return value if isinstance(value, dict) else encoder(value)
