"""Request/response schema for the Gables evaluation service.

The wire format is deliberately boring: JSON documents over HTTP POST,
reusing the exact ``soc``/``workload`` document schema the offline
``gables`` CLI reads (:mod:`repro.io`), so a file that evaluates
offline evaluates over the wire unchanged.  What this module adds is
the *robustness* contract of the request layer:

- **strict validation** — every request is checked against an explicit
  per-endpoint schema (required keys, types, ranges, and *no unknown
  keys*, so a typo'd field fails loudly instead of being ignored);
- **structured errors** — every failure serializes as
  ``{"error": {"code", "message", "http_status", "exit_code",
  "request_id"}}``, where ``code`` comes from the library-wide
  :data:`repro.errors.FINE_GRAINED_CODES` catalog (extended here with
  the ``SERVE_*`` family) and :data:`HTTP_STATUS_BY_CODE` maps every
  catalogued code onto one HTTP status;
- **error round-tripping** — :func:`error_from_payload` reconstructs
  the original :class:`~repro.errors.ReproError` subclass client-side,
  so a ``WorkloadError`` raised in the server is a ``WorkloadError``
  (same code, same CLI exit status) in the client.

:func:`canonical_request_key` is the cache/coalescing identity: a
SHA-256 over the canonical JSON of the evaluation-relevant fields, so
``65536`` vs ``65536.0`` and key order cannot alias or split cache
entries.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass

from ..core.params import SoCSpec, Workload
from ..core.variants import VARIANT_CHOICES
from ..errors import (
    FINE_GRAINED_CODES,
    ReproError,
    ServeError,
    error_classes,
    exit_code_for,
)
from ..io.json_codec import decode_soc, decode_workload
from ..resilience import ON_ERROR_MODES

#: Chaos fault keys a request may carry (honored only when the service
#: was started with fault injection enabled; see ``ServiceConfig``).
FAULT_KINDS = ("crash", "wedge", "compiled-crash")

#: HTTP status for every catalogued error code — class defaults and
#: fine-grained codes alike.  ``tests/test_errors.py`` asserts the
#: mapping is complete, so adding an error without deciding its HTTP
#: face is a test failure, not a runtime 500.
HTTP_STATUS_BY_CODE: dict = {
    # class defaults
    "REPRO_ERROR": 500,
    "SPEC_INVALID": 400,
    "WORKLOAD_INVALID": 400,
    "EVALUATION_FAILED": 422,
    "SIMULATION_FAILED": 500,
    "FITTING_FAILED": 500,
    "SERIALIZATION_FAILED": 400,
    "OBSERVABILITY_FAILED": 500,
    "MEASUREMENT_FAILED": 500,
    "SERVE_FAILED": 500,
    # fine-grained codes
    "SPEC_NEGATIVE_BANDWIDTH": 400,
    "SPEC_NONPOSITIVE_PEAK": 400,
    "WORKLOAD_FRACTION_RANGE": 400,
    "WORKLOAD_FRACTION_SUM": 400,
    "WORKLOAD_INTENSITY_NONPOSITIVE": 400,
    "EVAL_DEGENERATE_POINT": 422,
    "SERIALIZATION_NONFINITE": 400,
    "MEASUREMENT_DROPOUT": 500,
    "MEASUREMENT_TIMEOUT": 504,
    "MEASUREMENT_RETRIES_EXHAUSTED": 500,
    "MEASUREMENT_DEADLINE_EXCEEDED": 504,
    "SERVE_BAD_REQUEST": 400,
    "SERVE_UNKNOWN_ENDPOINT": 404,
    "SERVE_METHOD_NOT_ALLOWED": 405,
    "SERVE_PAYLOAD_TOO_LARGE": 413,
    "SERVE_DEADLINE_EXCEEDED": 504,
    "SERVE_OVERLOADED": 429,
    "SERVE_SHUTTING_DOWN": 503,
    "SERVE_WORKER_CRASHED": 500,
    "OBS_EXPOSITION_MALFORMED": 500,
    "SLO_BAD_OBJECTIVE": 400,
    "SLO_BURN_RATE_EXCEEDED": 503,
}


def http_status_for(err: BaseException) -> int:
    """The HTTP status a failure maps to (500 for foreign exceptions).

    Instance codes win over class defaults, mirroring how the CLI
    dispatches on :func:`repro.errors.exit_code_for`.
    """
    code = getattr(err, "code", None)
    if code in HTTP_STATUS_BY_CODE:
        return HTTP_STATUS_BY_CODE[code]
    return 500


def error_body(err: BaseException, *, request_id: str = "") -> dict:
    """The structured JSON error document for a failure."""
    return {
        "error": {
            "code": getattr(err, "code", "REPRO_ERROR"),
            "message": str(err),
            "http_status": http_status_for(err),
            "exit_code": exit_code_for(err),
            "request_id": request_id,
        }
    }


def error_from_payload(document: dict) -> ReproError:
    """Rebuild the server-side exception from its wire document.

    The class is recovered from the code — fine-grained codes map
    through :data:`~repro.errors.FINE_GRAINED_CODES`, class defaults
    through the class catalog — so ``except WorkloadError`` works the
    same against a remote evaluation as a local one.  Unknown codes
    degrade to :class:`~repro.errors.ServeError` rather than dropping
    the response on the floor.
    """
    entry = document.get("error") if isinstance(document, dict) else None
    if not isinstance(entry, dict):
        return ServeError(
            f"malformed error response: {document!r}",
            code="SERVE_BAD_REQUEST",
        )
    code = str(entry.get("code", "SERVE_FAILED"))
    message = str(entry.get("message", "(no message)"))
    cls = FINE_GRAINED_CODES.get(code)
    if cls is None:
        by_default = {c.code: c for c in error_classes()}
        cls = by_default.get(code, ServeError)
    err = cls(message, code=code)
    request_id = str(entry.get("request_id", ""))
    if request_id:
        err.request_id = request_id
    return err


def canonical_request_key(document: dict) -> str:
    """SHA-256 hex digest of a canonical-JSON request identity."""
    blob = json.dumps(
        document, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------
# Validation helpers
# ---------------------------------------------------------------------


def _bad(message: str) -> ServeError:
    return ServeError(message, code="SERVE_BAD_REQUEST")


def _require_object(document, what: str) -> dict:
    if not isinstance(document, dict):
        raise _bad(f"{what} must be a JSON object, got "
                   f"{type(document).__name__}")
    return document


def _check_keys(document: dict, *, required: tuple, optional: tuple,
                what: str) -> None:
    keys = set(document)
    missing = sorted(set(required) - keys)
    if missing:
        raise _bad(f"{what} is missing required field(s): "
                   + ", ".join(missing))
    unknown = sorted(keys - set(required) - set(optional))
    if unknown:
        raise _bad(f"{what} has unknown field(s): " + ", ".join(unknown)
                   + f" (accepted: {', '.join(sorted(required + optional))})")


def _decode_pair(document: dict) -> tuple:
    """The (SoCSpec, Workload) of a request, via the io codecs."""
    soc = decode_soc(_require_object(document["soc"], "'soc'"))
    workload = decode_workload(
        _require_object(document["workload"], "'workload'")
    )
    if workload.n_ips != soc.n_ips:
        raise _bad(
            f"workload has {workload.n_ips} IP(s) but the SoC has "
            f"{soc.n_ips}"
        )
    return soc, workload


def _decode_deadline(document: dict):
    value = document.get("deadline_s")
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or not math.isfinite(value) or value <= 0:
        raise _bad(f"deadline_s must be a positive finite number, "
                   f"got {value!r}")
    return float(value)


def _decode_fault(document: dict):
    value = document.get("fault")
    if value is None:
        return None
    if value not in FAULT_KINDS:
        raise _bad(f"fault must be one of {FAULT_KINDS}, got {value!r}")
    return str(value)


def _decode_variant(document: dict) -> tuple:
    name = document.get("variant")
    config = document.get("config")
    if name is None:
        if config is not None:
            raise _bad("'config' requires 'variant'")
        return None, None
    if name not in VARIANT_CHOICES:
        raise _bad(f"variant must be one of {VARIANT_CHOICES}, "
                   f"got {name!r}")
    if name == "phases":
        raise _bad(
            "the workload-free 'phases' variant has no single-workload "
            "serving form; evaluate it offline with `gables eval`"
        )
    if config is not None:
        _require_object(config, "'config'")
    return str(name), config


# ---------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class EvalRequest:
    """A validated scalar evaluation request.

    ``cache_key`` is the canonical identity used for both result
    caching and micro-batch bookkeeping; ``fault`` is the chaos hook
    (``None`` outside fault-injection runs).
    """

    soc: SoCSpec
    workload: Workload
    variant: str | None
    config: dict | None
    deadline_s: float | None
    fault: str | None
    cache_key: str


def parse_eval_request(document) -> EvalRequest:
    """Validate an ``/v1/eval`` body into an :class:`EvalRequest`."""
    document = _require_object(document, "eval request")
    _check_keys(
        document,
        required=("soc", "workload"),
        optional=("variant", "config", "deadline_s", "fault"),
        what="eval request",
    )
    soc, workload = _decode_pair(document)
    variant, config = _decode_variant(document)
    key = canonical_request_key({
        "kind": "eval",
        "soc": document["soc"],
        "workload": document["workload"],
        "variant": variant,
        "config": config,
    })
    return EvalRequest(
        soc=soc,
        workload=workload,
        variant=variant,
        config=config,
        deadline_s=_decode_deadline(document),
        fault=_decode_fault(document),
        cache_key=key,
    )


#: Sweepable parameters and the ``repro.explore`` driver each maps to.
SWEEP_PARAMS = ("f", "intensity", "bpeak")


@dataclass(frozen=True)
class SweepRequest:
    """A validated parameter-sweep request."""

    soc: SoCSpec
    workload: Workload
    param: str
    ip_index: int
    values: tuple
    on_error: str
    deadline_s: float | None


def parse_sweep_request(document, *, max_points: int = 10_000) -> SweepRequest:
    """Validate a ``/v1/sweep`` body into a :class:`SweepRequest`."""
    document = _require_object(document, "sweep request")
    _check_keys(
        document,
        required=("soc", "workload", "param", "values"),
        optional=("ip_index", "on_error", "deadline_s"),
        what="sweep request",
    )
    soc, workload = _decode_pair(document)
    param = document["param"]
    if param not in SWEEP_PARAMS:
        raise _bad(f"param must be one of {SWEEP_PARAMS}, got {param!r}")
    values = document["values"]
    if not isinstance(values, list) or not values:
        raise _bad("values must be a non-empty JSON array of numbers")
    if len(values) > max_points:
        raise ServeError(
            f"sweep of {len(values)} points exceeds the service limit "
            f"of {max_points}",
            code="SERVE_PAYLOAD_TOO_LARGE",
        )
    numbers = []
    for index, value in enumerate(values):
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or (isinstance(value, float) and math.isnan(value)):
            raise _bad(f"values[{index}] must be a number, got {value!r}")
        numbers.append(float(value))
    ip_index = document.get("ip_index", 0)
    if not isinstance(ip_index, int) or isinstance(ip_index, bool) \
            or not 0 <= ip_index < soc.n_ips:
        raise _bad(f"ip_index must be an integer in [0, {soc.n_ips}), "
                   f"got {ip_index!r}")
    on_error = document.get("on_error", "record")
    if on_error not in ON_ERROR_MODES:
        raise _bad(f"on_error must be one of {ON_ERROR_MODES}, "
                   f"got {on_error!r}")
    return SweepRequest(
        soc=soc,
        workload=workload,
        param=str(param),
        ip_index=ip_index,
        values=tuple(numbers),
        on_error=str(on_error),
        deadline_s=_decode_deadline(document),
    )


@dataclass(frozen=True)
class VariantsRequest:
    """A validated variant-evaluation request (``/v1/variants``)."""

    soc: SoCSpec
    workload: Workload
    variant: str
    config: dict | None
    deadline_s: float | None


def parse_variants_request(document) -> VariantsRequest:
    """Validate a ``/v1/variants`` POST body."""
    document = _require_object(document, "variants request")
    _check_keys(
        document,
        required=("soc", "workload", "variant"),
        optional=("config", "deadline_s"),
        what="variants request",
    )
    soc, workload = _decode_pair(document)
    variant, config = _decode_variant(document)
    if variant is None:
        raise _bad("variants request needs a non-null 'variant'")
    return VariantsRequest(
        soc=soc,
        workload=workload,
        variant=variant,
        config=config,
        deadline_s=_decode_deadline(document),
    )
