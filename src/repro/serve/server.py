"""The HTTP/JSON surface over :class:`~repro.serve.EvaluationService`.

Deliberately thin: ``http.server`` from the stdlib (one thread per
connection via :class:`~http.server.ThreadingHTTPServer`), strict
JSON in, strict JSON out, every failure mapped through
:mod:`repro.serve.protocol` into a structured error body with a
catalogued code and the HTTP status from
:data:`~repro.serve.protocol.HTTP_STATUS_BY_CODE`.  All policy —
admission, deadlines, batching, breakers — lives in the service;
the only decisions made here are transport ones:

- every request is assigned a fresh request id, answered in the
  ``X-Gables-Request-Id`` header (and in error bodies) and stamped
  into every structured log line emitted while handling it, so a
  client-side failure can be joined against server-side logs;
- trace propagation: when the request carries ``X-Gables-Trace-Id``
  (and optionally ``X-Gables-Parent-Span``), the handler adopts that
  trace and opens its ``serve.request`` span under the client's span,
  joining both sides into one trace;
- every request feeds the per-endpoint/per-outcome latency series
  behind ``GET /metrics`` and the live SLO window behind ``GET /slo``
  (observability scrapes themselves are exposed but excluded from the
  SLO window);
- 429 and 503 responses carry ``Retry-After``;
- request bodies beyond the configured limit are refused with 413
  *before* being read into memory;
- ``SIGTERM``/``SIGINT`` trigger a graceful drain: readiness flips
  immediately, in-flight requests finish, then the listener stops.

Routes::

    GET  /healthz     liveness + service metrics
    GET  /readyz      200 when admitting, 503 while draining/saturated
    GET  /variants    servable variant names
    GET  /metrics     Prometheus-style text exposition of the registry
    GET  /slo         live SLO burn-rate report (JSON)
    POST /eval        one scalar evaluation (coalesced server-side)
    POST /sweep       one parameter sweep
    POST /variants    one variant evaluation
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ObservabilityError, ReproError, ServeError
from ..obs.context import TraceContext, context_scope, extract_headers, \
    new_trace_id
from ..obs.expo import exposition_content_type, render_exposition
from ..obs.logging import log_event
from ..obs.metrics import bucket_histogram, counter, gauge
from ..obs.slo import default_objectives, evaluate_slos, observe_request, \
    request_window
from ..obs.trace import span
from .protocol import error_body, http_status_for
from .service import EvaluationService, ServiceConfig

#: Seconds clients are told to wait after a 429/503.
RETRY_AFTER_S = 1

#: Paths allowed as ``endpoint`` label values; anything else is folded
#: into ``other`` so unknown-path probes cannot explode label
#: cardinality in the registry.
KNOWN_ENDPOINTS = frozenset((
    "/healthz", "/readyz", "/variants", "/metrics", "/slo",
    "/eval", "/sweep",
))

#: Endpoints that *report* observability rather than serve traffic;
#: they are exposed in the latency series but excluded from the SLO
#: window (a scrape must not move the SLO it reports).
OBSERVER_ENDPOINTS = frozenset(("/metrics", "/slo"))


class _Handler(BaseHTTPRequestHandler):
    """One HTTP exchange; all real work delegates to the service."""

    protocol_version = "HTTP/1.1"
    timeout = 65
    server_version = "gables-serve"
    sys_version = ""

    # -- plumbing ------------------------------------------------------

    @property
    def service(self) -> EvaluationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        log_event("debug", "serve.http", format % args)

    def _send_json(self, status: int, document: dict, *,
                   request_id: str = "") -> None:
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if request_id:
            self.send_header("X-Gables-Request-Id", request_id)
        if status in (429, 503):
            self.send_header("Retry-After", str(RETRY_AFTER_S))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, *,
                   request_id: str = "") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", exposition_content_type())
        self.send_header("Content-Length", str(len(body)))
        if request_id:
            self.send_header("X-Gables-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, err: ReproError, *,
                         request_id: str = "") -> None:
        self._send_json(
            http_status_for(err),
            error_body(err, request_id=request_id),
            request_id=request_id,
        )

    def _read_body(self) -> dict:
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            raise ServeError(
                "request must carry a numeric Content-Length",
                code="SERVE_BAD_REQUEST",
            ) from None
        limit = self.service.config.max_body_bytes
        if length > limit:
            raise ServeError(
                f"request body of {length} bytes exceeds the "
                f"{limit}-byte limit",
                code="SERVE_PAYLOAD_TOO_LARGE",
            )
        raw = self.rfile.read(length)
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as err:
            raise ServeError(
                f"request body is not valid JSON: {err}",
                code="SERVE_BAD_REQUEST",
            ) from None
        if not isinstance(document, dict):
            raise ServeError(
                "request body must be a JSON object",
                code="SERVE_BAD_REQUEST",
            )
        # Chaos requests are deliberate failures: keep them visible in
        # the exposition series but out of the live SLO window, so a
        # chaos drill never spends the real error budget.
        self._fault_requested = bool(document.get("fault"))
        return document

    def _dispatch(self, method: str) -> None:
        start = time.perf_counter()
        self._fault_requested = False
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            remote = extract_headers(self.headers)
        except ObservabilityError as err:
            # Bad telemetry headers must not fail a good request.
            log_event(
                "warning", "serve.trace.malformed", str(err), path=path
            )
            remote = None
        request_id = new_trace_id()
        context = TraceContext(
            trace_id=remote.trace_id if remote else request_id,
            parent_span_id=remote.parent_span_id if remote else None,
            request_id=request_id,
        )
        outcome = "ok"
        with context_scope(context), span(
            "serve.request",
            parent_id=context.parent_span_id,
            endpoint=path, method=method, request_id=request_id,
            trace_id=context.trace_id,
        ):
            try:
                handler = self._route(method)
                handler(request_id)
            except ReproError as err:
                outcome = err.code
                log_event(
                    "warning", "serve.request.error",
                    str(err), code=err.code, path=self.path,
                )
                self._send_error_json(err, request_id=request_id)
            except (BrokenPipeError, ConnectionResetError):
                # The client hung up; nothing left to answer.
                outcome = "SERVE_CLIENT_DISCONNECTED"
                self.close_connection = True
            except Exception as err:  # pragma: no cover - last resort
                outcome = "SERVE_WORKER_CRASHED"
                log_event(
                    "error", "serve.request.crash", str(err),
                    path=self.path,
                )
                self._send_error_json(
                    ServeError(
                        f"internal error handling {self.path}: {err}",
                        code="SERVE_WORKER_CRASHED",
                    ),
                    request_id=request_id,
                )
        self._record_request(path, outcome, time.perf_counter() - start)

    def _record_request(self, path: str, outcome: str,
                        elapsed_s: float) -> None:
        """Feed the exposition series and the live SLO window."""
        endpoint = path if path in KNOWN_ENDPOINTS else "other"
        labels = {"endpoint": endpoint, "outcome": outcome}
        counter("serve.http.requests", labels=labels).inc()
        bucket_histogram(
            "serve.request.seconds", labels=labels
        ).record(elapsed_s)
        if endpoint not in OBSERVER_ENDPOINTS and not getattr(
            self, "_fault_requested", False
        ):
            observe_request(ok=outcome == "ok", latency_s=elapsed_s)

    def _route(self, method: str):
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        routes = {
            ("GET", "/healthz"): self._do_healthz,
            ("GET", "/readyz"): self._do_readyz,
            ("GET", "/variants"): self._do_variants_catalog,
            ("GET", "/metrics"): self._do_metrics,
            ("GET", "/slo"): self._do_slo,
            ("POST", "/eval"): self._do_eval,
            ("POST", "/sweep"): self._do_sweep,
            ("POST", "/variants"): self._do_variants,
        }
        handler = routes.get((method, path))
        if handler is not None:
            return handler
        if any(known == path for _, known in routes):
            raise ServeError(
                f"{method} is not allowed on {path}",
                code="SERVE_METHOD_NOT_ALLOWED",
            )
        raise ServeError(
            f"no such endpoint: {path}",
            code="SERVE_UNKNOWN_ENDPOINT",
        )

    # -- routes --------------------------------------------------------

    def _do_healthz(self, request_id: str) -> None:
        self._send_json(200, self.service.health(), request_id=request_id)

    def _do_readyz(self, request_id: str) -> None:
        ready, document = self.service.ready()
        self._send_json(
            200 if ready else 503, document, request_id=request_id
        )

    def _do_variants_catalog(self, request_id: str) -> None:
        self._send_json(
            200, self.service.handle_variants(None), request_id=request_id
        )

    def _do_metrics(self, request_id: str) -> None:
        stats = self.service.load_stats()
        gauge("serve.queue.depth").set(stats["queued"])
        gauge("serve.inflight").set(stats["inflight"])
        self._send_text(200, render_exposition(), request_id=request_id)

    def _do_slo(self, request_id: str) -> None:
        objectives = default_objectives(
            threshold_s=self.service.config.slo_p99_s
        )
        report = evaluate_slos(objectives, request_window().events())
        report["window_events"] = len(request_window())
        self._send_json(200, report, request_id=request_id)

    def _do_eval(self, request_id: str) -> None:
        payload = self.service.handle_eval(self._read_body())
        self._send_json(200, payload, request_id=request_id)

    def _do_sweep(self, request_id: str) -> None:
        payload = self.service.handle_sweep(self._read_body())
        self._send_json(200, payload, request_id=request_id)

    def _do_variants(self, request_id: str) -> None:
        payload = self.service.handle_variants(self._read_body())
        self._send_json(200, payload, request_id=request_id)

    # -- HTTP verbs ----------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")


class GablesServer:
    """The bound listener plus its lifecycle.

    ``GablesServer(config, port=0)`` binds immediately (port 0 picks a
    free one — the test suite's pattern); :meth:`start` serves on a
    background thread, :meth:`serve_forever` on the caller's.
    :meth:`shutdown_gracefully` drains the service then stops the
    listener, and is what the installed signal handlers invoke.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 host: str = "127.0.0.1", port: int = 8080,
                 drain_timeout_s: float = 10.0) -> None:
        self.service = EvaluationService(config)
        self.drain_timeout_s = drain_timeout_s
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._shutdown_once = threading.Lock()
        self._finished = threading.Event()
        self.drain_report: dict | None = None

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)``."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "GablesServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._serve, name="gables-serve-listener", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until shut down."""
        self._serve()

    def _serve(self) -> None:
        log_event("info", "serve.start", self.url)
        try:
            self._httpd.serve_forever(poll_interval=0.05)
        finally:
            self._httpd.server_close()
            self._finished.set()
            log_event("info", "serve.stop", self.url)

    def shutdown_gracefully(self) -> dict:
        """Drain in-flight work, then stop the listener.  Idempotent.

        Readiness flips to 503 the moment the drain starts, so a load
        balancer probing ``/readyz`` stops sending traffic while the
        listener is still answering in-flight requests.
        """
        if not self._shutdown_once.acquire(blocking=False):
            self._finished.wait()
            return self.drain_report or {}
        self.drain_report = self.service.drain(self.drain_timeout_s)
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        return self.drain_report

    def install_signal_handlers(self) -> None:
        """Route ``SIGTERM``/``SIGINT`` into a graceful shutdown.

        The handler hands off to a fresh thread: calling
        ``httpd.shutdown()`` from the thread running
        ``serve_forever`` deadlocks, and a signal can land on exactly
        that thread.
        """

        def handle(signum, frame) -> None:
            log_event("info", "serve.signal", signal.Signals(signum).name)
            threading.Thread(
                target=self.shutdown_gracefully,
                name="gables-serve-drain",
                daemon=True,
            ).start()

        signal.signal(signal.SIGTERM, handle)
        signal.signal(signal.SIGINT, handle)


def run_server(config: ServiceConfig | None = None, *,
               host: str = "127.0.0.1", port: int = 8080,
               drain_timeout_s: float = 10.0) -> GablesServer:
    """Bind, install signal handlers, and serve on the calling thread.

    The blocking entry point behind ``gables serve``; returns the
    (stopped) server after a signal-triggered drain for the caller to
    inspect ``drain_report``.
    """
    server = GablesServer(
        config, host=host, port=port, drain_timeout_s=drain_timeout_s
    )
    server.install_signal_handlers()
    server.serve_forever()
    return server
