"""Record-level synthetic chipset dataset (the GSM-Arena stand-in).

Generates one :class:`ChipsetRecord` per introduced chipset, with a
vendor, year, core count, and estimated IP count, such that the
aggregates reproduce :mod:`repro.market.series` exactly: yearly totals
match Figure 2a, Qualcomm's 2014/2017 counts match the paper's
footnote, exited vendors stop appearing after their exit year, and IP
counts track the Figure 2b generation curve with vendor-level spread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import SpecError
from .series import (
    IP_COUNT_BY_GENERATION,
    QUALCOMM_CHIPSETS,
    SOC_INTRODUCTIONS_BY_YEAR,
    VENDOR_EXITS,
)

#: Vendors synthesized, with rough long-run market weights.
VENDOR_WEIGHTS = {
    "Qualcomm": 0.34,
    "MediaTek": 0.26,
    "Samsung": 0.10,
    "HiSilicon": 0.08,
    "Spreadtrum": 0.08,
    "TI": 0.05,
    "Intel": 0.04,
    "Rockchip": 0.05,
}
_OTHERS = "Allwinner"  # absorbs rounding remainders


@dataclass(frozen=True)
class ChipsetRecord:
    """One synthesized chipset introduction."""

    vendor: str
    year: int
    model: str
    cpu_cores: int
    ip_count: int


@dataclass(frozen=True)
class MarketDataset:
    """The full synthetic dataset plus aggregate accessors."""

    records: tuple
    seed: int

    def introductions_by_year(self) -> dict:
        """Figure 2a recomputed from the records."""
        counts: dict = {}
        for record in self.records:
            counts[record.year] = counts.get(record.year, 0) + 1
        return dict(sorted(counts.items()))

    def vendor_counts(self, year: int) -> dict:
        """Chipsets per vendor in one year."""
        counts: dict = {}
        for record in self.records:
            if record.year == year:
                counts[record.vendor] = counts.get(record.vendor, 0) + 1
        return counts

    def vendors_active_in(self, year: int) -> tuple:
        """Vendors with at least one introduction that year."""
        return tuple(sorted(self.vendor_counts(year)))

    def mean_ip_count(self, year: int) -> float:
        """Average estimated IP count of that year's chipsets."""
        counts = [r.ip_count for r in self.records if r.year == year]
        if not counts:
            raise SpecError(f"no records for year {year}")
        return math.fsum(counts) / len(counts)


def _generation_for_year(year: int) -> int:
    """Map a calendar year onto the Figure 2b generation index."""
    first = min(SOC_INTRODUCTIONS_BY_YEAR)
    span = max(SOC_INTRODUCTIONS_BY_YEAR) - first
    generations = len(IP_COUNT_BY_GENERATION)
    position = (year - first) / span if span else 0.0
    return 1 + min(generations - 1, int(position * generations))


def _vendor_quota(year: int, total: int) -> dict:
    """Split a year's total among vendors, honoring pinned facts."""
    pinned: dict = {}
    if year in QUALCOMM_CHIPSETS:
        pinned["Qualcomm"] = QUALCOMM_CHIPSETS[year]
    active = {
        vendor: weight
        for vendor, weight in VENDOR_WEIGHTS.items()
        if VENDOR_EXITS.get(vendor, math.inf) >= year and vendor not in pinned
    }
    remaining = total - sum(pinned.values())
    if remaining < 0:
        raise SpecError(
            f"pinned counts exceed the year-{year} total ({total})"
        )
    weight_sum = math.fsum(active.values())
    quotas = dict(pinned)
    assigned = 0
    for vendor, weight in active.items():
        share = int(remaining * weight / weight_sum)
        quotas[vendor] = share
        assigned += share
    quotas[_OTHERS] = quotas.get(_OTHERS, 0) + (remaining - assigned)
    return {vendor: count for vendor, count in quotas.items() if count > 0}


def generate_market_dataset(seed: int = 20190216) -> MarketDataset:
    """Generate the synthetic dataset (default seed: HPCA'19 dates).

    Deterministic for a given seed; aggregate invariants (yearly
    totals, Qualcomm pins, vendor exits) hold for *every* seed, which
    the property-based tests exploit.
    """
    rng = np.random.default_rng(seed)
    records = []
    for year, total in sorted(SOC_INTRODUCTIONS_BY_YEAR.items()):
        generation = _generation_for_year(year)
        base_ips = IP_COUNT_BY_GENERATION[generation]
        for vendor, count in sorted(_vendor_quota(year, total).items()):
            for index in range(count):
                ip_count = max(2, int(rng.normal(base_ips, 2.0)))
                cores = int(rng.choice((1, 2, 4, 8), p=(0.1, 0.25, 0.45, 0.2)))
                if year >= 2014:
                    cores = max(cores, 4)
                records.append(
                    ChipsetRecord(
                        vendor=vendor,
                        year=year,
                        model=f"{vendor}-{year}-{index:03d}",
                        cpu_cores=cores,
                        ip_count=ip_count,
                    )
                )
    return MarketDataset(records=tuple(records), seed=seed)
