"""Gables model inputs derived from the synthetic market records.

The market package reproduces Figure 2 as *counts* — chipsets per
year, IPs per generation.  Fleet-scale studies (ROADMAP: "market-wide
what-if sweeps") need each :class:`~repro.market.dataset.ChipsetRecord`
turned into something :func:`repro.core.evaluate` accepts: an
:class:`~repro.core.SoCSpec` with the record's IP count and a matching
:class:`~repro.core.Workload`.  The record fields pin the physically
meaningful axes (core count scales ``Ppeak``, introduction year scales
``Bpeak`` with DRAM generations, ``ip_count`` sets N); everything the
dataset does not constrain (per-IP accelerations, link bandwidths,
usecase fractions and intensities) is synthesized *deterministically
from the record's model string* via CRC32 — not Python's ``hash``,
which is salted per process and would give every fleet worker a
different population.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..core import IPBlock, SoCSpec, Workload
from ..errors import SpecError
from .dataset import ChipsetRecord, MarketDataset, generate_market_dataset

#: Reference year for the performance/bandwidth growth curves.
_BASE_YEAR = 2007


def _unit(model: str, salt: str) -> float:
    """A deterministic value in [0, 1) keyed by (model, salt).

    CRC32 is stable across processes and Python versions — the property
    that makes a sharded fleet's population bitwise identical to the
    serial one.
    """
    return zlib.crc32(f"{model}:{salt}".encode()) / 2**32


def soc_spec_for_record(record: ChipsetRecord) -> SoCSpec:
    """The record as an N-IP :class:`SoCSpec`.

    ``Ppeak`` scales with core count and year (process generations),
    ``Bpeak`` with year (DRAM generations); IP[0] is the CPU complex
    (``A0 = 1`` by definition), later IPs draw accelerations in
    ``[0.5, 16.5)`` and link bandwidths as fractions of ``Bpeak``.
    """
    model = record.model
    years = max(0, record.year - _BASE_YEAR)
    peak_perf = record.cpu_cores * 2e9 * (1.0 + 0.15 * years)
    bpeak = (4.0 + 2.0 * years) * 1e9 * (0.8 + 0.4 * _unit(model, "bw"))
    ips = [IPBlock(
        name="CPU",
        acceleration=1.0,
        bandwidth=bpeak * (0.5 + 0.5 * _unit(model, "b0")),
    )]
    for index in range(1, record.ip_count):
        ips.append(IPBlock(
            name=f"IP{index}",
            acceleration=0.5 + 16.0 * _unit(model, f"a{index}"),
            bandwidth=bpeak * (0.3 + 1.2 * _unit(model, f"b{index}")),
        ))
    return SoCSpec(
        peak_perf=peak_perf,
        memory_bandwidth=bpeak,
        ips=tuple(ips),
        name=model,
    )


def workload_for_record(record: ChipsetRecord) -> Workload:
    """A deterministic usecase exercising every IP of the record's SoC.

    Fractions are normalized positive draws (every IP does some work,
    so every IP term participates in the bottleneck attribution);
    intensities span ``[0.1, 100)`` ops/byte log-uniformly — from
    streaming IPs well under any ridge to compute-bound ones.
    """
    model = record.model
    weights = [
        0.05 + _unit(model, f"f{index}") for index in range(record.ip_count)
    ]
    total = sum(weights)
    fractions = tuple(weight / total for weight in weights)
    intensities = tuple(
        10.0 ** (-1.0 + 3.0 * _unit(model, f"i{index}"))
        for index in range(record.ip_count)
    )
    return Workload(
        fractions=fractions,
        intensities=intensities,
        name=f"{model}-usecase",
    )


@dataclass(frozen=True)
class MarketSpecCase:
    """One fleet-sweep evaluation point: record + derived model inputs."""

    record: ChipsetRecord
    soc: SoCSpec
    workload: Workload

    @property
    def key(self) -> str:
        """The checkpoint/provenance key (the record's model string)."""
        return self.record.model


def market_spec_population(
    dataset: MarketDataset | None = None,
    *,
    since: int | None = None,
    limit: int | None = None,
) -> tuple:
    """Every market record as a :class:`MarketSpecCase`, dataset order.

    ``since`` keeps records introduced in or after that year; ``limit``
    truncates (after filtering) for quick smokes.  The population is a
    pure function of the dataset, so every process that generates it —
    the serial baseline, each fleet worker — sees the same cases in the
    same order.
    """
    if dataset is None:
        dataset = generate_market_dataset()
    if limit is not None and limit < 1:
        raise SpecError(f"population limit must be >= 1, got {limit}")
    cases = []
    for record in dataset.records:
        if since is not None and record.year < since:
            continue
        cases.append(MarketSpecCase(
            record=record,
            soc=soc_spec_for_record(record),
            workload=workload_for_record(record),
        ))
        if limit is not None and len(cases) >= limit:
            break
    return tuple(cases)
