"""Published aggregate series behind Figure 2.

Values marked "paper" are stated in the text; the remaining points are
read off the figure's shape and are clearly engineering estimates — the
reproduction targets the *trend* (growth to a mid-decade peak, then
consolidation decline; IP counts climbing past 30), not digitized
pixels.
"""

from __future__ import annotations

from ..errors import SpecError

#: Figure 2a: new SoC chipsets introduced per year (shape estimate;
#: growth from 2007, peak around 2015, decline through 2017).
SOC_INTRODUCTIONS_BY_YEAR = {
    2007: 12,
    2008: 18,
    2009: 27,
    2010: 40,
    2011: 58,
    2012: 78,
    2013: 97,
    2014: 112,
    2015: 121,
    2016: 95,
    2017: 72,
}

#: Paper (footnote 2): Qualcomm's chipset-count consolidation.
QUALCOMM_CHIPSETS = {2014: 49, 2017: 27}

#: Paper (footnote 2): vendors that left the consumer SoC market after
#: the peak (year = last year with introductions in our synthesis).
VENDOR_EXITS = {"TI": 2012, "Intel": 2016}

#: Figure 2b (after Shao et al.): IP blocks per SoC generation,
#: climbing "to over 30 IPs".  Generation 1 is the oldest.
IP_COUNT_BY_GENERATION = {
    1: 8,
    2: 11,
    3: 14,
    4: 18,
    5: 22,
    6: 26,
    7: 30,
    8: 33,
}


def soc_introductions_by_year() -> dict:
    """Figure 2a's series as a fresh year -> count mapping."""
    return dict(SOC_INTRODUCTIONS_BY_YEAR)


def ip_count_by_generation() -> dict:
    """Figure 2b's series as a fresh generation -> IP-count mapping."""
    return dict(IP_COUNT_BY_GENERATION)


def peak_year() -> int:
    """The year introductions peaked (the consolidation inflection)."""
    return max(SOC_INTRODUCTIONS_BY_YEAR, key=SOC_INTRODUCTIONS_BY_YEAR.get)


def growth_multiple(first_year: int = 2007, last_year: int = 2015) -> float:
    """How many-fold introductions grew between two years."""
    series = SOC_INTRODUCTIONS_BY_YEAR
    if first_year not in series or last_year not in series:
        raise SpecError(
            f"years must be within {min(series)}..{max(series)}"
        )
    return series[last_year] / series[first_year]
