"""Synthetic SoC market dataset (paper Figure 2).

The paper mined GSM Arena (9165 phone models, 109 brands) for Figure
2a — new SoC chipsets introduced per year, growing to a ~2015 peak and
declining as vendors consolidated — and cites Shao et al. for Figure
2b's IP-count-per-generation climb past 30.  The proprietary scrape is
not redistributable, so this package generates a deterministic
synthetic dataset calibrated to the published aggregates:

- the yearly introduction totals (:data:`SOC_INTRODUCTIONS_BY_YEAR`)
  follow the figure's shape;
- the vendor structure reproduces the paper's named facts: Qualcomm's
  consolidation from 49 chipsets (2014) to 27 (2017), and TI/Intel
  exiting after the peak;
- record-level data (one row per chipset) is generated with a seeded
  RNG so tests and benchmarks are exactly reproducible.
"""

from .analytics import (
    concentration_series,
    consolidation_report,
    herfindahl_index,
    vendors_per_year,
)
from .dataset import (
    ChipsetRecord,
    MarketDataset,
    generate_market_dataset,
)
from .series import (
    IP_COUNT_BY_GENERATION,
    QUALCOMM_CHIPSETS,
    SOC_INTRODUCTIONS_BY_YEAR,
    VENDOR_EXITS,
    ip_count_by_generation,
    soc_introductions_by_year,
)
from .specs import (
    MarketSpecCase,
    market_spec_population,
    soc_spec_for_record,
    workload_for_record,
)

__all__ = [
    "ChipsetRecord",
    "concentration_series",
    "consolidation_report",
    "herfindahl_index",
    "vendors_per_year",
    "IP_COUNT_BY_GENERATION",
    "MarketDataset",
    "MarketSpecCase",
    "QUALCOMM_CHIPSETS",
    "SOC_INTRODUCTIONS_BY_YEAR",
    "VENDOR_EXITS",
    "generate_market_dataset",
    "ip_count_by_generation",
    "market_spec_population",
    "soc_introductions_by_year",
    "soc_spec_for_record",
    "workload_for_record",
]
