"""Market-structure analytics over the synthetic chipset dataset.

The paper's footnote reads consolidation off two observations (vendor
exits; Qualcomm's shrinking lineup).  These helpers make the claim
quantitative: vendor counts, the Herfindahl-Hirschman concentration
index per year, and the post-peak consolidation trend.
"""

from __future__ import annotations

import math

from ..errors import SpecError
from .dataset import MarketDataset


def vendors_per_year(dataset: MarketDataset) -> dict:
    """Year -> number of vendors with at least one introduction."""
    return {
        year: len(dataset.vendors_active_in(year))
        for year in dataset.introductions_by_year()
    }


def herfindahl_index(dataset: MarketDataset, year: int) -> float:
    """HHI of introduction share in ``year`` (0 exclusive, 1 = monopoly).

    ``HHI = sum_v share_v^2`` over vendors' shares of that year's
    introductions — the standard concentration measure.
    """
    counts = dataset.vendor_counts(year)
    if not counts:
        raise SpecError(f"no records for year {year}")
    total = sum(counts.values())
    return math.fsum((count / total) ** 2 for count in counts.values())


def concentration_series(dataset: MarketDataset) -> dict:
    """Year -> HHI across the dataset's span."""
    return {
        year: herfindahl_index(dataset, year)
        for year in dataset.introductions_by_year()
    }


def consolidation_report(dataset: MarketDataset) -> dict:
    """Headline consolidation facts, computed not asserted.

    Returns the peak year, vendor counts at peak and at the end, and
    the HHI change from peak to end (positive = concentrating).
    """
    by_year = dataset.introductions_by_year()
    peak_year = max(by_year, key=by_year.get)
    last_year = max(by_year)
    vendors = vendors_per_year(dataset)
    return {
        "peak_year": peak_year,
        "vendors_at_peak": vendors[peak_year],
        "vendors_at_end": vendors[last_year],
        "hhi_at_peak": herfindahl_index(dataset, peak_year),
        "hhi_at_end": herfindahl_index(dataset, last_year),
        "hhi_change": (
            herfindahl_index(dataset, last_year)
            - herfindahl_index(dataset, peak_year)
        ),
    }
