"""Ready-made SoC descriptions, calibrated to the paper's measurements.

Three presets:

- :func:`snapdragon_835` — matches the Snapdragon 835 numbers the paper
  measured (Section IV): CPU 7.5 GFLOP/s scalar (40 with SIMD) and
  15.1 GB/s, Adreno 540 at 349.6 GFLOP/s and 24.4 GB/s, Hexagon 682
  scalar unit at 3.0 GFLOP/s and 5.4 GB/s on a slower fabric;
- :func:`snapdragon_821` — the paper's second device (trends "hold
  true for both systems"); spec-sheet-derived estimates;
- :func:`generic_soc` — the paper's Figure 3 block diagram with a full
  complement of fixed-function IPs across four fabric tiers.

All numbers are per the paper where published and clearly-marked
engineering estimates elsewhere; they feed both the analytic model and
the calibration of :mod:`repro.sim`.
"""

from __future__ import annotations

from ..units import GIGA
from . import catalog
from .description import FabricTier, IPInstance, SoCDescription


def snapdragon_835() -> SoCDescription:
    """A Snapdragon-835-like SoC, calibrated to the paper's Section IV.

    The AP entry uses the paper's *non-NEON* CPU roofline (7.5 GFLOP/s)
    because every Section IV analysis is expressed relative to it; the
    SIMD peak appears as a compute ceiling in :mod:`repro.sim`'s engine
    model instead.  ``Bi`` values are the best attained DRAM bandwidths
    per engine; ``Bpeak`` is the stated theoretical 30 GB/s less is
    never observed jointly, but the *spec* value is what an architect
    would plug in pre-silicon.
    """
    return SoCDescription(
        name="snapdragon-835",
        memory_bandwidth=30 * GIGA,  # stated theoretical peak (LPDDR4X quad ch.)
        fabrics=(
            FabricTier("high-bandwidth", 28 * GIGA),
            FabricTier("multimedia", 12.5 * GIGA, parent="high-bandwidth"),
        ),
        ips=(
            IPInstance(
                "CPU", catalog.AP, peak_perf=7.5 * GIGA,
                bandwidth=15.1 * GIGA, fabric="high-bandwidth",
                local_memory_bytes=2 * 1024 * 1024,  # big-cluster L2
            ),
            IPInstance(
                "GPU", catalog.GPU, peak_perf=349.6 * GIGA,
                bandwidth=24.4 * GIGA, fabric="high-bandwidth",
                local_memory_bytes=1 * 1024 * 1024,  # GMEM estimate
            ),
            IPInstance(
                "DSP", catalog.DSP, peak_perf=3.0 * GIGA,
                bandwidth=5.4 * GIGA, fabric="multimedia",
                local_memory_bytes=256 * 1024,  # TCM estimate
            ),
        ),
    )


def snapdragon_821() -> SoCDescription:
    """A Snapdragon-821-like SoC (the paper's older second device).

    The paper reports only that its findings "hold true for both
    systems"; these numbers are spec-derived estimates (Kryo quad-core,
    Adreno 530, Hexagon 680, LPDDR4 dual-channel) scaled to the same
    measurement methodology as the 835 preset.
    """
    return SoCDescription(
        name="snapdragon-821",
        memory_bandwidth=29.8 * GIGA,
        fabrics=(
            FabricTier("high-bandwidth", 26 * GIGA),
            FabricTier("multimedia", 10 * GIGA, parent="high-bandwidth"),
        ),
        ips=(
            IPInstance(
                "CPU", catalog.AP, peak_perf=6.1 * GIGA,
                bandwidth=13.4 * GIGA, fabric="high-bandwidth",
                local_memory_bytes=1536 * 1024,
            ),
            IPInstance(
                "GPU", catalog.GPU, peak_perf=256.0 * GIGA,
                bandwidth=21.0 * GIGA, fabric="high-bandwidth",
                local_memory_bytes=1 * 1024 * 1024,
            ),
            IPInstance(
                "DSP", catalog.DSP, peak_perf=2.4 * GIGA,
                bandwidth=4.6 * GIGA, fabric="multimedia",
                local_memory_bytes=256 * 1024,
            ),
        ),
    )


def generic_soc() -> SoCDescription:
    """The paper's Figure 3 block diagram as a full SoC description.

    A CPU/GPU pair on the high-bandwidth fabric, the camera/media IP
    cluster on the multimedia fabric, connectivity on the system
    fabric, and USB/sensors on a peripheral fabric — all engineering
    estimates sized so camera usecases (Table I) exhibit the paper's
    qualitative behaviour (memory bandwidth binds at high frame rates).
    """
    return SoCDescription(
        name="generic-mobile-soc",
        memory_bandwidth=30 * GIGA,
        fabrics=(
            FabricTier("high-bandwidth", 28 * GIGA),
            FabricTier("multimedia", 15 * GIGA, parent="high-bandwidth"),
            FabricTier("system", 6 * GIGA, parent="high-bandwidth"),
            FabricTier("peripheral", 1 * GIGA, parent="system"),
        ),
        ips=(
            IPInstance("AP", catalog.AP, 40 * GIGA, 15 * GIGA,
                       fabric="high-bandwidth", local_memory_bytes=2 * 1024**2),
            IPInstance("GPU", catalog.GPU, 350 * GIGA, 24 * GIGA,
                       fabric="high-bandwidth", local_memory_bytes=1 * 1024**2),
            IPInstance("DSP", catalog.DSP, 80 * GIGA, 8 * GIGA,
                       fabric="multimedia", local_memory_bytes=512 * 1024),
            IPInstance("ISP", catalog.ISP, 60 * GIGA, 20 * GIGA,
                       fabric="multimedia", local_memory_bytes=1 * 1024**2),
            IPInstance("IPU", catalog.IPU, 120 * GIGA, 10 * GIGA,
                       fabric="multimedia", local_memory_bytes=8 * 1024**2),
            IPInstance("JPEG", catalog.JPEG, 8 * GIGA, 4 * GIGA,
                       fabric="multimedia"),
            IPInstance("G2DS", catalog.G2DS, 6 * GIGA, 6 * GIGA,
                       fabric="multimedia"),
            IPInstance("VDEC", catalog.VDEC, 12 * GIGA, 8 * GIGA,
                       fabric="multimedia"),
            IPInstance("VENC", catalog.VENC, 30 * GIGA, 8 * GIGA,
                       fabric="multimedia"),
            IPInstance("Display", catalog.DISPLAY, 8 * GIGA, 6 * GIGA,
                       fabric="multimedia"),
            IPInstance("Audio", catalog.AUDIO, 0.5 * GIGA, 0.5 * GIGA,
                       fabric="system"),
            IPInstance("Modem", catalog.MODEM, 2 * GIGA, 2 * GIGA,
                       fabric="system"),
            IPInstance("WiFi", catalog.WIFI, 1 * GIGA, 1.2 * GIGA,
                       fabric="system"),
            IPInstance("Crypto", catalog.CRYPTO, 3 * GIGA, 4 * GIGA,
                       fabric="system"),
            IPInstance("GPS", catalog.GPS, 0.2 * GIGA, 0.1 * GIGA,
                       fabric="system"),
            IPInstance("SensorHub", catalog.SENSOR_HUB, 0.1 * GIGA, 0.05 * GIGA,
                       fabric="peripheral"),
            IPInstance("USB", catalog.USB, 0.5 * GIGA, 1.25 * GIGA,
                       fabric="peripheral"),
        ),
    )


#: All presets by name, for the CLI and tests.
PRESETS = {
    "snapdragon-835": snapdragon_835,
    "snapdragon-821": snapdragon_821,
    "generic": generic_soc,
}
