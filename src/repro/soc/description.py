"""Rich SoC descriptions: IPs, fabric hierarchy, and DRAM.

:class:`SoCDescription` carries more than the four numbers per IP that
Gables consumes — fabric attachment, kind metadata, local memory sizes
— and lowers to the model's :class:`~repro.core.params.SoCSpec` plus an
:class:`~repro.core.extensions.interconnect.InterconnectSpec` on
demand.  This mirrors how the model is used in practice: an architect
sketches the chip once and asks Gables questions about many usecases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx

from .._validation import require_finite_positive, require_positive
from ..core.extensions.interconnect import InterconnectSpec
from ..core.params import IPBlock, SoCSpec
from ..errors import SpecError
from . import catalog

#: Node name used for the DRAM side of the fabric graph.
MEMORY_NODE = "memory"


@dataclass(frozen=True)
class FabricTier:
    """One interconnect fabric (bus) tier with a bandwidth bound."""

    name: str
    bandwidth: float  # bytes/s
    parent: str | None = None  # next fabric toward memory, or None = memory

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("FabricTier name must be non-empty")
        require_positive(self.bandwidth, f"fabric {self.name!r} bandwidth")


@dataclass(frozen=True)
class IPInstance:
    """One IP placed on the SoC.

    Parameters
    ----------
    name:
        Unique instance name (``"big-CPU"``, ``"GPU"``).
    kind:
        Catalog kind from :mod:`repro.soc.catalog`.
    peak_perf:
        Peak ops/s of this IP in isolation.
    bandwidth:
        ``Bi`` — link bandwidth to its fabric, bytes/s.
    fabric:
        Name of the :class:`FabricTier` it attaches to, or ``None`` for
        a dedicated port on the memory controller.
    local_memory_bytes:
        Scratchpad/cache private to the IP (informs intensity
        reasoning; the base model does not consume it directly).
    """

    name: str
    kind: str
    peak_perf: float
    bandwidth: float
    fabric: str | None = None
    local_memory_bytes: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("IPInstance name must be non-empty")
        catalog.kind_info(self.kind)  # validates the kind
        require_finite_positive(self.peak_perf, f"IP {self.name!r} peak_perf")
        require_positive(self.bandwidth, f"IP {self.name!r} bandwidth")
        if self.local_memory_bytes < 0:
            raise SpecError(f"IP {self.name!r} local_memory_bytes must be >= 0")


@dataclass(frozen=True)
class SoCDescription:
    """A full SoC sketch: IPs, fabric tiers, and the DRAM interface.

    The first IP is the reference processor (the AP complex); Gables'
    ``Ppeak`` is its peak performance and every other IP's acceleration
    is derived as ``peak_perf / Ppeak``.
    """

    name: str
    ips: tuple
    fabrics: tuple = field(default_factory=tuple)
    memory_bandwidth: float = 0.0  # Bpeak, bytes/s

    def __post_init__(self) -> None:
        if not isinstance(self.ips, tuple):
            object.__setattr__(self, "ips", tuple(self.ips))
        if not isinstance(self.fabrics, tuple):
            object.__setattr__(self, "fabrics", tuple(self.fabrics))
        if not self.ips:
            raise SpecError("SoCDescription needs at least one IP")
        require_finite_positive(self.memory_bandwidth, "memory_bandwidth")
        names = [ip.name for ip in self.ips]
        if len(set(names)) != len(names):
            raise SpecError(f"IP instance names must be unique: {names!r}")
        fabric_names = {f.name for f in self.fabrics}
        if len(fabric_names) != len(self.fabrics):
            raise SpecError("fabric names must be unique")
        if MEMORY_NODE in fabric_names or MEMORY_NODE in names:
            raise SpecError(f"{MEMORY_NODE!r} is reserved for the DRAM node")
        for fabric in self.fabrics:
            if fabric.parent is not None and fabric.parent not in fabric_names:
                raise SpecError(
                    f"fabric {fabric.name!r} parent {fabric.parent!r} unknown"
                )
        for ip in self.ips:
            if ip.fabric is not None and ip.fabric not in fabric_names:
                raise SpecError(f"IP {ip.name!r} fabric {ip.fabric!r} unknown")
        self._check_fabric_acyclic()

    def _check_fabric_acyclic(self) -> None:
        graph = self.fabric_graph()
        if not nx.is_directed_acyclic_graph(graph):
            raise SpecError(f"SoC {self.name!r} fabric hierarchy contains a cycle")

    @property
    def n_ips(self) -> int:
        """Number of IP instances."""
        return len(self.ips)

    @property
    def ip_names(self) -> tuple:
        """Instance names in index order."""
        return tuple(ip.name for ip in self.ips)

    def ip(self, name: str) -> IPInstance:
        """Look up an IP instance by name."""
        for instance in self.ips:
            if instance.name == name:
                return instance
        raise SpecError(f"SoC {self.name!r} has no IP named {name!r}")

    def ips_of_kind(self, kind: str) -> tuple:
        """All instances of a catalog kind."""
        return tuple(ip for ip in self.ips if ip.kind == kind)

    def fabric_graph(self) -> nx.DiGraph:
        """The fabric hierarchy as a digraph with edges toward memory.

        Fabric nodes carry their ``bandwidth`` attribute, which is what
        :meth:`interconnect_spec` and the plotting layer consume.
        """
        graph = nx.DiGraph()
        graph.add_node(MEMORY_NODE)
        for fabric in self.fabrics:
            graph.add_node(fabric.name, bandwidth=fabric.bandwidth)
        for fabric in self.fabrics:
            graph.add_edge(fabric.name, fabric.parent or MEMORY_NODE)
        for ip in self.ips:
            graph.add_node(ip.name)
            graph.add_edge(ip.name, ip.fabric or MEMORY_NODE)
        return graph

    def to_gables_spec(self) -> SoCSpec:
        """Lower to the base model's hardware parameters.

        ``Ppeak`` is the first IP's peak; accelerations follow.  The
        fabric hierarchy is dropped (base Gables assumes it never
        binds); use :meth:`interconnect_spec` for the Section V-B
        extension.
        """
        ppeak = self.ips[0].peak_perf
        blocks = tuple(
            IPBlock(ip.name, ip.peak_perf / ppeak, ip.bandwidth) for ip in self.ips
        )
        return SoCSpec(
            peak_perf=ppeak,
            memory_bandwidth=self.memory_bandwidth,
            ips=blocks,
            name=self.name,
        )

    def interconnect_spec(self) -> InterconnectSpec:
        """The fabric hierarchy as a Section V-B interconnect spec."""
        if not self.fabrics:
            raise SpecError(
                f"SoC {self.name!r} declares no fabrics; base Gables applies"
            )
        return InterconnectSpec.from_fabric_graph(
            self.fabric_graph(), self.ip_names, memory_node=MEMORY_NODE
        )

    def total_ip_peak(self) -> float:
        """Sum of all IP peaks — the chip's headline 'TOPS' number.

        Rarely attainable (shared ``Bpeak`` binds first); comparing it
        to Gables' answer for a usecase quantifies the marketing gap.
        """
        return math.fsum(ip.peak_perf for ip in self.ips)
