"""SoC description substrate: IP catalog, fabric hierarchy, presets.

:class:`SoCDescription` is the architect-facing sketch of a chip; it
lowers to the Gables model's :class:`~repro.core.params.SoCSpec` via
:meth:`~repro.soc.description.SoCDescription.to_gables_spec` and to the
Section V-B interconnect extension via
:meth:`~repro.soc.description.SoCDescription.interconnect_spec`.
"""

from . import catalog
from .catalog import ALL_KINDS, PROGRAMMABLE_KINDS, IPKind, is_programmable, kind_info
from .description import MEMORY_NODE, FabricTier, IPInstance, SoCDescription
from .presets import PRESETS, generic_soc, snapdragon_821, snapdragon_835

__all__ = [
    "ALL_KINDS",
    "FabricTier",
    "IPInstance",
    "IPKind",
    "MEMORY_NODE",
    "PRESETS",
    "PROGRAMMABLE_KINDS",
    "SoCDescription",
    "catalog",
    "generic_soc",
    "is_programmable",
    "kind_info",
    "snapdragon_821",
    "snapdragon_835",
]
