"""Catalog of mobile-SoC IP block kinds (paper Section II, Figure 3).

A modern consumer SoC clusters 30+ IPs across fabric hierarchies.  The
catalog enumerates the kinds the paper names, with the roles they play
in usecases, so SoC descriptions and usecase dataflows can share a
vocabulary.  The kind constants double as the IP names in Table I's
usecase/IP matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SpecError

# Programmable engines (the three the paper measures).
AP = "AP"  # application processor (CPU complex)
GPU = "GPU"
DSP = "DSP"  # e.g. Qualcomm Hexagon

# Camera / imaging pipeline.
ISP = "ISP"  # image signal processor
IPU = "IPU"  # image processing unit (e.g. Pixel Visual Core)
JPEG = "JPEG"
G2DS = "G2DS"  # 2D graphics / scaler

# Media.
VDEC = "VDEC"  # video decoder
VENC = "VENC"  # video encoder
DISPLAY = "Display"
AUDIO = "Audio"

# Connectivity and system.
MODEM = "Modem"
WIFI = "WiFi"
GPS = "GPS"
CRYPTO = "Crypto"
SENSOR_HUB = "SensorHub"
USB = "USB"

#: Every catalogued IP kind.
ALL_KINDS = (
    AP, GPU, DSP, ISP, IPU, JPEG, G2DS, VDEC, VENC, DISPLAY, AUDIO,
    MODEM, WIFI, GPS, CRYPTO, SENSOR_HUB, USB,
)

#: Kinds that execute user-programmable code (vs fixed-function).
PROGRAMMABLE_KINDS = frozenset({AP, GPU, DSP, IPU})


@dataclass(frozen=True)
class IPKind:
    """Descriptive metadata for one IP kind."""

    kind: str
    description: str
    programmable: bool
    typical_fabric: str  # which fabric tier it usually attaches to


_CATALOG = {
    AP: IPKind(AP, "CPU complex (big/mid/little cores)", True, "high-bandwidth"),
    GPU: IPKind(GPU, "graphics/compute shader array", True, "high-bandwidth"),
    DSP: IPKind(DSP, "scalar+vector signal processor", True, "multimedia"),
    ISP: IPKind(ISP, "camera image signal processor", False, "multimedia"),
    IPU: IPKind(IPU, "programmable image processing unit", True, "multimedia"),
    JPEG: IPKind(JPEG, "JPEG encode/decode block", False, "multimedia"),
    G2DS: IPKind(G2DS, "2D graphics and scaler", False, "multimedia"),
    VDEC: IPKind(VDEC, "video decoder", False, "multimedia"),
    VENC: IPKind(VENC, "video encoder", False, "multimedia"),
    DISPLAY: IPKind(DISPLAY, "display controller", False, "multimedia"),
    AUDIO: IPKind(AUDIO, "audio DSP / codec", False, "system"),
    MODEM: IPKind(MODEM, "LTE/5G modem", False, "system"),
    WIFI: IPKind(WIFI, "WiFi/BT radio interface", False, "system"),
    GPS: IPKind(GPS, "GNSS receiver", False, "system"),
    CRYPTO: IPKind(CRYPTO, "crypto/DRM engine", False, "system"),
    SENSOR_HUB: IPKind(SENSOR_HUB, "always-on sensor hub", False, "peripheral"),
    USB: IPKind(USB, "USB controller", False, "peripheral"),
}


def kind_info(kind: str) -> IPKind:
    """Metadata for a catalogued kind (raises on unknown kinds)."""
    try:
        return _CATALOG[kind]
    except KeyError:
        raise SpecError(f"unknown IP kind {kind!r}; see repro.soc.ALL_KINDS") from None


def is_programmable(kind: str) -> bool:
    """True for engines that run user code (AP/GPU/DSP/IPU)."""
    return kind_info(kind).programmable
