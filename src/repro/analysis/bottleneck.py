"""Bottleneck analysis: recursive series/parallel throughput composition.

The Gables paper (Section VI) frames both Roofline and Gables as special
cases of bottleneck analysis [Lazowska et al., 1984]:

- the throughput of components *in series* (a pipeline every unit of
  work must traverse) is the **minimum** of the component throughputs;
- the throughput of components *in parallel* (work is split among them)
  is the **sum** of the component throughputs.

This module implements that algebra over an explicit expression tree so
the composed system can both *evaluate* its throughput and *attribute*
the result to the binding component — the attribution is what makes
roofline-style models actionable ("memory-bound" vs "compute-bound").

Example
-------
A two-stage pipeline feeding two parallel workers::

    >>> ingest = Stage("ingest", 100.0)
    >>> workers = parallel(Stage("w0", 30.0), Stage("w1", 50.0))
    >>> system = series(ingest, workers)
    >>> system.throughput()
    80.0
    >>> bottleneck_of(system).stage.name
    'w0'

(The pipeline binds at the parallel pair's 80 units/s, and within that
subsystem ``w0`` is the slower worker.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import SpecError


@dataclass(frozen=True)
class Stage:
    """A leaf component with a fixed throughput bound.

    Parameters
    ----------
    name:
        Human-readable label used in bottleneck attribution.
    throughput_bound:
        Maximum rate (any consistent unit: ops/s, bytes/s, frames/s).
        ``math.inf`` models a component that can never bind.
    """

    name: str
    throughput_bound: float

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("Stage name must be non-empty")
        bound = self.throughput_bound
        if isinstance(bound, bool) or not isinstance(bound, (int, float)):
            raise SpecError(f"Stage {self.name!r} throughput must be a number")
        if math.isnan(bound) or bound <= 0:
            raise SpecError(
                f"Stage {self.name!r} throughput must be positive, got {bound!r}"
            )

    def throughput(self) -> float:
        """The stage's own bound (leaves have nothing to compose)."""
        return float(self.throughput_bound)


@dataclass(frozen=True)
class SystemNode:
    """An internal node composing children in series or in parallel."""

    mode: str  # "series" | "parallel"
    children: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.mode not in ("series", "parallel"):
            raise SpecError(f"mode must be 'series' or 'parallel', got {self.mode!r}")
        if not self.children:
            raise SpecError(f"{self.mode} composition needs at least one child")
        for child in self.children:
            if not isinstance(child, (Stage, SystemNode)):
                raise SpecError(
                    f"children must be Stage or SystemNode, got {type(child).__name__}"
                )

    def throughput(self) -> float:
        """Composed throughput: min over series, sum over parallel."""
        rates = [child.throughput() for child in self.children]
        if self.mode == "series":
            return min(rates)
        return math.fsum(rates)


def series(*components: Stage | SystemNode) -> SystemNode:
    """Compose components in series: every unit of work visits each one.

    The composed throughput is the minimum of the children, i.e. the
    pipeline runs at the pace of its slowest stage.
    """
    return SystemNode("series", tuple(components))


def parallel(*components: Stage | SystemNode) -> SystemNode:
    """Compose components in parallel: work is divided among them.

    The composed throughput is the sum of the children, assuming work is
    divisible and perfectly balanced — the same optimistic assumption
    Gables makes when IPs operate concurrently.
    """
    return SystemNode("parallel", tuple(components))


@dataclass(frozen=True)
class BottleneckReport:
    """Attribution of a composed system's throughput to one leaf stage.

    Attributes
    ----------
    stage:
        The leaf whose bound determines the system throughput.  For a
        parallel composition (where every child contributes) this is the
        *slowest contributor*, the component whose improvement raises
        system throughput the most per unit of added capacity.
    throughput:
        The composed system throughput.
    path:
        Names of the nodes from the root to the binding leaf, useful for
        reporting nested compositions.
    """

    stage: Stage
    throughput: float
    path: tuple


def bottleneck_of(system: Stage | SystemNode) -> BottleneckReport:
    """Find the leaf stage that binds ``system``'s throughput.

    For ``series`` nodes the binding child is the one with the minimum
    throughput; ties resolve to the first child in declaration order so
    the answer is deterministic.  For ``parallel`` nodes every child
    contributes, so we descend into the child with the *lowest*
    throughput — the limiting contributor.
    """
    throughput = system.throughput()
    node: Stage | SystemNode = system
    path: list = []
    while isinstance(node, SystemNode):
        label = f"[{node.mode}]"
        path.append(label)
        node = min(node.children, key=lambda child: child.throughput())
    path.append(node.name)
    return BottleneckReport(stage=node, throughput=throughput, path=tuple(path))
