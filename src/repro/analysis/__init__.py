"""Generic bottleneck analysis (Lazowska et al.), the substrate under
both classic Roofline and Gables.

The public surface is a tiny algebra of throughput *stages*:

- :class:`Stage` — a named component with a throughput bound,
- :func:`series` — pipeline composition (minimum of throughputs),
- :func:`parallel` — concurrent composition (sum of throughputs),
- :class:`BottleneckReport` — which component binds a composed system.
"""

from .bottleneck import (
    BottleneckReport,
    Stage,
    SystemNode,
    bottleneck_of,
    parallel,
    series,
)
from .operational import (
    ServiceDemands,
    gables_demands,
    response_time_bound,
    saturation_population,
    throughput_bound,
    utilization,
)

__all__ = [
    "BottleneckReport",
    "ServiceDemands",
    "Stage",
    "SystemNode",
    "bottleneck_of",
    "gables_demands",
    "parallel",
    "response_time_bound",
    "saturation_population",
    "series",
    "throughput_bound",
    "utilization",
]
