"""Operational analysis: the asymptotic bounds behind bottleneck models.

Gables cites Lazowska et al.'s *Quantitative System Performance* for
bottleneck analysis; that book's operational laws are the general
theory the roofline family specializes.  This module implements the
classic single-class results for a system of queueing centers with
per-job service demands ``D_k``:

- **Utilization law**: ``U_k = X * D_k``;
- **Bottleneck bound** (throughput): ``X <= 1 / D_max``;
- **Asymptotic bounds** with ``N`` customers and think time ``Z``:
  ``X(N) <= min(N / (D + Z), 1 / D_max)`` and
  ``R(N) >= max(D, N * D_max - Z)``;
- ``N*`` — the saturation population where the two throughput
  asymptotes cross.

The test suite uses these to re-derive Gables: one "customer" in flight
(N=1, Z=0) gives ``X = 1/D`` — serialized Gables — while ``N -> inf``
gives ``X = 1/D_max`` — concurrent Gables.  Pipelining a usecase is,
operationally, raising N.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import require_finite_positive, require_nonnegative
from ..errors import SpecError


@dataclass(frozen=True)
class ServiceDemands:
    """Per-job service demands at each center, in seconds.

    ``demands[k]`` is the total time a job requires from center ``k``
    across all its visits (visit count x service time).
    """

    demands: tuple
    names: tuple = ()

    def __post_init__(self) -> None:
        if not isinstance(self.demands, tuple):
            object.__setattr__(self, "demands", tuple(self.demands))
        if not self.demands:
            raise SpecError("ServiceDemands needs at least one center")
        for index, demand in enumerate(self.demands):
            require_nonnegative(demand, f"demands[{index}]")
        if math.fsum(self.demands) <= 0:
            raise SpecError("at least one demand must be positive")
        if not self.names:
            object.__setattr__(
                self,
                "names",
                tuple(f"center{k}" for k in range(len(self.demands))),
            )
        elif len(self.names) != len(self.demands):
            raise SpecError("names must align with demands")

    @property
    def total(self) -> float:
        """``D`` — the sum of demands (minimum response time)."""
        return math.fsum(self.demands)

    @property
    def max_demand(self) -> float:
        """``D_max`` — the bottleneck center's demand."""
        return max(self.demands)

    @property
    def bottleneck(self) -> str:
        """Name of the center with the largest demand."""
        index = max(range(len(self.demands)), key=lambda k: self.demands[k])
        return self.names[index]


def utilization(demands: ServiceDemands, throughput: float) -> dict:
    """Utilization law: ``U_k = X * D_k`` per center.

    Raises when the requested throughput would push any center past
    100% busy — operationally impossible.
    """
    require_finite_positive(throughput, "throughput")
    result = {}
    for name, demand in zip(demands.names, demands.demands):
        u = throughput * demand
        if u > 1.0 + 1e-12:
            raise SpecError(
                f"throughput {throughput:.4g} would drive {name!r} to "
                f"{u:.2%} utilization"
            )
        result[name] = u
    return result


def throughput_bound(demands: ServiceDemands, population: float,
                     think_time: float = 0.0) -> float:
    """Asymptotic throughput bound for ``population`` jobs in flight.

    ``X(N) <= min(N / (D + Z), 1 / D_max)`` — light-load linearity
    capped by the bottleneck center.
    """
    require_finite_positive(population, "population")
    require_nonnegative(think_time, "think_time")
    light = population / (demands.total + think_time)
    heavy = 1.0 / demands.max_demand
    return min(light, heavy)


def response_time_bound(demands: ServiceDemands, population: float,
                        think_time: float = 0.0) -> float:
    """Asymptotic response-time lower bound.

    ``R(N) >= max(D, N * D_max - Z)``.
    """
    require_finite_positive(population, "population")
    require_nonnegative(think_time, "think_time")
    return max(demands.total, population * demands.max_demand - think_time)


def saturation_population(demands: ServiceDemands,
                          think_time: float = 0.0) -> float:
    """``N* = (D + Z) / D_max`` — where the asymptotes cross.

    Below ``N*`` the system is latency-limited (adding jobs adds
    throughput); above it the bottleneck center saturates.  For a
    usecase pipeline, ``N*`` is the depth worth buffering for.
    """
    require_nonnegative(think_time, "think_time")
    return (demands.total + think_time) / demands.max_demand


def gables_demands(soc, workload) -> ServiceDemands:
    """A Gables evaluation as operational service demands.

    Each component's time-per-unit-work is a per-job service demand:
    centers are the IPs plus the DRAM interface.  Then

    - ``throughput_bound(demands, 1)``   = serialized-ish Gables
      (one item in flight; no overlap);
    - ``throughput_bound(demands, inf)`` = concurrent Gables
      (Equation 11) exactly — the bridge the paper's Section VI
      gestures at.
    """
    from ..core.gables import evaluate

    result = evaluate(soc, workload)
    times = result.component_times()
    names = tuple(times)
    return ServiceDemands(
        demands=tuple(times[name] for name in names), names=names
    )
