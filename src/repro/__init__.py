"""repro — a complete reproduction of *Gables: A Roofline Model for
Mobile SoCs* (Hill & Reddi, HPCA 2019).

Quickstart::

    from repro.core import SoCSpec, Workload, evaluate

    soc = SoCSpec.two_ip(peak_perf=40e9, memory_bandwidth=10e9,
                         acceleration=5, cpu_bandwidth=6e9,
                         acc_bandwidth=15e9)
    result = evaluate(soc, Workload.two_ip(f=0.75, i0=8, i1=0.1))
    print(result.summary())

Subpackages
-----------
``repro.core``
    The Gables model (base + extensions), classic Roofline, curves.
``repro.analysis``
    Generic bottleneck analysis substrate.
``repro.baselines``
    Amdahl, Gustafson, Hill-Marty, MultiAmdahl, LogCA-lite.
``repro.soc`` / ``repro.usecases``
    SoC/IP descriptions and dataflow usecases (paper Sections II, IV).
``repro.sim`` / ``repro.ert``
    Simulated Snapdragon-like hardware and the empirical roofline
    toolkit driver that measures it (paper Section IV).
``repro.market``
    Synthetic SoC market dataset (paper Figure 2).
``repro.explore``
    Sweeps, sensitivity, balanced-design search, SoC ranking.
``repro.viz``
    Dependency-free SVG/ASCII scaled-roofline plots (Section III-C).
``repro.obs``
    Observability: tracing spans, metrics registry, and evaluation
    provenance threaded through every hot path (see
    docs/observability.md).
``repro.resilience``
    Fault injection, retry policies, sweep checkpoints, and the
    partial-failure (``on_error``) vocabulary (see
    docs/robustness.md).
"""

__version__ = "1.0.0"

from . import core, obs, resilience

__all__ = ["core", "obs", "resilience", "__version__"]
