"""Command-line interface: ``gables`` (or ``python -m repro.cli``).

Subcommands::

    gables eval     --soc soc.json --workload usecase.json
    gables eval     --figure 6b [--explain]
    gables eval     --figure 6b --variant interconnect
    gables plot     --figure 6d --out fig6d.svg       (or --ascii)
    gables sweep    --figure 6b --param f --steps 9
    gables sweep    --figure 6b --variant multipath --param bpeak
    gables measure  --engine CPU                       (simulated ERT)
    gables report   fig2 | ... | table1 | variants | all
    gables report   dashboard out.html      (self-contained HTML page)
    gables presets
    gables trace summarize trace.jsonl
    gables trace export trace.jsonl --format chrome    (Perfetto)
    gables profile -- sweep --figure 6b --steps 99
    gables bench compare --against rolling
    gables fleet run --workers 2 --telemetry shards/
    gables telemetry merge shards/ --dashboard fleet.html
    gables logs summarize shards/worker-w0/logs.jsonl --tail 10
    gables serve --port 8080 --cache cache.jsonl
    gables client eval --figure 6b --url http://127.0.0.1:8080
    gables client health
    gables client loadgen --clients 8 --fault-plan chaos-default \
                          --history BENCH_HISTORY.jsonl
    gables slo check --url http://127.0.0.1:8080 \
                     --history BENCH_HISTORY.jsonl --alerts ALERTS.jsonl
    gables slo dashboard --url http://127.0.0.1:8080 --out serve.html

Observability flags (accepted globally and on every subcommand; see
docs/observability.md and docs/profiling.md)::

    gables --trace t.jsonl --metrics m.json eval --figure 6b
    gables -v sweep --figure 6b        # INFO logging (-vv for DEBUG)
    gables --log-level debug report fig8

Resilience flags (see docs/robustness.md)::

    gables measure --fault-plan chaos-default --seed 0
    gables measure --engine GPU --checkpoint sweep.jsonl
    gables sweep --figure 6b --on-error record
    gables report all --on-error record

Errors exit with the code of the failing exception class
(:func:`repro.errors.exit_code_for`): 2 for a generic failure, and a
stable per-class code (3 = spec, 4 = workload, ..., 10 = measurement)
for everything more specific.
"""

from __future__ import annotations

import argparse
import logging
import sys

from . import io as repro_io
from . import obs
from .core import (
    FIGURE_6_SEQUENCE,
    VARIANT_CHOICES,
    evaluate,
    evaluate_variant,
    variant_from_config,
)
from .core.two_ip import TwoIPScenario
from .errors import ReproError, exit_code_for
from .resilience import FAULT_PLANS, ON_ERROR_MODES, degraded_banner
from .units import format_bandwidth, format_ops

_log = logging.getLogger("repro.cli")

#: ``--log-level`` choices, mapped onto the stdlib levels.
LOG_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def _figure_scenario(tag: str) -> TwoIPScenario:
    by_name = {s.name: s for s in FIGURE_6_SEQUENCE}
    key = f"fig{tag}" if not tag.startswith("fig") else tag
    if key not in by_name:
        raise ReproError(
            f"unknown figure {tag!r}; choose from "
            f"{sorted(name[3:] for name in by_name)}"
        )
    return by_name[key]


def _load_pair(args) -> tuple:
    if args.figure:
        scenario = _figure_scenario(args.figure)
        return scenario.soc(), scenario.workload()
    if not (args.soc and args.workload):
        raise ReproError("provide either --figure or both --soc and --workload")
    return repro_io.load(args.soc), repro_io.load(args.workload)


def _variant_from_args(args, soc):
    """Build the requested :class:`ModelVariant`, or None for base."""
    name = getattr(args, "variant", None)
    if not name:
        return None
    config = None
    raw = getattr(args, "variant_config", None)
    if raw:
        import json

        try:
            if raw.lstrip().startswith("{"):
                config = json.loads(raw)
            else:
                with open(raw, encoding="utf-8") as handle:
                    config = json.load(handle)
        except (OSError, ValueError) as err:
            raise ReproError(
                f"cannot read --variant-config: {err}"
            ) from err
    return variant_from_config(name, soc, config)


def _cmd_eval(args) -> int:
    soc, workload = _load_pair(args)
    variant = _variant_from_args(args, soc)
    if variant is None:
        result = evaluate(soc, workload)
    else:
        result = evaluate_variant(
            soc, workload if variant.requires_workload else None, variant
        )
    print(f"SoC: {soc.name}   usecase: {workload.name}")
    if variant is not None and not variant.requires_workload:
        print(f"phased usecase: attainable "
              f"{format_ops(result.attainable)} "
              f"(binding phase: {result.bottleneck_phase})")
        for (phase, sub), time in zip(result.phase_results,
                                      result.phase_times):
            print(f"  {phase.name}: work={phase.work:g} "
                  f"time={time:.4g}s/op ({sub.bottleneck}-bound)")
        return 0
    print(result.summary())
    if getattr(args, "explain", False):
        record = obs.provenance.from_result(soc, workload, result)
        print()
        print(record.narrative())
        print(f"audit vs bottleneck analysis: "
              f"{'agrees' if record.audit() else 'DISAGREES'}")
        print(_compiler_line(soc, variant))
    return 0


def _compiler_line(soc, variant) -> str:
    """The ``eval --explain`` compiler status line: which fused kernel
    a batch over this (SoC, variant) would use, and the cache state."""
    from .core import compile as model_compile

    phase = None
    if variant is not None:
        phase = variant.lower(soc).phases[0]
    digest = model_compile.compile_digest(soc, phase)
    cached = "cached" if model_compile.is_cached(soc, phase) else "uncompiled"
    native = (
        "native+ufunc" if model_compile.native_available() else "ufunc"
    )
    stats = model_compile.compile_cache_stats()
    return (
        f"batch compiler: kernel {digest} ({cached}, {native} tier); "
        f"cache size={stats['size']} hits={stats['hits']} "
        f"misses={stats['misses']} builds={stats['builds']}"
    )


def _cmd_plot(args) -> int:
    from .viz import RooflinePlotData, roofline_ascii, roofline_svg

    soc, workload = _load_pair(args)
    data = RooflinePlotData.from_model(
        soc, workload, variant=_variant_from_args(args, soc)
    )
    if args.ascii or not args.out:
        print(roofline_ascii(data))
        return 0
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(roofline_svg(data))
    print(f"wrote {args.out}")
    return 0


def _cmd_sweep(args) -> int:
    from .explore import sweep_fraction, sweep_intensity, sweep_memory_bandwidth

    soc, workload = _load_pair(args)
    variant = _variant_from_args(args, soc)
    steps = args.steps
    on_error = args.on_error
    engine = getattr(args, "engine", "auto")
    if args.param == "f":
        values = [k / (steps - 1) for k in range(steps)]
        series = sweep_fraction(
            soc, workload, args.ip, values, on_error=on_error,
            variant=variant, engine=engine,
        )
    elif args.param == "intensity":
        values = [2.0**k for k in range(-4, steps - 4)]
        series = sweep_intensity(
            soc, workload, args.ip, values, on_error=on_error,
            variant=variant, engine=engine,
        )
    elif args.param == "bpeak":
        base = soc.memory_bandwidth
        values = [base * (0.25 + 0.25 * k) for k in range(steps)]
        series = sweep_memory_bandwidth(
            soc, workload, values, on_error=on_error, variant=variant,
            engine=engine,
        )
    else:
        raise ReproError(f"unknown sweep parameter {args.param!r}")
    if series.errors:
        print(degraded_banner(series.errors, len(values)))
    print(f"sweep {series.parameter}:")
    for point in series.points:
        print(
            f"  {point.value:>12.6g}  {format_ops(point.attainable):>14}"
            f"  ({point.bottleneck})"
        )
    for transition in series.bottleneck_transitions():
        print(
            f"  transition in ({transition.previous_value:g}, "
            f"{transition.value:g}]: {transition.from_component} -> "
            f"{transition.to_component}"
        )
    return 0


def _cmd_measure(args) -> int:
    from .ert import fit_roofline, roofline_summary, run_sweep
    from .resilience import DEFAULT_RETRY_POLICY, RetryPolicy
    from .sim import simulated_snapdragon_835

    retry_policy = None
    if args.retries is not None:
        retry_policy = RetryPolicy(max_attempts=args.retries)
    elif args.fault_plan:
        # Injected dropouts need retries to converge; default to the
        # stock policy whenever a fault plan is active.
        retry_policy = DEFAULT_RETRY_POLICY
    platform = simulated_snapdragon_835()
    sweep = run_sweep(
        platform,
        args.engine,
        seed=args.seed,
        fault_plan=args.fault_plan,
        retry_policy=retry_policy,
        checkpoint=args.checkpoint,
    )
    fitted = fit_roofline(sweep)
    print(roofline_summary(fitted))
    if sweep.faults is not None:
        counts = sweep.faults["counts"]
        breakdown = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(counts.items())
            if count
        )
        print(
            f"fault plan {sweep.faults['plan']!r} "
            f"(seed {sweep.faults['seed']}): "
            f"{sweep.faults['injected']} faults injected"
            + (f" ({breakdown})" if breakdown else "")
        )
    return 0


def _cmd_html(args) -> int:
    from .viz import save_interactive_report

    soc, workload = _load_pair(args)
    save_interactive_report(soc, workload, args.out)
    print(f"wrote {args.out} (open in any browser; fully offline)")
    return 0


def _cmd_power(args) -> int:
    from .power import (
        EnergyModel,
        evaluate_power_constrained,
        max_tdp_needed,
        usecase_energy,
    )

    soc, workload = _load_pair(args)
    model = EnergyModel.mobile_default(soc)
    result = evaluate_power_constrained(soc, workload, model, args.tdp)
    energy = usecase_energy(soc, workload, model)
    print(f"TDP {args.tdp:g} W: attainable {format_ops(result.attainable)} "
          f"(bottleneck: {result.bottleneck})")
    print(f"unconstrained Gables bound: "
          f"{format_ops(result.gables.attainable)}")
    print(f"sustained fraction: {result.sustained_fraction():.2f}")
    print(f"TDP needed for the full bound: "
          f"{max_tdp_needed(soc, workload, model):.2f} W")
    print(f"energy per op: {energy.energy_per_op:.3e} J "
          f"(avg power at full rate: {energy.average_power:.2f} W)")
    return 0


def _cmd_interval(args) -> int:
    from .core.uncertainty import evaluate_with_margin

    soc, workload = _load_pair(args)
    result = evaluate_with_margin(soc, workload, args.margin)
    print(f"attainable in [{format_ops(result.lo)}, "
          f"{format_ops(result.hi)}] at ±{args.margin:g}% inputs "
          f"(x{result.width_ratio:.2f} spread)")
    if result.regime_stable:
        print(f"bottleneck stable: {result.pessimistic_bottleneck}")
    else:
        print(f"bottleneck REGIME CHANGES across the uncertainty: "
              f"{result.pessimistic_bottleneck} (pessimistic) vs "
              f"{result.optimistic_bottleneck} (optimistic)")
    return 0


def _cmd_drift(args) -> int:
    from .explore import TechnologyTrend, bottleneck_drift
    from .viz import drift_table

    soc, workload = _load_pair(args)
    trend = TechnologyTrend(
        compute_growth=args.compute_growth,
        memory_bandwidth_growth=args.memory_growth,
        link_bandwidth_growth=args.link_growth,
    )
    points = bottleneck_drift(soc, workload, years=args.years, trend=trend)
    print(f"generational drift for {workload.name} on {soc.name}:")
    print(drift_table(points))
    for before, after in zip(points, points[1:]):
        if before.bottleneck != after.bottleneck:
            print(f"bottleneck flips {before.bottleneck} -> "
                  f"{after.bottleneck} at year {after.year:g}")
    return 0


def _cmd_diagram(args) -> int:
    from .soc import PRESETS
    from .viz import soc_diagram_svg

    factory = PRESETS.get(args.preset)
    if factory is None:
        raise ReproError(
            f"unknown preset {args.preset!r}; choose from {sorted(PRESETS)}"
        )
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(soc_diagram_svg(factory()))
    print(f"wrote {args.out}")
    return 0


def _cmd_figures(args) -> int:
    from .figures import main_figures

    return main_figures(args.out)


def _cmd_presets(_args) -> int:
    from .soc import PRESETS

    for name, factory in sorted(PRESETS.items()):
        description = factory()
        spec = description.to_gables_spec()
        print(
            f"{name}: {spec.n_ips} IPs, Ppeak {format_ops(spec.peak_perf)}, "
            f"Bpeak {format_bandwidth(spec.memory_bandwidth)}"
        )
    return 0


def _cmd_report(args) -> int:
    from .reports import REPORTS
    from .resilience import record_failure

    if args.experiment == "dashboard":
        out = args.out or "dashboard.html"
        obs.write_dashboard_html(out, history_path="BENCH_HISTORY.jsonl")
        print(f"wrote {out} (self-contained; open in any browser)")
        return 0
    report = REPORTS.get(args.experiment)
    if report is None:
        raise ReproError(
            f"unknown experiment {args.experiment!r}; choose from "
            f"{sorted(REPORTS)}"
        )
    if args.experiment == "all":
        # report_all owns the per-section capture and banner.
        print(report(on_error=args.on_error))
        return 0
    report_args = ()
    if args.experiment == "variants" and getattr(args, "variant", None):
        report_args = (args.variant,)
    if args.on_error == "raise":
        print(report(*report_args))
        return 0
    try:
        print(report(*report_args))
    except ReproError as err:
        failure = record_failure((args.experiment,), err)
        print(degraded_banner((failure,), 1, what="sections"))
    return 0


def _cmd_trace_summarize(args) -> int:
    import shutil

    from .viz import trace_summary_table

    try:
        spans = obs.read_trace_jsonl(args.file)
    except OSError as err:
        raise ReproError(f"cannot read trace file: {err}") from err
    summaries = obs.summarize_spans(spans)
    if not summaries:
        print(f"{args.file}: no finished spans")
        return 0
    total = obs.trace_total_seconds(summaries)
    print(f"{args.file}: {len(spans)} spans, "
          f"{total:.6f} s of root wall time")
    width = args.width
    if width is None and args.format == "markdown":
        # Deep span trees must wrap onto continuation rows, never be
        # truncated at the terminal edge.
        width = shutil.get_terminal_size((80, 24)).columns
    print(trace_summary_table(summaries, fmt=args.format, width=width))
    return 0


def _cmd_trace_export(args) -> int:
    from pathlib import Path

    try:
        spans = obs.read_trace_jsonl(args.file)
    except OSError as err:
        raise ReproError(f"cannot read trace file: {err}") from err
    out = args.out or str(Path(args.file).with_suffix(".chrome.json"))
    try:
        events = obs.write_trace_chrome(out, spans)
    except OSError as err:
        raise ReproError(f"cannot write {out}: {err}") from err
    print(f"wrote {events} span events to {out} "
          "(open in https://ui.perfetto.dev or chrome://tracing)")
    return 0


def _cmd_profile(args) -> int:
    import time

    inner = list(args.cmd)
    if inner and inner[0] == "--":
        inner = inner[1:]
    if not inner:
        raise ReproError(
            "usage: gables profile [--out FILE] -- <subcommand> [args]"
        )
    if inner[0] == "profile":
        raise ReproError("cannot nest 'profile' inside 'profile'")
    inner_args = build_parser().parse_args(inner)
    _configure_logging(inner_args)
    obs.reset_profiling()
    obs.enable_profiling()
    start = time.perf_counter()
    try:
        with obs.profile_scope(f"cli.{inner_args.command}"):
            code = inner_args.handler(inner_args)
    finally:
        wall = time.perf_counter() - start
        obs.disable_profiling()
    nodes = obs.get_profiler().report()
    profiled_s = obs.get_profiler().total_seconds()
    print()
    print(obs.format_profile(nodes, total_s=wall))
    coverage = 100.0 * profiled_s / wall if wall > 0 else 0.0
    print(f"\nprofiled {profiled_s:.6f}s of {wall:.6f}s wall "
          f"({coverage:.1f}% coverage)")
    if args.out:
        out = str(args.out)
        if out.endswith(".svg"):
            from .viz import save_profile_flame_svg

            save_profile_flame_svg(out, nodes)
        else:
            obs.write_profile_json(out, nodes)
        print(f"wrote {out}", file=sys.stderr)
    return code


def _cmd_bench_compare(args) -> int:
    import os

    records: list = []
    if args.against == "rolling":
        if not os.path.exists(args.history):
            print(f"{args.history}: no benchmark history yet; "
                  "nothing to compare")
            return 0
        records.extend(obs.read_history(args.history))
    for path in args.files:
        try:
            records.extend(obs.load_bench_file(path))
        except OSError as err:
            raise ReproError(f"cannot read benchmark file: {err}") from err
    if not records:
        print("no benchmark records to compare")
        return 0
    report = obs.compare_runs(
        records, threshold=args.threshold, window=args.window
    )
    print(report.format())
    if report.regressions and not args.report_only:
        return 1
    return 0


def _cmd_fleet_run(args) -> int:
    from .explore import fleet_bench_records, run_fleet_sweep
    from .market import market_spec_population
    from .resilience import DEFAULT_RETRY_POLICY, RetryPolicy

    if args.grid:
        return _fleet_grid_run(args)
    cases = market_spec_population(since=args.since, limit=args.specs)
    retry_policy = None
    if args.retries is not None:
        retry_policy = RetryPolicy(max_attempts=args.retries)
    elif args.fault_plan:
        # Same convention as ``gables measure``: injected dropouts need
        # retries to converge.
        retry_policy = DEFAULT_RETRY_POLICY
    result = run_fleet_sweep(
        cases,
        workers=args.workers,
        on_error=args.on_error,
        fault_plan_name=args.fault_plan,
        seed=args.seed,
        retry_policy=retry_policy,
        checkpoint_path=args.checkpoint,
        telemetry_dir=args.telemetry,
    )
    print(
        f"fleet {result.fleet_run_id}: {len(result.points)} points over "
        f"{len(result.workers)} worker(s) in {result.elapsed_s:.3f}s "
        f"({result.throughput:,.0f} points/s)"
    )
    for report in sorted(result.workers, key=lambda r: r.shard):
        extra = ""
        if report.checkpoint_reused:
            extra += f", {report.checkpoint_reused} from checkpoint"
        faults = report.fault_summary
        if faults and faults.get("injected"):
            extra += f", {faults['injected']} faults injected"
        print(
            f"  {report.worker_id} (shard {report.shard}, "
            f"pid {report.pid}): {report.points}/{report.cases} points, "
            f"{report.heartbeats} heartbeat(s){extra}"
        )
    if result.errors:
        print(degraded_banner(result.errors, len(cases)))
    if result.telemetry_dir:
        print(f"telemetry shards under {result.telemetry_dir}")
    if args.history:
        records = fleet_bench_records(result)
        try:
            obs.append_history(args.history, records)
        except OSError as err:
            raise ReproError(
                f"cannot write benchmark history: {err}"
            ) from err
        print(
            f"appended {len(records)} throughput record(s) to {args.history}"
        )
    if args.dashboard:
        if not args.telemetry:
            raise ReproError("--dashboard requires --telemetry DIR")
        obs.write_fleet_dashboard_html(
            args.dashboard, args.telemetry, history_path=args.history or None
        )
        print(f"wrote {args.dashboard} (self-contained; open in any browser)")
    return 0


def _fleet_grid_run(args) -> int:
    """``gables fleet run --grid N``: the sharded synthetic-grid sweep."""
    from .explore import fleet_bench_records, run_fleet_grid_sweep
    from .soc import generic_soc

    if args.fault_plan or args.checkpoint or args.retries is not None:
        raise ReproError(
            "--grid sweeps are pure batch math; fault plans, retries and "
            "checkpoints apply to the case fleet only"
        )
    if args.on_error != "raise":
        raise ReproError("--grid sweeps support on_error='raise' only")
    result = run_fleet_grid_sweep(
        generic_soc().to_gables_spec(),
        points=args.grid,
        workers=args.workers,
        chunk=args.chunk,
        seed=args.seed,
        engine=args.batch_engine,
        telemetry_dir=args.telemetry,
    )
    print(
        f"grid fleet {result.fleet_run_id}: {result.points:,} points in "
        f"{len(result.chunks)} chunk(s) over {len(result.workers)} "
        f"worker(s) in {result.elapsed_s:.3f}s "
        f"({result.throughput:,.0f} points/s, engine={result.engine})"
    )
    print(f"  result digest {result.digest[:16]}…")
    for report in sorted(result.workers, key=lambda r: r.shard):
        print(
            f"  {report.worker_id} (shard {report.shard}, "
            f"pid {report.pid}): {report.points:,} points in "
            f"{report.cases} chunk(s), {report.heartbeats} heartbeat(s)"
        )
    if result.telemetry_dir:
        print(f"telemetry shards under {result.telemetry_dir}")
    if args.history:
        records = fleet_bench_records(result)
        try:
            obs.append_history(args.history, records)
        except OSError as err:
            raise ReproError(
                f"cannot write benchmark history: {err}"
            ) from err
        print(
            f"appended {len(records)} throughput record(s) to {args.history}"
        )
    return 0


def _cmd_telemetry_merge(args) -> int:
    from pathlib import Path

    merged = obs.merge_telemetry(obs.load_shards(args.dir))
    out = args.out or str(Path(args.dir) / "merged")
    paths = obs.write_merged(out, merged)
    summary = merged.summary()
    print(
        f"merged {len(summary['workers'])} shard(s) of fleet "
        f"{summary['fleet_run_id'] or '(unknown)'}: "
        f"{summary['spans']} spans, {summary['metrics']} metric keys, "
        f"{summary['log_records']} log records"
    )
    for name in sorted(paths):
        print(f"  wrote {paths[name]}")
    if args.dashboard:
        obs.write_fleet_dashboard_html(args.dashboard, args.dir)
        print(f"wrote {args.dashboard} (self-contained; open in any browser)")
    return 0


def _cmd_logs_summarize(args) -> int:
    try:
        records = obs.read_log_jsonl(args.file)
    except OSError as err:
        raise ReproError(f"cannot read log file: {err}") from err
    print(f"{args.file}:")
    print(obs.format_log_summary(obs.summarize_logs(records)))
    if args.tail:
        print()
        print(f"last {min(args.tail, len(records))} record(s):")
        for record in obs.tail_logs(records, args.tail):
            fields = "".join(
                f" {key}={value}" for key, value in sorted(
                    record.fields.items()
                )
            )
            worker = record.worker_id or "-"
            message = f" {record.message}" if record.message else ""
            print(
                f"  {record.ts:.6f} {record.level:<7} [{worker}] "
                f"{record.event}{message}{fields}"
            )
    return 0


def _cmd_serve(args) -> int:
    from .serve import GablesServer, ServiceConfig

    config = ServiceConfig(
        queue_limit=args.queue_limit,
        batch_window_s=args.batch_window_ms / 1000.0,
        default_deadline_s=args.deadline_s,
        engine=args.batch_engine,
        cache_path=args.cache,
        allow_fault_injection=args.chaos,
    )
    server = GablesServer(
        config, host=args.host, port=args.port,
        drain_timeout_s=args.drain_timeout_s,
    )
    server.install_signal_handlers()
    chaos = " (chaos hooks enabled)" if args.chaos else ""
    print(f"gables-serve listening on {server.url}{chaos}", flush=True)
    server.serve_forever()
    report = server.drain_report or {}
    print(f"drained cleanly: {report.get('drained', True)} "
          f"(in-flight left: {report.get('inflight_left', 0)})")
    return 0 if report.get("drained", True) else 1


def _cmd_client_eval(args) -> int:
    import json

    from .serve import ServiceClient

    soc, workload = _load_pair(args)
    config = None
    raw = getattr(args, "variant_config", None)
    if raw:
        try:
            if raw.lstrip().startswith("{"):
                config = json.loads(raw)
            else:
                with open(raw, encoding="utf-8") as handle:
                    config = json.load(handle)
        except (OSError, ValueError) as err:
            raise ReproError(f"cannot read --variant-config: {err}") from err
    with ServiceClient(args.url) as client:
        if args.variant:
            payload = client.evaluate_variant(
                soc, workload, args.variant, config=config,
                deadline_s=args.deadline_s,
            )
        else:
            payload = client.evaluate(
                soc, workload, deadline_s=args.deadline_s
            )
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_client_health(args) -> int:
    import json

    from .serve import ServiceClient

    with ServiceClient(args.url) as client:
        document = client.health()
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0 if document.get("status") == "ok" else 1


def _cmd_client_loadgen(args) -> int:
    from .errors import ServeError
    from .serve import format_report, record_slo, run_load

    report = run_load(
        args.url,
        clients=args.clients,
        requests_per_client=args.requests,
        fault_plan=args.fault_plan,
        seed=args.seed,
    )
    print(format_report(report))
    if args.history:
        written = record_slo(report, args.history)
        print(f"appended {written} SLO record(s) to {args.history}")
    return 0 if report.ok else ServeError.exit_code


def _cmd_slo_check(args) -> int:
    """Burn-rate check over the live server and/or bench history.

    Prints one report per source; breaches append structured alerts
    to ``--alerts`` and a page-severity burn exits nonzero via
    ``SLO_BURN_RATE_EXCEEDED`` (ticket-severity burns warn but pass).
    """
    import json

    from .errors import ObservabilityError
    from .obs.dashboard import _http_get

    if not args.url and not args.history:
        raise ReproError(
            "nothing to check: provide --url and/or --history"
        )
    objectives = obs.default_objectives(
        availability=args.availability,
        latency_objective=args.latency_objective,
        threshold_s=args.p99_threshold,
    )
    reports = []
    if args.url:
        report = json.loads(_http_get(args.url, "/slo"))
        reports.append((f"{args.url}/slo", report))
    if args.history:
        try:
            records = obs.read_history(args.history)
        except OSError as err:
            raise ReproError(
                f"cannot read bench history: {err}"
            ) from err
        events = obs.history_events(
            records, threshold_s=args.p99_threshold
        )
        report = obs.evaluate_slos(objectives, events)
        report["window_events"] = len(events)
        reports.append((args.history, report))
    worst = ""
    alerts = []
    for source, report in reports:
        print(f"{source}:")
        print(obs.format_slo_report(report))
        print()
        alerts.extend(obs.alert_records(report, source=source))
        severity = report.get("severity", "")
        if severity and (not worst or severity == "page"):
            worst = severity
    if alerts:
        obs.append_alerts(args.alerts, alerts)
        print(f"appended {len(alerts)} alert(s) to {args.alerts}")
    if worst == "page":
        raise ObservabilityError(
            f"error budget burning at page severity "
            f"({len(alerts)} alert(s) in {args.alerts})",
            code="SLO_BURN_RATE_EXCEEDED",
        )
    print("slo check: ok" if not worst
          else f"slo check: {worst}-severity burn (not paging)")
    return 0


def _cmd_slo_dashboard(args) -> int:
    obs.write_serve_dashboard_html(
        args.out, args.url, refresh_s=args.refresh_s
    )
    print(f"wrote {args.out} (self-contained; auto-refreshes every "
          f"{args.refresh_s:g}s)")
    return 0


def _add_obs_flags(parser: argparse.ArgumentParser, top_level: bool) -> None:
    """Observability flags, shared by the root parser and every subcommand.

    The root parser owns the real defaults; subcommand copies default to
    ``SUPPRESS`` so ``gables --trace t.jsonl eval`` survives the
    subparser re-parse (argparse sub-parsers overwrite namespace entries
    with their own defaults otherwise).
    """
    missing = argparse.SUPPRESS
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace", metavar="FILE",
        default=None if top_level else missing,
        help="record tracing spans and write them as JSONL on exit",
    )
    group.add_argument(
        "--metrics", metavar="FILE",
        default=None if top_level else missing,
        help="write a JSON metrics snapshot on exit",
    )
    group.add_argument(
        "-v", "--verbose", action="count",
        default=0 if top_level else missing,
        help="log progress to stderr (-v INFO, -vv DEBUG)",
    )
    group.add_argument(
        "--log-level", choices=sorted(LOG_LEVELS),
        default=None if top_level else missing,
        help="explicit log level (overrides -v)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="gables",
        description="Gables: a Roofline model for mobile SoCs (HPCA 2019)",
    )
    _add_obs_flags(parser, top_level=True)
    obs_common = argparse.ArgumentParser(add_help=False)
    _add_obs_flags(obs_common, top_level=False)
    root_sub = parser.add_subparsers(dest="command", required=True)

    class _Sub:
        """add_parser shim attaching the shared observability flags."""

        def __init__(self, subparsers) -> None:
            self._subparsers = subparsers

        def add_parser(self, name, **kwargs):
            kwargs.setdefault("parents", []).append(obs_common)
            return self._subparsers.add_parser(name, **kwargs)

    sub = _Sub(root_sub)

    def add_model_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--soc", help="path to a soc JSON document")
        p.add_argument("--workload", help="path to a workload JSON document")
        p.add_argument(
            "--figure", help="use a paper Figure 6 scenario: 6a|6b|6c|6d"
        )

    def add_variant_args(p: argparse.ArgumentParser) -> None:
        group = p.add_argument_group("model variant")
        group.add_argument(
            "--variant", choices=VARIANT_CHOICES, default=None,
            help="evaluate through a model variant's lowered pipeline "
                 "(default: base concurrent Gables)",
        )
        group.add_argument(
            "--variant-config", dest="variant_config", metavar="JSON",
            default=None,
            help="variant structure as inline JSON or a JSON file path "
                 "(buses/routes/miss ratios/phases; see docs/api.md)",
        )

    p_eval = sub.add_parser("eval", help="evaluate a usecase on an SoC")
    add_model_args(p_eval)
    add_variant_args(p_eval)
    p_eval.add_argument(
        "--explain", action="store_true",
        help="print the evaluation's provenance record (which min() "
             "branch won and why) with a bottleneck-analysis audit",
    )
    p_eval.set_defaults(handler=_cmd_eval)

    p_plot = sub.add_parser("plot", help="render a scaled-roofline plot")
    add_model_args(p_plot)
    add_variant_args(p_plot)
    p_plot.add_argument("--out", help="output SVG path (omit for ASCII)")
    p_plot.add_argument("--ascii", action="store_true",
                        help="render to the terminal")
    p_plot.set_defaults(handler=_cmd_plot)

    p_sweep = sub.add_parser("sweep", help="sweep a model parameter")
    add_model_args(p_sweep)
    add_variant_args(p_sweep)
    p_sweep.add_argument("--param", default="f",
                         choices=("f", "intensity", "bpeak"))
    p_sweep.add_argument("--ip", type=int, default=1,
                         help="IP index for f/intensity sweeps")
    p_sweep.add_argument("--steps", type=int, default=9)
    p_sweep.add_argument(
        "--on-error", dest="on_error", default="raise",
        choices=ON_ERROR_MODES,
        help="tolerate failing sweep points: skip them, or record "
             "them under a degraded-output banner",
    )
    p_sweep.add_argument(
        "--engine", default="auto",
        choices=("auto", "compiled", "interpreted"),
        help="batch-evaluation tier for the sweep grid (auto picks the "
             "fused compiled kernel whenever the batch qualifies)",
    )
    p_sweep.set_defaults(handler=_cmd_sweep)

    p_measure = sub.add_parser(
        "measure", help="empirical roofline of a simulated engine"
    )
    p_measure.add_argument("--engine", default="CPU",
                           choices=("CPU", "GPU", "DSP"))
    resilience = p_measure.add_argument_group("resilience")
    resilience.add_argument(
        "--fault-plan", dest="fault_plan", metavar="NAME", default=None,
        choices=sorted(FAULT_PLANS),
        help="inject deterministic faults from a named plan: "
             + ", ".join(sorted(FAULT_PLANS)),
    )
    resilience.add_argument(
        "--seed", type=int, default=0,
        help="seed for fault injection and measurement noise",
    )
    resilience.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max measurement attempts per sample (defaults to the "
             "stock retry policy when a fault plan is active)",
    )
    resilience.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="JSONL sweep checkpoint; completed samples are replayed "
             "on resume",
    )
    p_measure.set_defaults(handler=_cmd_measure)

    p_html = sub.add_parser(
        "html", help="write the interactive explorer (the paper's web tool)"
    )
    add_model_args(p_html)
    p_html.add_argument("--out", default="gables_explorer.html")
    p_html.set_defaults(handler=_cmd_html)

    p_power = sub.add_parser(
        "power", help="TDP-constrained evaluation (mobile energy model)"
    )
    add_model_args(p_power)
    p_power.add_argument("--tdp", type=float, default=3.0,
                         help="thermal design power, watts")
    p_power.set_defaults(handler=_cmd_power)

    p_interval = sub.add_parser(
        "interval", help="attainable-performance bounds under input margins"
    )
    add_model_args(p_interval)
    p_interval.add_argument("--margin", type=float, default=20.0,
                            help="±%% uncertainty on every rate input")
    p_interval.set_defaults(handler=_cmd_interval)

    p_drift = sub.add_parser(
        "drift", help="project the design across future chip generations"
    )
    add_model_args(p_drift)
    p_drift.add_argument("--years", type=int, default=5)
    p_drift.add_argument("--compute-growth", type=float, default=1.30)
    p_drift.add_argument("--memory-growth", type=float, default=1.12)
    p_drift.add_argument("--link-growth", type=float, default=1.20)
    p_drift.set_defaults(handler=_cmd_drift)

    p_diagram = sub.add_parser(
        "diagram", help="render a preset SoC's block diagram (Fig. 3 style)"
    )
    p_diagram.add_argument("--preset", default="generic")
    p_diagram.add_argument("--out", default="soc_diagram.svg")
    p_diagram.set_defaults(handler=_cmd_diagram)

    p_figures = sub.add_parser(
        "figures", help="regenerate every paper artifact into a directory"
    )
    p_figures.add_argument("--out", default="gables_figures")
    p_figures.set_defaults(handler=_cmd_figures)

    p_report = sub.add_parser("report", help="regenerate a paper artifact")
    p_report.add_argument(
        "experiment",
        help="fig2 | fig6 | fig7 | fig8 | fig9 | table1 | variants | all "
             "| dashboard",
    )
    p_report.add_argument(
        "out", nargs="?", default=None,
        help="output path for 'dashboard' (default: dashboard.html)",
    )
    p_report.add_argument(
        "--variant", choices=VARIANT_CHOICES, default=None,
        help="restrict the 'variants' report to one model variant",
    )
    p_report.add_argument(
        "--on-error", dest="on_error", default="raise",
        choices=ON_ERROR_MODES,
        help="tolerate failing report sections: skip them, or keep a "
             "placeholder, under a degraded-output banner",
    )
    p_report.set_defaults(handler=_cmd_report)

    p_presets = sub.add_parser("presets", help="list built-in SoC presets")
    p_presets.set_defaults(handler=_cmd_presets)

    p_trace = sub.add_parser(
        "trace", help="inspect trace files written with --trace"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_summarize = trace_sub.add_parser(
        "summarize", help="per-span time breakdown of a JSONL trace"
    )
    p_summarize.add_argument("file", help="JSONL trace file")
    p_summarize.add_argument("--format", default="markdown",
                             choices=("markdown", "csv"))
    p_summarize.add_argument(
        "--width", type=int, default=None, metavar="COLS",
        help="wrap span names so markdown rows fit COLS columns "
             "(default: the terminal width; CSV never wraps)",
    )
    p_summarize.set_defaults(handler=_cmd_trace_summarize)
    p_export = trace_sub.add_parser(
        "export", help="convert a JSONL trace for external viewers"
    )
    p_export.add_argument("file", help="JSONL trace file")
    p_export.add_argument("--format", default="chrome",
                          choices=("chrome",),
                          help="output flavour (chrome trace-event JSON, "
                               "loadable in Perfetto)")
    p_export.add_argument("--out", default=None,
                          help="output path (default: <file>.chrome.json)")
    p_export.set_defaults(handler=_cmd_trace_export)

    p_profile = sub.add_parser(
        "profile", help="run any subcommand under the phase profiler"
    )
    p_profile.add_argument(
        "--out", default=None, metavar="FILE",
        help="also save the tree: JSON, or a flamegraph SVG when the "
             "path ends in .svg",
    )
    p_profile.add_argument(
        "cmd", nargs=argparse.REMAINDER,
        help="the subcommand to profile, after '--'",
    )
    p_profile.set_defaults(handler=_cmd_profile)

    p_bench = sub.add_parser(
        "bench", help="benchmark history and regression checks"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_compare = bench_sub.add_parser(
        "compare",
        help="compare the newest benchmark run against the rolling "
             "baseline",
    )
    p_compare.add_argument(
        "files", nargs="*",
        help="extra BENCH_*.json snapshots folded in as the current run",
    )
    p_compare.add_argument("--history", default="BENCH_HISTORY.jsonl",
                           help="JSONL benchmark history file")
    p_compare.add_argument("--against", default="rolling",
                           choices=("rolling",),
                           help="baseline to compare against")
    p_compare.add_argument("--threshold", type=float, default=0.20,
                           help="regression bar as a fraction (0.20 = "
                                "flag >= 20%% slower)")
    p_compare.add_argument("--window", type=int, default=10,
                           help="rolling-baseline window, in runs")
    p_compare.add_argument("--report-only", dest="report_only",
                           action="store_true",
                           help="print the comparison but always exit 0")
    p_compare.set_defaults(handler=_cmd_bench_compare)

    p_fleet = sub.add_parser(
        "fleet", help="sharded market-wide sweeps with telemetry"
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)
    p_fleet_run = fleet_sub.add_parser(
        "run",
        help="evaluate a market-wide spec population across worker "
             "processes",
    )
    p_fleet_run.add_argument(
        "--workers", type=int, default=2,
        help="worker processes (1 runs inline, no spawn)",
    )
    p_fleet_run.add_argument(
        "--specs", type=int, default=None, metavar="N",
        help="evaluate only the first N market specs (default: all)",
    )
    p_fleet_run.add_argument(
        "--since", type=int, default=None, metavar="YEAR",
        help="restrict the population to chipsets announced since YEAR",
    )
    p_fleet_run.add_argument(
        "--telemetry", metavar="DIR", default=None,
        help="write one telemetry shard per worker under DIR "
             "(merge with 'gables telemetry merge')",
    )
    p_fleet_run.add_argument(
        "--history", default="BENCH_HISTORY.jsonl", metavar="FILE",
        help="append fleet/worker throughput records here "
             "(empty string disables)",
    )
    p_fleet_run.add_argument(
        "--dashboard", metavar="FILE", default=None,
        help="also render the merged fleet dashboard HTML "
             "(requires --telemetry)",
    )
    fleet_resilience = p_fleet_run.add_argument_group("resilience")
    fleet_resilience.add_argument(
        "--fault-plan", dest="fault_plan", metavar="NAME", default=None,
        choices=sorted(FAULT_PLANS),
        help="inject deterministic faults from a named plan: "
             + ", ".join(sorted(FAULT_PLANS)),
    )
    fleet_resilience.add_argument(
        "--seed", type=int, default=0,
        help="fault-injection seed (each worker uses seed + shard)",
    )
    fleet_resilience.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max attempts per point (defaults to the stock retry "
             "policy when a fault plan is active)",
    )
    fleet_resilience.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="base JSONL checkpoint path; each worker appends to "
             "FILE.<worker_id> and replays it on resume",
    )
    fleet_resilience.add_argument(
        "--on-error", dest="on_error", default="raise",
        choices=ON_ERROR_MODES,
        help="tolerate failing fleet points: skip them, or record "
             "them under a degraded-output banner",
    )
    grid_group = p_fleet_run.add_argument_group("grid sweeps")
    grid_group.add_argument(
        "--grid", type=int, default=0, metavar="POINTS",
        help="sweep POINTS synthetic market workload rows (chunked, "
             "digest-checked) instead of the case population",
    )
    grid_group.add_argument(
        "--chunk", type=int, default=250_000, metavar="ROWS",
        help="grid chunk size: rows generated + evaluated per batch",
    )
    grid_group.add_argument(
        "--engine", dest="batch_engine", default="auto",
        choices=("auto", "compiled", "interpreted"),
        help="batch-evaluation tier for --grid sweeps",
    )
    p_fleet_run.set_defaults(handler=_cmd_fleet_run)

    p_telemetry = sub.add_parser(
        "telemetry", help="merge per-worker telemetry shards"
    )
    telemetry_sub = p_telemetry.add_subparsers(
        dest="telemetry_command", required=True
    )
    p_merge = telemetry_sub.add_parser(
        "merge",
        help="fold worker shards into one trace/metrics/profile/log view",
    )
    p_merge.add_argument("dir", help="telemetry directory (one worker-* "
                                     "shard per worker)")
    p_merge.add_argument(
        "--out", default=None, metavar="DIR",
        help="output directory (default: <dir>/merged)",
    )
    p_merge.add_argument(
        "--dashboard", metavar="FILE", default=None,
        help="also render the merged fleet dashboard HTML",
    )
    p_merge.set_defaults(handler=_cmd_telemetry_merge)

    p_logs = sub.add_parser(
        "logs", help="inspect structured JSONL log files"
    )
    logs_sub = p_logs.add_subparsers(dest="logs_command", required=True)
    p_logs_summarize = logs_sub.add_parser(
        "summarize", help="level/event/worker overview of a JSONL log"
    )
    p_logs_summarize.add_argument("file", help="JSONL log file")
    p_logs_summarize.add_argument(
        "--tail", type=int, default=0, metavar="N",
        help="also print the last N records",
    )
    p_logs_summarize.set_defaults(handler=_cmd_logs_summarize)

    p_serve = sub.add_parser(
        "serve",
        help="run the evaluation service (HTTP/JSON, stdlib only)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="bind port (0 picks a free one)")
    p_serve.add_argument(
        "--engine", dest="batch_engine", default="auto",
        choices=("auto", "compiled", "interpreted"),
        help="batch-evaluation tier for coalesced requests",
    )
    p_serve.add_argument(
        "--queue-limit", dest="queue_limit", type=int, default=64,
        metavar="N",
        help="in-flight admission budget; beyond it requests are "
             "shed with 429",
    )
    p_serve.add_argument(
        "--batch-window-ms", dest="batch_window_ms", type=float,
        default=2.0, metavar="MS",
        help="micro-batching latency budget",
    )
    p_serve.add_argument(
        "--deadline-s", dest="deadline_s", type=float, default=10.0,
        metavar="S",
        help="default per-request deadline",
    )
    p_serve.add_argument(
        "--cache", metavar="FILE", default=None,
        help="persist the result cache to a JSONL file (recovered on "
             "restart, torn tail tolerated)",
    )
    p_serve.add_argument(
        "--chaos", action="store_true",
        help="accept per-request fault-injection hooks "
             "(crash/wedge/compiled-crash) — test rigs only",
    )
    p_serve.add_argument(
        "--drain-timeout-s", dest="drain_timeout_s", type=float,
        default=10.0, metavar="S",
        help="how long a SIGTERM drain waits for in-flight requests",
    )
    p_serve.set_defaults(handler=_cmd_serve)

    p_client = sub.add_parser(
        "client", help="talk to a running 'gables serve' endpoint"
    )
    client_sub = p_client.add_subparsers(dest="client_command",
                                         required=True)
    p_client_eval = client_sub.add_parser(
        "eval", help="evaluate one usecase remotely"
    )
    p_client_eval.add_argument("--url", default="http://127.0.0.1:8080",
                               help="server base URL")
    p_client_eval.add_argument("--figure", metavar="TAG",
                               help="built-in scenario, e.g. 6b")
    p_client_eval.add_argument("--soc", metavar="FILE",
                               help="SoC spec JSON")
    p_client_eval.add_argument("--workload", metavar="FILE",
                               help="workload JSON")
    p_client_eval.add_argument(
        "--variant", choices=[v for v in VARIANT_CHOICES if v != "phases"],
        default=None, help="evaluate a model variant",
    )
    p_client_eval.add_argument(
        "--variant-config", dest="variant_config", metavar="JSON|FILE",
        default=None, help="variant structure (inline JSON or a file)",
    )
    p_client_eval.add_argument(
        "--deadline-s", dest="deadline_s", type=float, default=None,
        metavar="S", help="request deadline budget",
    )
    p_client_eval.set_defaults(handler=_cmd_client_eval)
    p_client_health = client_sub.add_parser(
        "health", help="print the server's /healthz document"
    )
    p_client_health.add_argument("--url", default="http://127.0.0.1:8080",
                                 help="server base URL")
    p_client_health.set_defaults(handler=_cmd_client_health)
    p_client_loadgen = client_sub.add_parser(
        "loadgen",
        help="concurrent load + chaos harness against a live server",
    )
    p_client_loadgen.add_argument("--url", default="http://127.0.0.1:8080",
                                  help="server base URL")
    p_client_loadgen.add_argument(
        "--clients", type=int, default=8,
        help="concurrent client threads",
    )
    p_client_loadgen.add_argument(
        "--requests", type=int, default=25,
        help="requests per client",
    )
    p_client_loadgen.add_argument(
        "--fault-plan", dest="fault_plan", metavar="NAME", default=None,
        choices=sorted(FAULT_PLANS),
        help="deterministically mix in poison requests from a named "
             "plan: " + ", ".join(sorted(FAULT_PLANS)),
    )
    p_client_loadgen.add_argument(
        "--seed", type=int, default=0,
        help="poison-request draw seed (reproducible mixes)",
    )
    p_client_loadgen.add_argument(
        "--history", metavar="FILE", default=None,
        help="append p50/p99/rps SLO records to this bench-history "
             "JSONL file",
    )
    p_client_loadgen.set_defaults(handler=_cmd_client_loadgen)

    p_slo = sub.add_parser(
        "slo", help="error-budget burn-rate checks and the live serve tab"
    )
    slo_sub = p_slo.add_subparsers(dest="slo_command", required=True)
    p_slo_check = slo_sub.add_parser(
        "check",
        help="evaluate SLO burn rates; nonzero exit on a page-severity "
             "burn",
    )
    p_slo_check.add_argument(
        "--url", default=None,
        help="live server base URL to scrape GET /slo from",
    )
    p_slo_check.add_argument(
        "--history", metavar="FILE", default=None,
        help="bench-history JSONL with serve.loadgen.p99 records",
    )
    p_slo_check.add_argument(
        "--alerts", metavar="FILE", default="ALERTS.jsonl",
        help="append structured alerts here on breach "
             "(default ALERTS.jsonl)",
    )
    p_slo_check.add_argument(
        "--availability", type=float, default=0.999,
        help="availability objective (default 0.999)",
    )
    p_slo_check.add_argument(
        "--latency-objective", dest="latency_objective", type=float,
        default=0.99, help="latency objective fraction (default 0.99)",
    )
    p_slo_check.add_argument(
        "--p99-threshold", dest="p99_threshold", type=float,
        default=0.25, metavar="S",
        help="latency SLO threshold in seconds (default 0.25)",
    )
    p_slo_check.set_defaults(handler=_cmd_slo_check)
    p_slo_dashboard = slo_sub.add_parser(
        "dashboard",
        help="scrape /metrics + /slo into a self-refreshing HTML page",
    )
    p_slo_dashboard.add_argument(
        "--url", default="http://127.0.0.1:8080", help="server base URL"
    )
    p_slo_dashboard.add_argument(
        "--out", metavar="FILE", default="serve-dashboard.html",
        help="output HTML file",
    )
    p_slo_dashboard.add_argument(
        "--refresh-s", dest="refresh_s", type=float, default=5.0,
        metavar="S", help="meta-refresh interval (default 5)",
    )
    p_slo_dashboard.set_defaults(handler=_cmd_slo_dashboard)
    return parser


def _configure_logging(args) -> None:
    level_name = getattr(args, "log_level", None)
    verbosity = getattr(args, "verbose", 0)
    if level_name:
        level = LOG_LEVELS[level_name]
    elif verbosity >= 2:
        level = logging.DEBUG
    elif verbosity == 1:
        level = logging.INFO
    else:
        return
    logging.basicConfig(
        level=level,
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
        force=True,
    )


def main(argv=None) -> int:
    """Console entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args)
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if trace_path:
        tracer = obs.enable_tracing()
        tracer.reset()  # one CLI run = one trace file
    _log.info("dispatching %r", getattr(args, "command", None))
    try:
        return args.handler(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return exit_code_for(err)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, the
        # Unix way.  Detach stdout so the interpreter's shutdown flush
        # does not raise again.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
    finally:
        if trace_path:
            obs.disable_tracing()
            try:
                events = obs.write_trace_jsonl(trace_path)
            except OSError as err:
                print(f"error: cannot write trace file: {err}",
                      file=sys.stderr)
            else:
                print(f"wrote {events} trace events to {trace_path}",
                      file=sys.stderr)
        if metrics_path:
            try:
                obs.write_metrics_json(metrics_path)
            except OSError as err:
                print(f"error: cannot write metrics file: {err}",
                      file=sys.stderr)
            else:
                print(f"wrote metrics snapshot to {metrics_path}",
                      file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
