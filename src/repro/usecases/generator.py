"""Synthetic usecase and workload generators.

Real usecase parameters (``fi``, ``Ii``) are scarce pre-silicon — the
whole reason Gables exists.  These seeded generators produce plausible
random workloads and dataflows for stress-testing designs, Monte-Carlo
robustness studies ("does this SoC survive usecases *near* the ones we
planned for?"), and the library's own property tests.
"""

from __future__ import annotations

import math

import numpy as np

from .._validation import require_finite_positive
from ..core.params import Workload
from ..errors import SpecError
from .dataflow import WORLD, Dataflow, Flow, Stage


def random_workload(
    n_ips: int,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    sparsity: float = 0.5,
    intensity_log2_range: tuple = (-4, 10),
    name: str = "random-usecase",
) -> Workload:
    """A random usecase over ``n_ips`` IPs.

    Work fractions are Dirichlet-distributed over a random subset of
    IPs (each IP is idle with probability ``sparsity`` — real usecases
    exercise a subset, per Table I); intensities are log-uniform over
    the given power-of-two range.
    """
    if n_ips < 1:
        raise SpecError(f"n_ips must be >= 1, got {n_ips}")
    if not 0 <= sparsity < 1:
        raise SpecError(f"sparsity must lie in [0, 1), got {sparsity!r}")
    lo, hi = intensity_log2_range
    if lo >= hi:
        raise SpecError("intensity_log2_range must be (lo, hi) with lo < hi")
    rng = rng or np.random.default_rng(seed)

    active = rng.random(n_ips) >= sparsity
    if not active.any():
        active[int(rng.integers(n_ips))] = True
    weights = np.zeros(n_ips)
    weights[active] = rng.dirichlet(np.ones(int(active.sum())))
    intensities = 2.0 ** rng.uniform(lo, hi, size=n_ips)
    # Exact normalization (dirichlet sums to 1 up to fp error).
    weights = weights / weights.sum()
    return Workload(
        fractions=tuple(float(w) for w in weights),
        intensities=tuple(float(i) for i in intensities),
        name=name,
    )


def perturbed_workload(
    workload: Workload,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    fraction_jitter: float = 0.2,
    intensity_jitter: float = 0.5,
    name: str | None = None,
) -> Workload:
    """A usecase *near* ``workload`` — for robustness studies.

    Fractions get multiplicative lognormal jitter then renormalize;
    intensities get lognormal jitter in log2 space.  Idle IPs stay
    idle (the IP set is a structural property of the usecase).
    """
    require_finite_positive(fraction_jitter + 1e-12, "fraction_jitter")
    require_finite_positive(intensity_jitter + 1e-12, "intensity_jitter")
    rng = rng or np.random.default_rng(seed)
    weights = []
    for fraction in workload.fractions:
        if fraction == 0:
            weights.append(0.0)
        else:
            weights.append(fraction * float(rng.lognormal(0, fraction_jitter)))
    total = math.fsum(weights)
    intensities = []
    for intensity in workload.intensities:
        if math.isinf(intensity):
            intensities.append(intensity)
        else:
            intensities.append(
                intensity * float(rng.lognormal(0, intensity_jitter))
            )
    return Workload(
        fractions=tuple(w / total for w in weights),
        intensities=tuple(intensities),
        name=name or f"{workload.name}~perturbed",
    )


def random_dataflow(
    ip_names,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    n_stages: int = 6,
    ops_scale: float = 1e9,
    bytes_scale: float = 4e6,
    name: str = "random-dataflow",
) -> Dataflow:
    """A random pipeline-shaped dataflow over a subset of ``ip_names``.

    Stages form a chain (with occasional skip edges) from a WORLD
    source to a WORLD sink — the sensor-to-display shape of Section
    II-B — with log-normal ops and bytes per item.
    """
    ip_names = tuple(ip_names)
    if not ip_names:
        raise SpecError("need at least one IP name")
    if n_stages < 1:
        raise SpecError(f"n_stages must be >= 1, got {n_stages}")
    rng = rng or np.random.default_rng(seed)

    stages = []
    for index in range(n_stages):
        ip = ip_names[int(rng.integers(len(ip_names)))]
        ops = float(rng.lognormal(0, 0.8)) * ops_scale
        stages.append(Stage(f"stage{index}", ip, ops_per_item=ops))

    flows = [Flow(WORLD, "stage0", float(rng.lognormal(0, 0.5)) * bytes_scale)]
    for index in range(n_stages - 1):
        flows.append(
            Flow(
                f"stage{index}",
                f"stage{index + 1}",
                float(rng.lognormal(0, 0.5)) * bytes_scale,
            )
        )
        # Occasional skip edge two stages ahead (reference frames,
        # side-band metadata).
        if index + 2 < n_stages and rng.random() < 0.3:
            flows.append(
                Flow(
                    f"stage{index}",
                    f"stage{index + 2}",
                    float(rng.lognormal(0, 0.5)) * bytes_scale * 0.25,
                )
            )
    flows.append(
        Flow(f"stage{n_stages - 1}", WORLD,
             float(rng.lognormal(0, 0.5)) * bytes_scale)
    )
    return Dataflow(name, stages=tuple(stages), flows=tuple(flows))


def monte_carlo_attainable(
    soc,
    workload: Workload,
    samples: int = 100,
    seed: int = 0,
    fraction_jitter: float = 0.2,
    intensity_jitter: float = 0.5,
) -> dict:
    """Robustness study: attainable performance under usecase jitter.

    Evaluates ``samples`` perturbations of ``workload`` on ``soc`` and
    returns summary statistics plus the worst-case bottleneck census —
    how often each component binds across the neighbourhood.
    """
    from ..core.gables import evaluate

    if samples < 1:
        raise SpecError(f"samples must be >= 1, got {samples}")
    rng = np.random.default_rng(seed)
    values = []
    census: dict = {}
    for _ in range(samples):
        candidate = perturbed_workload(
            workload, rng=rng,
            fraction_jitter=fraction_jitter,
            intensity_jitter=intensity_jitter,
        )
        result = evaluate(soc, candidate)
        values.append(result.attainable)
        census[result.bottleneck] = census.get(result.bottleneck, 0) + 1
    array = np.array(values)
    return {
        "mean": float(array.mean()),
        "p5": float(np.percentile(array, 5)),
        "p50": float(np.percentile(array, 50)),
        "p95": float(np.percentile(array, 95)),
        "min": float(array.min()),
        "max": float(array.max()),
        "bottleneck_census": census,
    }
