"""The paper's Figure 4 usecase: streaming Internet content over WiFi.

The flow, per the paper: IP packets arrive over WiFi into an insecure
user-level buffer; the CPU (or crypto block) splits and decrypts audio
and video streams into secure memory; the video decoder generates frame
buffers consumed by the display controller; the audio DSP DMAs its
stream into local SRAM and plays it out.  The CPU additionally handles
the control-flow coordination the paper calls out as the third usecase
bottleneck.

IP names match :func:`repro.soc.presets.generic_soc`.
"""

from __future__ import annotations

from ..units import GIGA, KILO, MEGA
from .dataflow import WORLD, Dataflow, Flow, Stage
from .framemath import FrameSpec


def wifi_streaming(
    frame: FrameSpec | None = None,
    bitrate_bytes_per_item: float = 2.5 * MEGA,
) -> Dataflow:
    """Build the WiFi streaming dataflow (one item = one video frame).

    Parameters
    ----------
    frame:
        Decoded frame geometry (default 1080p YUV420).
    bitrate_bytes_per_item:
        Compressed stream bytes per frame (default ~2.5 MB/s at 30 FPS
        quality, i.e. ~83 KB/frame scaled up for bursts).
    """
    frame = frame or FrameSpec.named("1080p")
    decoded = frame.bytes_per_frame
    compressed = bitrate_bytes_per_item / 30.0  # per frame at 30 FPS
    audio = 8 * KILO
    return Dataflow(
        "WiFi streaming",
        stages=(
            Stage("wifi-rx", "WiFi", ops_per_item=0.005 * GIGA),
            Stage("demux-decrypt", "Crypto", ops_per_item=0.01 * GIGA),
            Stage("stream-control", "AP", ops_per_item=0.03 * GIGA),
            Stage("video-decode", "VDEC", ops_per_item=0.15 * GIGA),
            Stage("audio-play", "Audio", ops_per_item=0.002 * GIGA),
            Stage("scanout", "Display", ops_per_item=0.02 * GIGA),
        ),
        flows=(
            Flow(WORLD, "wifi-rx", compressed + audio),
            Flow("wifi-rx", "demux-decrypt", compressed + audio),
            Flow("demux-decrypt", "video-decode", compressed),
            Flow("demux-decrypt", "audio-play", audio),
            Flow("demux-decrypt", "stream-control", 64 * KILO),
            Flow("video-decode", "scanout", decoded),
            Flow("scanout", WORLD, decoded),
            Flow("audio-play", WORLD, audio),
        ),
    )
