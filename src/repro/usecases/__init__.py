"""Usecase substrate: dataflow graphs, the Table I catalog, frame math.

Usecases are DAGs of IP-pinned stages connected by DRAM-buffered flows
(:class:`Dataflow`); they lower to Gables workloads via
:meth:`Dataflow.to_workload` and answer frame-rate questions via
:meth:`Dataflow.max_item_rate`.
"""

from .catalog import (
    TABLE_I,
    TABLE_I_COLUMNS,
    USECASES,
    activity_matrix,
    google_lens,
    hdr_plus,
    video_capture,
    video_capture_hfr,
    video_playback_ui,
)
from .dataflow import WORLD, Dataflow, DataflowSummary, Flow, Stage
from .generator import (
    monte_carlo_attainable,
    perturbed_workload,
    random_dataflow,
    random_workload,
)
from .framemath import (
    BYTES_PER_PIXEL,
    RESOLUTIONS,
    FrameSpec,
    hfr_capture_traffic,
    saturation_fps,
    stream_bandwidth,
)
from .mapping import (
    pipeline_speedup,
    single_item_latency,
    single_item_phases,
    stage_traffic,
    steady_state_period,
)
from .streaming import wifi_streaming

__all__ = [
    "BYTES_PER_PIXEL",
    "Dataflow",
    "DataflowSummary",
    "Flow",
    "FrameSpec",
    "RESOLUTIONS",
    "Stage",
    "TABLE_I",
    "TABLE_I_COLUMNS",
    "USECASES",
    "WORLD",
    "activity_matrix",
    "google_lens",
    "hdr_plus",
    "hfr_capture_traffic",
    "monte_carlo_attainable",
    "perturbed_workload",
    "pipeline_speedup",
    "single_item_latency",
    "single_item_phases",
    "stage_traffic",
    "steady_state_period",
    "random_dataflow",
    "random_workload",
    "saturation_fps",
    "stream_bandwidth",
    "video_capture",
    "video_capture_hfr",
    "video_playback_ui",
    "wifi_streaming",
]
