"""The paper's Table I usecases as concrete dataflows.

Table I lists five camera-application usecases and which IPs each
exercises *concurrently* — the observation that justifies base Gables'
concurrent-work assumption.  The table reports only the activity
matrix; the per-stage ops/bytes here are engineering estimates chosen
so the derived Gables workloads exhibit the paper's qualitative
behaviour (camera pipelines at high frame rates push DRAM bandwidth).

IP names match :func:`repro.soc.presets.generic_soc`.
"""

from __future__ import annotations

from ..units import GIGA, MEGA
from .dataflow import WORLD, Dataflow, Flow, Stage
from .framemath import FrameSpec

#: Activity matrix exactly as in Table I: usecase -> IPs with an "X".
#: (Column assignment reconstructed from the paper's text; each row
#: keeps the paper's property that >= half the listed IPs are active.)
TABLE_I = {
    "HDR+": ("AP", "Display", "GPU", "ISP", "IPU", "DSP"),
    "Videocapture": ("AP", "Display", "ISP", "VENC", "DSP"),
    "Videocapture (HFR)": ("AP", "Display", "ISP", "VENC", "DSP"),
    "Videoplayback UI": ("AP", "Display", "GPU", "VDEC", "DSP"),
    "Google Lens": ("AP", "Display", "ISP", "IPU", "DSP"),
}

#: The full IP column set of Table I.
TABLE_I_COLUMNS = (
    "AP", "Display", "G2DS", "GPU", "ISP", "JPEG", "IPU", "VDEC", "VENC", "DSP",
)

_FRAME_12MP = FrameSpec.named("12MP")
_FRAME_4K = FrameSpec.named("4K")
_FRAME_1080 = FrameSpec.named("1080p")


def hdr_plus() -> Dataflow:
    """HDR+ burst photography: ISP -> IPU align/merge -> GPU tonemap.

    The IPU does the heavy lifting (the Pixel Visual Core story from
    Section II-A): merging an N-frame burst at high intensity thanks to
    its large local memory; the AP orchestrates; the display previews.
    """
    burst = 6  # frames merged per shot
    frame = _FRAME_12MP.bytes_per_frame
    return Dataflow(
        "HDR+",
        stages=(
            Stage("sensor-capture", "ISP", ops_per_item=burst * 0.8 * GIGA),
            Stage("align-merge", "IPU", ops_per_item=18 * GIGA),
            Stage("tonemap", "GPU", ops_per_item=4 * GIGA),
            Stage("denoise", "DSP", ops_per_item=1.5 * GIGA),
            Stage("control", "AP", ops_per_item=0.3 * GIGA),
            Stage("preview", "Display", ops_per_item=0.05 * GIGA),
        ),
        flows=(
            Flow(WORLD, "sensor-capture", burst * frame),
            Flow("sensor-capture", "align-merge", burst * frame),
            Flow("align-merge", "tonemap", frame),
            Flow("tonemap", "denoise", frame),
            Flow("denoise", "control", frame),
            Flow("control", "preview", _FRAME_1080.bytes_per_frame),
            Flow("preview", WORLD, _FRAME_1080.bytes_per_frame),
        ),
    )


def _video_capture(name: str, frame: FrameSpec, reference_frames: int) -> Dataflow:
    """Shared shape of the two video-capture usecases (one item = frame)."""
    nbytes = frame.bytes_per_frame
    flows = [
        Flow(WORLD, "isp-pipeline", nbytes),
        Flow("isp-pipeline", "stabilize", nbytes),
        Flow("stabilize", "encode", nbytes),
        Flow("stabilize", "preview", _FRAME_1080.bytes_per_frame),
        Flow("encode", "control", 0.1 * nbytes),  # compressed bitstream
        Flow("control", WORLD, 0.1 * nbytes),
        Flow("preview", WORLD, _FRAME_1080.bytes_per_frame),
    ]
    if reference_frames:
        # WNR/TNR reference reads: previously-written frames re-fetched
        # from DRAM by the ISP.  One DRAM crossing each (their writes
        # were counted when those frames were produced), modeled as an
        # external flow into the ISP stage.
        flows.insert(1, Flow(WORLD, "isp-pipeline", reference_frames * nbytes))
    return Dataflow(
        name,
        stages=(
            Stage("isp-pipeline", "ISP", ops_per_item=0.20 * GIGA),
            Stage("stabilize", "DSP", ops_per_item=0.08 * GIGA),
            Stage("encode", "VENC", ops_per_item=0.12 * GIGA),
            Stage("control", "AP", ops_per_item=0.05 * GIGA),
            Stage("preview", "Display", ops_per_item=0.02 * GIGA),
        ),
        flows=tuple(flows),
    )


def video_capture() -> Dataflow:
    """4K30 video recording: ISP -> DSP stabilization -> encoder."""
    return _video_capture("Videocapture", _FRAME_4K, reference_frames=0)


def video_capture_hfr() -> Dataflow:
    """4K240 high-frame-rate capture — the Section II-B bandwidth story.

    Adds the temporal-noise-reduction reference traffic (the paper's
    "as many as five reference frames"); at 240 items/s the resulting
    DRAM demand exceeds a mobile SoC's ~30 GB/s, so Gables reports the
    memory interface as the binding component.
    """
    return _video_capture("Videocapture (HFR)", _FRAME_4K, reference_frames=5)


def video_playback_ui() -> Dataflow:
    """Video playback with UI: decoder + GPU-composited interface."""
    nbytes = _FRAME_4K.bytes_per_frame
    ui = _FRAME_1080.bytes_per_frame
    return Dataflow(
        "Videoplayback UI",
        stages=(
            Stage("demux-decrypt", "AP", ops_per_item=0.05 * GIGA),
            Stage("decode", "VDEC", ops_per_item=0.15 * GIGA),
            Stage("audio", "DSP", ops_per_item=0.01 * GIGA),
            Stage("ui-compose", "GPU", ops_per_item=0.10 * GIGA),
            Stage("scanout", "Display", ops_per_item=0.02 * GIGA),
        ),
        flows=(
            Flow(WORLD, "demux-decrypt", 0.1 * nbytes),  # compressed stream
            Flow("demux-decrypt", "decode", 0.1 * nbytes),
            Flow("demux-decrypt", "audio", 0.2 * MEGA),
            Flow("decode", "ui-compose", nbytes),
            Flow("ui-compose", "scanout", nbytes + ui),
            Flow("scanout", WORLD, nbytes + ui),
            Flow("audio", WORLD, 0.2 * MEGA),
        ),
    )


def google_lens() -> Dataflow:
    """Google Lens: camera frames through on-device vision inference."""
    frame = _FRAME_1080.bytes_per_frame
    return Dataflow(
        "Google Lens",
        stages=(
            Stage("camera", "ISP", ops_per_item=1.0 * GIGA),
            Stage("feature-extract", "IPU", ops_per_item=8 * GIGA),
            Stage("inference", "DSP", ops_per_item=4 * GIGA),
            Stage("app-logic", "AP", ops_per_item=0.5 * GIGA),
            Stage("overlay", "Display", ops_per_item=0.05 * GIGA),
        ),
        flows=(
            Flow(WORLD, "camera", frame),
            Flow("camera", "feature-extract", frame),
            Flow("feature-extract", "inference", 0.25 * frame),
            Flow("inference", "app-logic", 1 * MEGA),
            Flow("app-logic", "overlay", frame),
            Flow("overlay", WORLD, frame),
        ),
    )


#: All Table I usecases, in the paper's row order.
USECASES = {
    "HDR+": hdr_plus,
    "Videocapture": video_capture,
    "Videocapture (HFR)": video_capture_hfr,
    "Videoplayback UI": video_playback_ui,
    "Google Lens": google_lens,
}


def activity_matrix() -> dict:
    """Recompute Table I from the dataflows: usecase -> active IP tuple.

    The test suite checks this against :data:`TABLE_I`, tying the
    concrete dataflows to the paper's published matrix.
    """
    matrix = {}
    for name, factory in USECASES.items():
        active = factory().active_ips
        # Normalize to Table I column order.
        matrix[name] = tuple(ip for ip in TABLE_I_COLUMNS if ip in active)
    return matrix
