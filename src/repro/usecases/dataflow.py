"""Dataflow usecases: stages on IPs connected by DRAM-buffered flows.

The paper describes usecases as "application-level data flows from
sensors to the processing engines" (Section II-B, Figure 4), with
inter-IP communication buffered in DRAM.  This module models exactly
that: a DAG of :class:`Stage` nodes (each pinned to an IP and doing
some compute per item) connected by :class:`Flow` edges (bytes per item
through a DRAM buffer), plus the lowering that turns a dataflow into
Gables ``(fi, Ii)`` inputs:

- ``fi``   — IP[i]'s share of the total ops per item;
- ``Ii``   — IP[i]'s ops per byte it moves: every flow edge incident
  to one of its stages crosses the IP's link once (written or read
  through the DRAM buffer), so ``Ii = ops_i / bytes_i``.

Because a DRAM buffer is written by the producer *and* read by the
consumer, the flow's bytes appear in both endpoint IPs' traffic — and
therefore twice at the DRAM interface, matching Gables' accounting
where ``T_memory`` sums every IP's ``Di``.

External inputs (a sensor, the radio) and outputs (panel, speaker) are
edges whose producer/consumer stage is the reserved ``WORLD`` node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from .._validation import require_finite_positive, require_nonnegative
from ..core.params import Workload
from ..errors import SpecError, WorkloadError

#: Reserved endpoint for data entering/leaving the SoC.
WORLD = "<world>"


@dataclass(frozen=True)
class Stage:
    """One processing stage, pinned to an IP.

    Parameters
    ----------
    name:
        Unique stage name within the dataflow.
    ip:
        The IP (instance name or catalog kind) executing this stage.
    ops_per_item:
        Compute operations per item (frame, packet, tile).  Zero is
        allowed for pure-DMA stages (their traffic still counts).
    """

    name: str
    ip: str
    ops_per_item: float

    def __post_init__(self) -> None:
        if not self.name or self.name == WORLD:
            raise SpecError(f"invalid stage name {self.name!r}")
        if not self.ip:
            raise SpecError(f"stage {self.name!r} needs an IP name")
        require_nonnegative(self.ops_per_item, f"stage {self.name!r} ops_per_item")


@dataclass(frozen=True)
class Flow:
    """One producer->consumer data movement per item.

    ``via_memory=True`` (the default, and base Gables' assumption)
    means the data crosses DRAM: it counts against both endpoint IPs'
    links and twice against ``Bpeak``.  ``via_memory=False`` models a
    direct IP-to-IP path (e.g. an ISP->IPU line buffer) and charges
    both links but not DRAM — usable with the interconnect extension.
    """

    producer: str
    consumer: str
    bytes_per_item: float
    via_memory: bool = True

    def __post_init__(self) -> None:
        require_finite_positive(
            self.bytes_per_item, f"flow {self.producer}->{self.consumer} bytes"
        )
        if self.producer == self.consumer:
            raise SpecError(f"flow cannot self-loop on {self.producer!r}")


class Dataflow:
    """A validated usecase dataflow DAG."""

    def __init__(self, name: str, stages, flows) -> None:
        if not name:
            raise SpecError("Dataflow name must be non-empty")
        self.name = name
        self.stages = tuple(stages)
        self.flows = tuple(flows)
        if not self.stages:
            raise SpecError(f"dataflow {name!r} needs at least one stage")
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise SpecError(f"dataflow {name!r} stage names must be unique")
        self._by_name = {stage.name: stage for stage in self.stages}
        for flow in self.flows:
            for endpoint in (flow.producer, flow.consumer):
                if endpoint != WORLD and endpoint not in self._by_name:
                    raise SpecError(
                        f"dataflow {name!r} flow references unknown stage "
                        f"{endpoint!r}"
                    )
        graph = self.graph()
        internal = graph.subgraph(n for n in graph if n != WORLD)
        if not nx.is_directed_acyclic_graph(internal):
            raise SpecError(f"dataflow {name!r} has a cycle among its stages")

    def graph(self) -> nx.DiGraph:
        """The dataflow as a digraph (stages + the WORLD node)."""
        graph = nx.DiGraph()
        for stage in self.stages:
            graph.add_node(stage.name, ip=stage.ip, ops=stage.ops_per_item)
        for flow in self.flows:
            graph.add_edge(
                flow.producer,
                flow.consumer,
                bytes=flow.bytes_per_item,
                via_memory=flow.via_memory,
            )
        return graph

    def stage(self, name: str) -> Stage:
        """Look up a stage by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SpecError(f"dataflow {self.name!r} has no stage {name!r}") from None

    @property
    def active_ips(self) -> tuple:
        """IPs touched by this usecase, in first-appearance order.

        This is one row of the paper's Table I.
        """
        seen: dict = {}
        for stage in self.stages:
            seen.setdefault(stage.ip, None)
        return tuple(seen)

    def total_ops_per_item(self) -> float:
        """Sum of compute across all stages, per item."""
        return math.fsum(stage.ops_per_item for stage in self.stages)

    def ops_by_ip(self) -> dict:
        """Per-IP ops per item."""
        ops: dict = {}
        for stage in self.stages:
            ops[stage.ip] = ops.get(stage.ip, 0.0) + stage.ops_per_item
        return ops

    def traffic_by_ip(self) -> dict:
        """Per-IP bytes moved over its link per item.

        Each flow charges its producer's IP and its consumer's IP once;
        a WORLD endpoint charges only the on-chip side.
        """
        traffic = {stage.ip: 0.0 for stage in self.stages}
        for flow in self.flows:
            for endpoint in (flow.producer, flow.consumer):
                if endpoint == WORLD:
                    continue
                traffic[self._by_name[endpoint].ip] += flow.bytes_per_item
        return traffic

    def dram_traffic_per_item(self) -> float:
        """Bytes crossing the DRAM interface per item.

        A via-memory flow is written then read (2x); a WORLD-endpoint
        via-memory flow crosses once (e.g. the radio DMA-ing packets
        into a buffer that an IP then reads counts the read only — the
        inbound DMA is charged to the producing IP if modeled as a
        stage).  Direct flows contribute nothing.
        """
        total = 0.0
        for flow in self.flows:
            if not flow.via_memory:
                continue
            crossings = 2
            if flow.producer == WORLD or flow.consumer == WORLD:
                crossings = 1
            total += crossings * flow.bytes_per_item
        return total

    def to_workload(self, ip_order) -> Workload:
        """Lower to Gables ``(fi, Ii)`` for the IPs in ``ip_order``.

        ``ip_order`` is the SoC's IP name tuple; IPs this dataflow does
        not touch get ``fi = 0``.  Raises
        :class:`~repro.errors.WorkloadError` if the dataflow touches an
        IP missing from ``ip_order`` or does no compute at all.
        """
        ip_order = tuple(ip_order)
        ops = self.ops_by_ip()
        traffic = self.traffic_by_ip()
        missing = set(ops) - set(ip_order)
        if missing:
            raise WorkloadError(
                f"dataflow {self.name!r} uses IPs absent from the SoC: "
                f"{sorted(missing)!r}"
            )
        total_ops = self.total_ops_per_item()
        if total_ops <= 0:
            raise WorkloadError(
                f"dataflow {self.name!r} performs no compute; cannot form "
                "work fractions"
            )
        fractions = []
        intensities = []
        for ip in ip_order:
            ip_ops = ops.get(ip, 0.0)
            ip_bytes = traffic.get(ip, 0.0)
            fractions.append(ip_ops / total_ops)
            if ip_bytes == 0:
                intensities.append(math.inf)
            elif ip_ops == 0:
                # Pure-DMA IP: no compute but real traffic.  Gables
                # cannot charge traffic to an IP with f=0, so surface
                # the smallest meaningful intensity for visibility; the
                # fraction stays 0 and callers may model such stages as
                # tiny compute instead.
                intensities.append(1.0)
            else:
                intensities.append(ip_ops / ip_bytes)
        return Workload(
            fractions=tuple(fractions),
            intensities=tuple(intensities),
            name=self.name,
        )

    def max_item_rate(self, soc_spec, evaluate_fn=None) -> float:
        """Upper bound on items/s (frames/s) for this usecase on a SoC.

        ``P_attainable`` is ops/s; dividing by ops-per-item converts the
        Gables bound into the frame-rate bound architects care about.
        """
        from ..core.gables import evaluate as default_evaluate

        evaluate_fn = evaluate_fn or default_evaluate
        workload = self.to_workload(soc_spec.ip_names)
        result = evaluate_fn(soc_spec, workload)
        return result.attainable / self.total_ops_per_item()


@dataclass(frozen=True)
class DataflowSummary:
    """Headline numbers for reports and the Table I harness."""

    name: str
    n_stages: int
    active_ips: tuple
    total_ops_per_item: float
    dram_bytes_per_item: float

    @classmethod
    def of(cls, dataflow: Dataflow) -> "DataflowSummary":
        """Summarize a dataflow."""
        return cls(
            name=dataflow.name,
            n_stages=len(dataflow.stages),
            active_ips=dataflow.active_ips,
            total_ops_per_item=dataflow.total_ops_per_item(),
            dram_bytes_per_item=dataflow.dram_traffic_per_item(),
        )
