"""Frame-format arithmetic for camera/video usecases (paper Sec. II-B).

The paper's worked example: a 4K frame is 3840x2160 pixels; YUV420
encodes 6 bytes per 4 pixels (1.5 bytes/pixel), so a frame is ~12 MB,
and recording at 240 FPS while the ISP tracks five reference frames
pushes a mobile SoC's ~30 GB/s DRAM bandwidth to the bottleneck.  This
module provides the arithmetic behind that example and behind the
dataflow usecases' byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import require_finite_positive
from ..errors import SpecError

#: Bytes per pixel for common interchange formats.
BYTES_PER_PIXEL = {
    "YUV420": 1.5,  # 6 bytes per 4 pixels, the paper's example
    "YUV422": 2.0,
    "YUV444": 3.0,
    "RGB888": 3.0,
    "RGBA8888": 4.0,
    "RAW10": 1.25,
    "RAW16": 2.0,
}

#: Common resolutions, (width, height).
RESOLUTIONS = {
    "1080p": (1920, 1080),
    "1440p": (2560, 1440),
    "4K": (3840, 2160),
    "8K": (7680, 4320),
    "12MP": (4000, 3000),
}


@dataclass(frozen=True)
class FrameSpec:
    """A video/camera frame: geometry plus pixel format."""

    width: int
    height: int
    pixel_format: str = "YUV420"

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise SpecError(
                f"frame dimensions must be positive, got {self.width}x{self.height}"
            )
        if self.pixel_format not in BYTES_PER_PIXEL:
            raise SpecError(
                f"unknown pixel format {self.pixel_format!r}; "
                f"known: {sorted(BYTES_PER_PIXEL)}"
            )

    @property
    def pixels(self) -> int:
        """Pixel count per frame."""
        return self.width * self.height

    @property
    def bytes_per_frame(self) -> float:
        """Frame size in bytes (paper: 4K YUV420 ~ 12.4 MB)."""
        return self.pixels * BYTES_PER_PIXEL[self.pixel_format]

    @classmethod
    def named(cls, resolution: str, pixel_format: str = "YUV420") -> "FrameSpec":
        """Build from a named resolution, e.g. ``FrameSpec.named("4K")``."""
        if resolution not in RESOLUTIONS:
            raise SpecError(
                f"unknown resolution {resolution!r}; known: {sorted(RESOLUTIONS)}"
            )
        width, height = RESOLUTIONS[resolution]
        return cls(width, height, pixel_format)


def stream_bandwidth(frame: FrameSpec, fps: float, streams: float = 1.0) -> float:
    """Bytes/s for ``streams`` copies of the frame moving at ``fps``.

    One "stream" is one traversal of the frame through DRAM; a
    processing stage that reads and writes a frame per output frame
    counts as two streams.
    """
    require_finite_positive(fps, "fps")
    require_finite_positive(streams, "streams")
    return frame.bytes_per_frame * fps * streams


def hfr_capture_traffic(
    frame: FrameSpec,
    fps: float,
    reference_frames: int = 5,
    stages: int = 2,
) -> float:
    """DRAM traffic (bytes/s) of the paper's HFR camera example.

    Each captured frame is written by the sensor path, then each noise-
    reduction stage (WNR, TNR, ...) reads it plus ``reference_frames``
    references and writes a result.  The paper's point: at 4K240 this
    alone approaches the SoC's whole ~30 GB/s budget.

    Parameters
    ----------
    frame, fps:
        Capture geometry and rate.
    reference_frames:
        References each temporal stage consults (paper: "as many as
        five").
    stages:
        Number of full-frame processing stages between sensor and
        encoder (paper names WNR and TNR).
    """
    if reference_frames < 0:
        raise SpecError(f"reference_frames must be >= 0, got {reference_frames}")
    if stages < 1:
        raise SpecError(f"stages must be >= 1, got {stages}")
    # Sensor write + per-stage (read input + read refs + write output).
    streams = 1 + stages * (1 + reference_frames + 1)
    return stream_bandwidth(frame, fps, streams)


def saturation_fps(
    frame: FrameSpec,
    memory_bandwidth: float,
    reference_frames: int = 5,
    stages: int = 2,
) -> float:
    """Frame rate at which HFR capture alone saturates DRAM bandwidth."""
    require_finite_positive(memory_bandwidth, "memory_bandwidth")
    per_frame = hfr_capture_traffic(frame, fps=1.0,
                                    reference_frames=reference_frames,
                                    stages=stages)
    return memory_bandwidth / per_frame
