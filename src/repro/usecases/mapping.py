"""Mapping dataflows onto the model's two execution regimes.

A usecase dataflow can run two ways, and Gables models both:

- **steady state** — the pipeline is full and every stage processes a
  different item concurrently.  This is base Gables
  (:meth:`~repro.usecases.dataflow.Dataflow.to_workload`) and governs
  sustained frame rate.
- **single item** — one item traverses the stages in dependency order
  with nothing else in flight.  This is the phased/serialized regime
  (Section V-C) and governs *latency*: shutter-to-shot for HDR+, tap-
  to-answer for Lens.

The two answers differ by up to the pipeline depth; comparing them is
how an architect reads pipeline-fill cost off the model.
"""

from __future__ import annotations

import networkx as nx

from ..core.extensions.phases import Phase, PhasedUsecase
from ..core.params import Workload
from ..core.variants import PhasedVariant, evaluate_variant
from ..errors import WorkloadError
from .dataflow import WORLD, Dataflow


def stage_traffic(dataflow: Dataflow) -> dict:
    """Bytes each *stage* moves over its IP's link per item."""
    traffic = {stage.name: 0.0 for stage in dataflow.stages}
    for flow in dataflow.flows:
        for endpoint in (flow.producer, flow.consumer):
            if endpoint != WORLD:
                traffic[endpoint] += flow.bytes_per_item
    return traffic


def single_item_phases(dataflow: Dataflow, ip_order) -> PhasedUsecase:
    """The dataflow as a serialized phase sequence (one stage per phase).

    Stages execute in topological order; each phase puts that stage's
    work on its IP at the stage's own operational intensity
    (``stage ops / stage bytes``).  Stages with zero compute are
    skipped (their traffic is charged to the adjacent compute stages'
    phases in the steady-state model; in the latency model a pure-DMA
    stage would need a latency term Gables does not define).
    """
    ip_order = tuple(ip_order)
    total_ops = dataflow.total_ops_per_item()
    if total_ops <= 0:
        raise WorkloadError(
            f"dataflow {dataflow.name!r} performs no compute"
        )
    traffic = stage_traffic(dataflow)
    graph = dataflow.graph()
    internal = graph.subgraph(n for n in graph if n != WORLD)
    order = list(nx.topological_sort(internal))

    phases = []
    for stage_name in order:
        stage = dataflow.stage(stage_name)
        if stage.ops_per_item == 0:
            continue
        if stage.ip not in ip_order:
            raise WorkloadError(
                f"dataflow {dataflow.name!r} uses IP {stage.ip!r} absent "
                "from the SoC"
            )
        index = ip_order.index(stage.ip)
        stage_bytes = traffic[stage_name]
        intensity = (
            float("inf") if stage_bytes == 0
            else stage.ops_per_item / stage_bytes
        )
        workload = Workload.single_ip(
            len(ip_order), index, intensity, name=stage_name
        )
        phases.append(
            Phase(
                work=stage.ops_per_item / total_ops,
                workload=workload,
                name=stage_name,
            )
        )
    if not phases:
        raise WorkloadError(
            f"dataflow {dataflow.name!r} has no compute stages"
        )
    return PhasedUsecase(phases=tuple(phases), name=dataflow.name)


def single_item_latency(soc, dataflow: Dataflow) -> float:
    """Seconds for one item to traverse the empty pipeline."""
    usecase = single_item_phases(dataflow, soc.ip_names)
    result = evaluate_variant(soc, None, PhasedVariant(usecase))
    return dataflow.total_ops_per_item() / result.attainable


def steady_state_period(soc, dataflow: Dataflow) -> float:
    """Seconds between completions once the pipeline is full."""
    rate = dataflow.max_item_rate(soc)
    return 1.0 / rate


def pipeline_speedup(soc, dataflow: Dataflow) -> float:
    """Latency over period: how much the full pipeline overlaps.

    1.0 means the dataflow gains nothing from pipelining (one stage
    dominates); values near the compute-stage count mean near-perfect
    overlap.  Always >= 1 up to numerical tolerance, by the concurrent
    >= serialized property.
    """
    return single_item_latency(soc, dataflow) / steady_state_period(
        soc, dataflow
    )
