"""Retry, timeout, backoff, and outlier rejection for noisy measurement.

The ERT methodology the paper adopts already assumes repetition ("we
repeatedly benchmark this kernel ... to seek the best achievable
performance"); this module adds the *failure* half of that story: what
to do when a sample drops out entirely, how long to keep trying, and
how to keep an anomalous sample from polluting the best-of reduction.

:class:`RetryPolicy` is a frozen value object; :func:`call_with_retry`
executes one measurement closure under a policy, and
:func:`reject_outliers_mad` trims a repeat set by median absolute
deviation before the pessimistic best-of reduction.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from ..errors import MeasurementError, SpecError
from ..obs.metrics import counter as _counter

_RETRIES = _counter("resilience.retries")
_RETRIES_EXHAUSTED = _counter("resilience.retries_exhausted")
_DEADLINE_EXCEEDED = _counter("resilience.deadline_exceeded")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to fight for one measurement sample.

    Parameters
    ----------
    max_attempts:
        Total tries per sample (first attempt included).
    timeout_s:
        Wall-clock budget per sample across all of its attempts;
        ``inf`` (default) never times out.  Checked *between* attempts,
        so a single slow attempt is never interrupted mid-flight.
    deadline_s:
        Overall wall-clock budget for the whole :func:`call_with_retry`
        call, *including* backoff sleeps; ``inf`` (default) never
        expires.  Unlike ``timeout_s`` (which only cuts retries short)
        the deadline is also checked before the first attempt, so a
        caller-imposed budget that has already elapsed — a server
        request whose deadline passed while queued — fails fast with
        code ``MEASUREMENT_DEADLINE_EXCEEDED`` instead of burning one
        more attempt.
    backoff_base_s:
        Sleep before the first retry; 0 (default) retries immediately,
        which is right for a simulator and for tests.
    backoff_multiplier:
        Exponential growth of the backoff between successive retries.
    jitter:
        Relative randomization of each backoff delay (0.1 = up to
        ±10%), drawn from the caller-supplied RNG so retried sweeps
        stay reproducible.
    mad_threshold:
        Modified z-score cutoff for :func:`reject_outliers_mad`; 0
        disables outlier rejection.
    """

    max_attempts: int = 5
    timeout_s: float = math.inf
    deadline_s: float = math.inf
    backoff_base_s: float = 0.0
    backoff_multiplier: float = 2.0
    jitter: float = 0.0
    mad_threshold: float = 3.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SpecError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not self.timeout_s > 0:
            raise SpecError(f"timeout_s must be positive, got {self.timeout_s!r}")
        if not self.deadline_s > 0:
            raise SpecError(
                f"deadline_s must be positive, got {self.deadline_s!r}"
            )
        if self.backoff_base_s < 0:
            raise SpecError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s!r}"
            )
        if self.backoff_multiplier < 1.0:
            raise SpecError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier!r}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise SpecError(f"jitter must lie in [0, 1], got {self.jitter!r}")
        if self.mad_threshold < 0:
            raise SpecError(
                f"mad_threshold must be >= 0, got {self.mad_threshold!r}"
            )

    def backoff_delay(self, retry_index: int, rng=None) -> float:
        """Seconds to wait before retry ``retry_index`` (1-based)."""
        if retry_index < 1:
            raise SpecError(f"retry_index must be >= 1, got {retry_index}")
        delay = self.backoff_base_s * self.backoff_multiplier ** (retry_index - 1)
        if self.jitter > 0 and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


#: The policy the CLI and ``run_sweep`` reach for when asked to retry.
DEFAULT_RETRY_POLICY = RetryPolicy()


def call_with_retry(
    fn,
    policy: RetryPolicy,
    *,
    retryable: tuple = (MeasurementError,),
    rng=None,
    sleep=time.sleep,
    clock=time.monotonic,
    context: str = "measurement",
    deadline: float | None = None,
):
    """Run ``fn()`` under ``policy``; return its value or raise.

    Only ``retryable`` exceptions trigger a retry; anything else (a
    genuine :class:`~repro.errors.SimulationError`, a programming
    error) propagates immediately.  After the attempt or time budget is
    spent, raises :class:`MeasurementError` with code
    ``MEASUREMENT_RETRIES_EXHAUSTED`` (or ``MEASUREMENT_TIMEOUT``)
    chaining the last underlying failure.

    ``deadline`` is an optional *absolute* instant on ``clock``'s
    timeline by which the whole call must finish; it composes with the
    policy's own relative ``deadline_s`` (the earlier one wins).  A
    spent deadline — checked before the first attempt and between
    attempts — raises :class:`MeasurementError` with code
    ``MEASUREMENT_DEADLINE_EXCEEDED``, so a server-imposed request
    budget propagates through retried measurement work as a catalogued
    error instead of an over-budget success.
    """
    now = clock()
    timeout_at = None
    if math.isfinite(policy.timeout_s):
        timeout_at = now + policy.timeout_s
    if math.isfinite(policy.deadline_s):
        policy_deadline = now + policy.deadline_s
        deadline = (
            policy_deadline if deadline is None
            else min(deadline, policy_deadline)
        )

    def deadline_spent(attempts: int, err) -> None:
        if deadline is not None and clock() >= deadline:
            _DEADLINE_EXCEEDED.inc()
            raise MeasurementError(
                f"{context} exceeded its deadline after "
                f"{attempts} attempt(s): {err}",
                code="MEASUREMENT_DEADLINE_EXCEEDED",
            ) from err

    deadline_spent(0, None)
    last_error = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except retryable as err:
            last_error = err
            if attempt == policy.max_attempts:
                break
            deadline_spent(attempt, err)
            if timeout_at is not None and clock() >= timeout_at:
                _RETRIES_EXHAUSTED.inc()
                raise MeasurementError(
                    f"{context} exceeded its {policy.timeout_s:g}s budget "
                    f"after {attempt} attempt(s): {err}",
                    code="MEASUREMENT_TIMEOUT",
                ) from err
            _RETRIES.inc()
            delay = policy.backoff_delay(attempt, rng)
            if delay > 0:
                sleep(delay)
    _RETRIES_EXHAUSTED.inc()
    raise MeasurementError(
        f"{context} failed after {policy.max_attempts} attempt(s): "
        f"{last_error}",
        code="MEASUREMENT_RETRIES_EXHAUSTED",
    ) from last_error


def reject_outliers_mad(values, threshold: float = 3.5) -> list:
    """Drop values whose modified z-score exceeds ``threshold``.

    The modified z-score (Iglewicz & Hoaglin) is
    ``0.6745 * |x - median| / MAD``; values beyond the threshold on
    *either* side are rejected.  With a zero MAD (at least half the
    samples identical) or fewer than three samples, nothing is
    rejected — there is no robust scale to judge against.
    """
    values = list(values)
    if threshold <= 0 or len(values) < 3:
        return values
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        median = ordered[mid]
    else:
        median = 0.5 * (ordered[mid - 1] + ordered[mid])
    deviations = sorted(abs(v - median) for v in values)
    mid = len(deviations) // 2
    if len(deviations) % 2:
        mad = deviations[mid]
    else:
        mad = 0.5 * (deviations[mid - 1] + deviations[mid])
    if mad == 0:
        return values
    kept = [
        v for v in values if 0.6745 * abs(v - median) / mad <= threshold
    ]
    return kept or values
