"""Resilience: fault injection, retries, checkpoints, partial failure.

The measurement side of the Gables methodology is empirical and
therefore fallible — runs drop out, DRAM bandwidth wobbles under
contention, thermal governors interfere.  This package provides:

- :class:`FaultPlan` / :class:`FaultInjector` — seeded, deterministic
  fault injection the simulated SoC consults (``docs/robustness.md``).
- :class:`RetryPolicy` / :func:`call_with_retry` — bounded retry with
  exponential backoff, per-sample timeout budgets, and MAD outlier
  rejection for the ERT sweep driver.
- :class:`SweepCheckpoint` — JSONL checkpoint/resume for long sweeps.
- :class:`PointFailure` / ``on_error`` modes — the shared vocabulary
  for partial-failure batch and sweep evaluation.
"""

from .checkpoint import SweepCheckpoint, load_checkpoint, sample_key
from .faults import FAULT_PLANS, FaultInjector, FaultPlan, fault_plan
from .partial import (
    ON_ERROR_MODES,
    PointFailure,
    check_on_error,
    degraded_banner,
    point_failure,
    record_failure,
)
from .retry import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    call_with_retry,
    reject_outliers_mad,
)

__all__ = [
    "FAULT_PLANS",
    "FaultInjector",
    "FaultPlan",
    "fault_plan",
    "DEFAULT_RETRY_POLICY",
    "RetryPolicy",
    "call_with_retry",
    "reject_outliers_mad",
    "SweepCheckpoint",
    "load_checkpoint",
    "sample_key",
    "ON_ERROR_MODES",
    "PointFailure",
    "check_on_error",
    "degraded_banner",
    "point_failure",
    "record_failure",
]
