"""JSONL checkpoint/resume for long-running measurement sweeps.

A sweep writes one JSON line per completed sample; on resume the
checkpoint is replayed and already-measured samples are skipped.  The
file format is append-only so a crash mid-write loses at most the last
(partial, and therefore unparseable) line — :func:`load_checkpoint`
tolerates a trailing torn line but rejects corruption anywhere else.

Keys identify a sample by its sweep coordinates, which must be
JSON-stable; :func:`sample_key` canonicalizes them via ``repr`` of
floats so ``65536`` and ``65536.0`` do not alias.
"""

from __future__ import annotations

import json
import os

from ..errors import SerializationError
from ..io.jsonl import read_jsonl_tolerant
from ..obs.metrics import counter as _counter

_CHECKPOINT_HITS = _counter("resilience.checkpoint.hits")
_CHECKPOINT_WRITES = _counter("resilience.checkpoint.writes")

#: Format marker written into every record for forward compatibility.
SCHEMA = 1


def sample_key(**coords) -> str:
    """Canonical string key for a sweep sample's coordinates."""
    parts = []
    for name in sorted(coords):
        value = coords[name]
        if isinstance(value, float):
            value = repr(value)
        parts.append(f"{name}={value}")
    return ";".join(parts)


class SweepCheckpoint:
    """Append-only JSONL store of completed sweep samples.

    ``SweepCheckpoint(path)`` loads any existing records; ``get``
    answers "was this sample already measured?" and ``record`` appends
    a new one, flushing eagerly so progress survives a kill.  Pass
    ``path=None`` for a disabled, in-memory-only checkpoint (every
    sweep can then use the same code path).
    """

    def __init__(self, path=None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._records: dict = {}
        if self.path is not None and os.path.exists(self.path):
            self._records = load_checkpoint(self.path)

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str):
        """The stored payload for ``key``, or ``None`` if unseen."""
        record = self._records.get(key)
        if record is not None:
            _CHECKPOINT_HITS.inc()
        return record

    def record(self, key: str, payload: dict) -> None:
        """Store ``payload`` under ``key``, appending to the file."""
        self._records[key] = payload
        _CHECKPOINT_WRITES.inc()
        if self.path is None:
            return
        line = json.dumps(
            {"schema": SCHEMA, "key": key, "payload": payload},
            allow_nan=False,
            sort_keys=True,
        )
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()


def _decode_checkpoint_entry(record) -> tuple:
    """One parsed line -> ``(key, payload)``; reject keyless records."""
    if not isinstance(record, dict):
        raise TypeError("checkpoint record is not an object")
    return str(record["key"]), record.get("payload")


def load_checkpoint(path) -> dict:
    """Parse a checkpoint file into ``{key: payload}``.

    A torn final line (crash mid-append) is silently dropped; malformed
    JSON anywhere earlier, or a record missing its key, raises
    :class:`SerializationError` naming the file and line number (the
    shared :func:`repro.io.read_jsonl_tolerant` contract).
    """
    pairs = read_jsonl_tolerant(
        path,
        _decode_checkpoint_entry,
        error=SerializationError,
        label="checkpoint record",
    )
    return dict(pairs)
