"""Seeded, deterministic fault injection for the simulated SoC.

The paper's empirical methodology treats measurement as inherently
noisy: kernels are re-run "to seek the best achievable performance",
thermal governors are disabled in a controlled chamber, and shared
DRAM makes attained numbers contention-dependent.  This module lets the
simulator *reproduce* those failure modes on demand so the rest of the
stack (retry policies, partial-failure batch evaluation, degraded
reports) can prove it survives them.

A :class:`FaultPlan` is a frozen description of *which* faults can
occur and how severe they are; a :class:`FaultInjector` binds a plan to
a seeded RNG and is consulted by :class:`~repro.sim.platform.SimulatedSoC`
at fixed points of every run.  Because the consultation order is fixed
and the RNG is seeded, two sweeps with the same seed and plan produce
bitwise-identical results — determinism the test suite pins.

Fault taxonomy (see ``docs/robustness.md``):

- **dropout** — the measurement itself fails (the app crashed, the
  governor killed the run); surfaces as
  :class:`~repro.errors.MeasurementError` with code
  ``MEASUREMENT_DROPOUT``.
- **bandwidth degradation** — a transient episode of contended DRAM:
  the interface streams at ``1 - bandwidth_degradation`` of its clean
  rate for the duration of one run.
- **thermal throttle** — a forced governor episode scaling the
  sustained rate by ``thermal_throttle_factor`` even in the controlled
  chamber (a heat-soaked die from a previous tenant).
- **multiplicative noise** — one-sided interference shaving up to
  ``noise`` of the observed rate (the pessimistic-estimate framing:
  noise only ever *reduces* attained performance).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import MeasurementError, SpecError
from ..obs.metrics import counter as _counter

#: All injections, any kind (the headline ``--metrics`` number).
_FAULTS_INJECTED = _counter("resilience.faults.injected")
_FAULT_DROPOUTS = _counter("resilience.faults.dropouts")
_FAULT_BANDWIDTH = _counter("resilience.faults.bandwidth_episodes")
_FAULT_THERMAL = _counter("resilience.faults.thermal_episodes")
_FAULT_NOISE = _counter("resilience.faults.noise")


def _require_probability(value: float, name: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise SpecError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


@dataclass(frozen=True)
class FaultPlan:
    """Which failure modes the simulator may inject, and how hard.

    All probabilities are per consultation (one ``run_kernel`` or
    ``run_concurrent`` call draws each fault once).  The default plan
    injects nothing; :data:`FAULT_PLANS` names useful presets.
    """

    dropout_probability: float = 0.0
    bandwidth_degradation: float = 0.0
    bandwidth_episode_probability: float = 0.0
    thermal_throttle_factor: float = 1.0
    thermal_throttle_probability: float = 0.0
    noise: float = 0.0
    name: str = "custom"

    def __post_init__(self) -> None:
        _require_probability(self.dropout_probability, "dropout_probability")
        _require_probability(
            self.bandwidth_episode_probability, "bandwidth_episode_probability"
        )
        _require_probability(
            self.thermal_throttle_probability, "thermal_throttle_probability"
        )
        if not 0.0 <= self.bandwidth_degradation < 1.0:
            raise SpecError(
                f"bandwidth_degradation must lie in [0, 1), got "
                f"{self.bandwidth_degradation!r}"
            )
        if not 0.0 < self.thermal_throttle_factor <= 1.0:
            raise SpecError(
                f"thermal_throttle_factor must lie in (0, 1], got "
                f"{self.thermal_throttle_factor!r}"
            )
        if not 0.0 <= self.noise < 1.0:
            raise SpecError(f"noise must lie in [0, 1), got {self.noise!r}")

    @property
    def any_active(self) -> bool:
        """True when the plan can inject at least one fault."""
        return (
            self.dropout_probability > 0
            or (self.bandwidth_episode_probability > 0
                and self.bandwidth_degradation > 0)
            or (self.thermal_throttle_probability > 0
                and self.thermal_throttle_factor < 1.0)
            or self.noise > 0
        )


#: Named plans the CLI exposes via ``--fault-plan``.
FAULT_PLANS: dict = {
    "none": FaultPlan(name="none"),
    "chaos-default": FaultPlan(
        dropout_probability=0.2,
        bandwidth_degradation=0.5,
        bandwidth_episode_probability=0.15,
        thermal_throttle_factor=0.7,
        thermal_throttle_probability=0.1,
        noise=0.05,
        name="chaos-default",
    ),
    "flaky-dram": FaultPlan(
        bandwidth_degradation=0.6,
        bandwidth_episode_probability=0.25,
        name="flaky-dram",
    ),
    "hot-die": FaultPlan(
        thermal_throttle_factor=0.6,
        thermal_throttle_probability=0.3,
        name="hot-die",
    ),
}


def fault_plan(name: str) -> FaultPlan:
    """Look up a named plan (:data:`FAULT_PLANS`), raising on unknowns."""
    try:
        return FAULT_PLANS[name]
    except KeyError:
        raise SpecError(
            f"unknown fault plan {name!r}; known: {sorted(FAULT_PLANS)}"
        ) from None


class FaultInjector:
    """A :class:`FaultPlan` bound to a seeded RNG, consulted by the sim.

    The simulator asks in a *fixed order* per run — dropout first, then
    bandwidth, then (inside the thermal model) throttle, then noise —
    so the draw sequence, and therefore every injected fault, is a pure
    function of ``(plan, seed, call order)``.  :meth:`reset` rewinds
    the RNG so a fresh run replays the identical fault timeline.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        if not isinstance(plan, FaultPlan):
            raise SpecError("FaultInjector needs a FaultPlan")
        self.plan = plan
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self.counts = {"dropout": 0, "bandwidth": 0, "thermal": 0, "noise": 0}

    def reset(self) -> None:
        """Rewind the RNG and zero the event counts (replay the plan)."""
        self._rng = random.Random(self.seed)
        self.counts = {"dropout": 0, "bandwidth": 0, "thermal": 0, "noise": 0}

    @property
    def injected(self) -> int:
        """Episodic faults injected since construction/reset.

        Dropouts, bandwidth episodes, and thermal episodes; ambient
        noise applications are tracked in ``counts["noise"]`` but are
        not *events*.
        """
        return (self.counts["dropout"] + self.counts["bandwidth"]
                + self.counts["thermal"])

    def _record(self, kind: str, instrument) -> None:
        self.counts[kind] += 1
        _FAULTS_INJECTED.inc()
        instrument.inc()

    # -- the simulator's consultation points ---------------------------

    def check_dropout(self, context: str) -> None:
        """Raise a dropout :class:`MeasurementError`, or return clean."""
        if self.plan.dropout_probability <= 0:
            return
        if self._rng.random() < self.plan.dropout_probability:
            self._record("dropout", _FAULT_DROPOUTS)
            raise MeasurementError(
                f"injected measurement dropout during {context} "
                f"(plan {self.plan.name!r}, seed {self.seed})",
                code="MEASUREMENT_DROPOUT",
            )

    def bandwidth_derate(self) -> float:
        """DRAM bandwidth multiplier for this run (1.0 = clean)."""
        if (self.plan.bandwidth_episode_probability <= 0
                or self.plan.bandwidth_degradation <= 0):
            return 1.0
        if self._rng.random() < self.plan.bandwidth_episode_probability:
            self._record("bandwidth", _FAULT_BANDWIDTH)
            return 1.0 - self.plan.bandwidth_degradation
        return 1.0

    def throttle_factor(self) -> float:
        """Forced thermal-governor multiplier for this run (1.0 = clean)."""
        if (self.plan.thermal_throttle_probability <= 0
                or self.plan.thermal_throttle_factor >= 1.0):
            return 1.0
        if self._rng.random() < self.plan.thermal_throttle_probability:
            self._record("thermal", _FAULT_THERMAL)
            return self.plan.thermal_throttle_factor
        return 1.0

    def noise_factor(self) -> float:
        """One-sided multiplicative degradation of the observed rate.

        Noise is ambient (it shaves *every* measurement a little), so it
        counts on its own instrument rather than the episodic
        ``resilience.faults.injected`` headline.
        """
        if self.plan.noise <= 0:
            return 1.0
        self.counts["noise"] += 1
        _FAULT_NOISE.inc()
        return 1.0 - self.plan.noise * self._rng.random()

    def summary(self) -> dict:
        """JSON-ready provenance of what this injector did."""
        return {
            "plan": self.plan.name,
            "seed": self.seed,
            "injected": self.injected,
            "counts": dict(self.counts),
        }
