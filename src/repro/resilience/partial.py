"""Shared partial-failure vocabulary for batch and sweep drivers.

Every driver that accepts ``on_error="raise"|"skip"|"record"`` reports
failed points with the same :class:`PointFailure` record so the CLI,
reports, and tests can treat a failed batch row, a failed 1-D sweep
value, and a failed 2-D grid cell uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError, SpecError
from ..obs.metrics import counter as _counter

_POINTS_SKIPPED = _counter("resilience.points.skipped")

#: The accepted ``on_error`` modes, in documentation order.
ON_ERROR_MODES = ("raise", "skip", "record")


def check_on_error(on_error: str) -> str:
    """Validate an ``on_error`` mode string, returning it unchanged."""
    if on_error not in ON_ERROR_MODES:
        raise SpecError(
            f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
        )
    return on_error


@dataclass(frozen=True)
class PointFailure:
    """One evaluation point that failed under a tolerant ``on_error`` mode.

    ``coords`` locates the point in whatever space the driver sweeps:
    ``(index,)`` for a flat batch, ``(value,)`` for a 1-D parameter
    sweep, ``(x, y)`` for a grid cell.  ``code`` is the stable
    machine-readable error code (:mod:`repro.errors`); ``message`` is
    the human-readable detail.
    """

    coords: tuple
    code: str
    message: str


def point_failure(coords, code: str, message: str) -> PointFailure:
    """Build a :class:`PointFailure`, counting it on the skip counter."""
    _POINTS_SKIPPED.inc()
    return PointFailure(coords=tuple(coords), code=code, message=message)


def record_failure(coords, err: BaseException) -> PointFailure:
    """Build a :class:`PointFailure` from an exception, counting it."""
    code = getattr(err, "code", None)
    if not isinstance(code, str):
        code = "REPRO_ERROR" if isinstance(err, ReproError) else "UNEXPECTED"
    return point_failure(coords, code, str(err))


def degraded_banner(errors, total: int, what: str = "points") -> str:
    """One-line warning the CLI/reports print above partial results."""
    errors = tuple(errors)
    codes: dict = {}
    for failure in errors:
        codes[failure.code] = codes.get(failure.code, 0) + 1
    breakdown = ", ".join(
        f"{code}x{count}" for code, count in sorted(codes.items())
    )
    return (
        f"DEGRADED OUTPUT: {len(errors)}/{total} {what} failed "
        f"({breakdown}); remaining results are exact."
    )
