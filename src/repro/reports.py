"""Per-experiment report generators: the paper's tables and figures.

Each function regenerates one paper artifact as text — the same rows
or series the paper reports, with the published values alongside for
comparison.  The CLI (``gables report <exp>``) and the benchmark
harness both call these, so "what the reproduction produces" has a
single definition.
"""

from __future__ import annotations


from .core import FIGURE_6_SEQUENCE, FIGURE_6_EXPECTED_GOPS, cached_evaluator
from .errors import ReproError
from .obs.metrics import counter as _counter
from .obs.profile import profile_scope as _profile_scope
from .obs.trace import span as _span
from .resilience.partial import check_on_error, degraded_banner, record_failure
from .units import GIGA

#: Report generators re-evaluate the same Figure 6 design points every
#: time they run (``report_all``, the CLI, the figure regenerator); the
#: memo keys on the frozen (SoCSpec, Workload) pair so structurally
#: equal scenarios share one evaluation.
_EVALUATE = cached_evaluator()

#: Paper-published targets for the Section IV measurements.
PAPER_FIG7_CPU = {"peak_gflops": 7.5, "dram_gbs": 15.1}
PAPER_FIG7_GPU = {"peak_gflops": 349.6, "dram_gbs": 24.4}
PAPER_FIG9_DSP = {"peak_gflops": 3.0, "dram_gbs": 5.4}
PAPER_FIG8_PEAK_SPEEDUP = 39.4
PAPER_GPU_ACCELERATION = 46.6


def report_fig6() -> str:
    """Figure 6a-6d: the two-IP walkthrough vs the appendix numbers."""
    lines = ["Figure 6: two-IP Gables walkthrough (paper appendix numbers)"]
    lines.append(f"{'step':>6} {'paper Gops/s':>14} {'model Gops/s':>14} "
                 f"{'bottleneck':>12} {'balanced':>9}")
    for scenario in FIGURE_6_SEQUENCE:
        result = _EVALUATE(scenario.soc(), scenario.workload())
        expected = FIGURE_6_EXPECTED_GOPS[scenario.name]
        lines.append(
            f"{scenario.name:>6} {expected:>14.4g} "
            f"{result.attainable / GIGA:>14.4g} "
            f"{result.bottleneck:>12} {str(result.is_balanced()):>9}"
        )
    return "\n".join(lines)


def report_fig7() -> str:
    """Figure 7: empirical CPU and GPU rooflines on the simulated SoC."""
    from .ert import acceleration_between, fit_roofline, run_sweep
    from .sim import simulated_snapdragon_835

    platform = simulated_snapdragon_835()
    cpu = fit_roofline(run_sweep(platform, "CPU"))
    gpu = fit_roofline(run_sweep(platform, "GPU"))
    lines = ["Figure 7: empirical rooflines (simulated Snapdragon 835)"]
    lines.append(f"{'engine':>7} {'paper peak':>11} {'meas peak':>10} "
                 f"{'paper BW':>9} {'meas BW':>8}")
    for fitted, paper in ((cpu, PAPER_FIG7_CPU), (gpu, PAPER_FIG7_GPU)):
        lines.append(
            f"{fitted.engine:>7} {paper['peak_gflops']:>11.4g} "
            f"{fitted.peak_gflops:>10.4g} {paper['dram_gbs']:>9.4g} "
            f"{fitted.dram_bandwidth / GIGA:>8.4g}"
        )
    lines.append(
        f"GPU acceleration A1 = {acceleration_between(cpu, gpu):.1f}x "
        f"(paper: {PAPER_GPU_ACCELERATION}x ~ 47x)"
    )
    return "\n".join(lines)


def report_fig8() -> str:
    """Figure 8: normalized performance vs offload fraction."""
    from .sim import run_mixing_sweep, simulated_snapdragon_835

    sweep = run_mixing_sweep(simulated_snapdragon_835())
    lines = ["Figure 8: CPU+GPU mixing (normalized to CPU-only at I=1)"]
    fractions = sorted({p.fraction for p in sweep.points})
    header = "I \\ f  " + " ".join(f"{f:>7.3f}" for f in fractions)
    lines.append(header)
    for intensity in sweep.intensities():
        row = [f"{intensity:>6g}"]
        for point in sweep.line(intensity):
            row.append(f"{point.normalized:>7.2f}")
        lines.append(" ".join(row))
    peak = sweep.peak_speedup()
    lines.append(
        f"peak speedup {peak.normalized:.1f}x at f={peak.fraction:g}, "
        f"I={peak.intensity:g} (paper: {PAPER_FIG8_PEAK_SPEEDUP}x at I=1024)"
    )
    return "\n".join(lines)


def report_fig9() -> str:
    """Figure 9: the Hexagon DSP scalar-unit roofline."""
    from .ert import fit_roofline, run_sweep
    from .sim import simulated_snapdragon_835

    fitted = fit_roofline(run_sweep(simulated_snapdragon_835(), "DSP"))
    lines = ["Figure 9: DSP scalar roofline (simulated Hexagon 682)"]
    lines.append(
        f"paper: {PAPER_FIG9_DSP['peak_gflops']} GFLOP/s, "
        f"DRAM {PAPER_FIG9_DSP['dram_gbs']} GB/s "
        "(text: fabric-limited ~12.5 GB/s)"
    )
    lines.append(
        f"measured: {fitted.peak_gflops:.4g} GFLOP/s, "
        f"DRAM {fitted.dram_bandwidth / GIGA:.4g} GB/s"
    )
    return "\n".join(lines)


def report_fig2() -> str:
    """Figure 2: SoC market growth and on-die heterogeneity."""
    from .market import generate_market_dataset, ip_count_by_generation

    dataset = generate_market_dataset()
    by_year = dataset.introductions_by_year()
    lines = ["Figure 2a: new SoC chipsets per year (synthetic dataset)"]
    lines.append("year   " + " ".join(f"{y}" for y in by_year))
    lines.append("count  " + " ".join(f"{c:>4}" for c in by_year.values()))
    qc_2014 = dataset.vendor_counts(2014).get("Qualcomm", 0)
    qc_2017 = dataset.vendor_counts(2017).get("Qualcomm", 0)
    lines.append(
        f"Qualcomm consolidation: {qc_2014} (2014) -> {qc_2017} (2017) "
        "[paper: 49 -> 27]"
    )
    lines.append("")
    lines.append("Figure 2b: IP blocks per SoC generation (after Shao et al.)")
    generations = ip_count_by_generation()
    lines.append("gen    " + " ".join(f"{g:>3}" for g in generations))
    lines.append("IPs    " + " ".join(f"{c:>3}" for c in generations.values()))
    return "\n".join(lines)


def report_table1() -> str:
    """Table I: usecase / IP concurrency matrix from the dataflows."""
    from .usecases import TABLE_I_COLUMNS, USECASES, activity_matrix

    matrix = activity_matrix()
    width = max(len(name) for name in USECASES) + 2
    lines = ["Table I: camera usecases and concurrently exercised IPs"]
    lines.append(" " * width + " ".join(f"{c:>7}" for c in TABLE_I_COLUMNS))
    for name in USECASES:
        active = set(matrix[name])
        row = "".join(
            f"{'X':>8}" if column in active else f"{'':>8}"
            for column in TABLE_I_COLUMNS
        )
        lines.append(f"{name:<{width}}" + row.lstrip(" ").rjust(len(row) - 1))
    concurrency = [len(matrix[name]) for name in USECASES]
    lines.append(
        f"IPs active per usecase: {concurrency} "
        f"(>= half of the {len(TABLE_I_COLUMNS)}-IP columns in every row: "
        f"{all(c >= len(TABLE_I_COLUMNS) // 2 for c in concurrency)})"
    )
    return "\n".join(lines)


def report_variants(variant: str | None = None) -> str:
    """Every model variant on the Figure 6d design point.

    One row per :data:`~repro.core.variants.VARIANT_CHOICES` entry (or
    just ``variant`` when given), evaluated through the lowered
    pipeline with the CLI's illustrative default structures — the
    quickest way to see how each Section V extension reshapes the same
    design's bound.
    """
    from .core import (
        FIGURE_6D,
        VARIANT_CHOICES,
        PhasedVariant,
        Workload,
        evaluate_variant,
        variant_from_config,
    )
    from .core.extensions import Phase, PhasedUsecase

    soc = FIGURE_6D.soc()
    workload = FIGURE_6D.workload()
    names = (variant,) if variant else VARIANT_CHOICES
    lines = [f"Model variants on the {FIGURE_6D.name} design point "
             f"({soc.name})"]
    lines.append(f"{'variant':>14} {'Gops/s':>10} {'bottleneck':>14}")
    for name in names:
        if name == "phases":
            # No CLI default exists for phases; illustrate with a
            # half-host, half-concurrent split of the same workload.
            chosen = PhasedVariant(PhasedUsecase((
                Phase(0.5, Workload.single_ip(
                    soc.n_ips, 0, workload.intensities[0], name="host"
                ), name="host"),
                Phase(0.5, workload, name="concurrent"),
            )))
        else:
            chosen = variant_from_config(name, soc)
        result = evaluate_variant(
            soc,
            workload if chosen.requires_workload else None,
            chosen,
        )
        lines.append(
            f"{name:>14} {result.attainable / GIGA:>10.4g} "
            f"{result.bottleneck:>14}"
        )
    return "\n".join(lines)


def report_all(on_error: str = "raise") -> str:
    """Every paper artifact, concatenated — the one-shot reproduction.

    Under ``on_error="skip"``/``"record"``, a section whose generator
    raises a :class:`~repro.errors.ReproError` is dropped (or, for
    ``"record"``, replaced by a one-line placeholder) and a degraded-
    output banner heads the report instead of the failure aborting the
    whole reproduction.
    """
    check_on_error(on_error)
    generators = (
        ("fig2", report_fig2),
        ("table1", report_table1),
        ("fig6", report_fig6),
        ("fig7", report_fig7),
        ("fig8", report_fig8),
        ("fig9", report_fig9),
    )
    sections = []
    failures = []
    for name, generator in generators:
        try:
            sections.append(generator())
        except ReproError as err:
            if on_error == "raise":
                raise
            failure = record_failure((name,), err)
            failures.append(failure)
            if on_error == "record":
                sections.append(
                    f"[section {name} unavailable: "
                    f"{failure.code}: {failure.message}]"
                )
    rule = "\n" + "=" * 72 + "\n"
    body = rule.join(sections)
    if failures:
        banner = degraded_banner(failures, len(generators), what="sections")
        return banner + "\n\n" + body if body else banner
    return body


def _instrumented(experiment: str, generator):
    """Wrap a report generator with a span and a generation counter."""

    def run(*args, **kwargs) -> str:
        _counter("reports.generated").inc()
        with _span("report.generate", experiment=experiment), \
                _profile_scope(f"report.{experiment}"):
            return generator(*args, **kwargs)

    run.__name__ = generator.__name__
    run.__doc__ = generator.__doc__
    return run


#: Experiment id -> report generator (the CLI's registry).
REPORTS = {
    experiment: _instrumented(experiment, generator)
    for experiment, generator in {
        "fig2": report_fig2,
        "fig6": report_fig6,
        "fig7": report_fig7,
        "fig8": report_fig8,
        "fig9": report_fig9,
        "table1": report_table1,
        "variants": report_variants,
        "all": report_all,
    }.items()
}
