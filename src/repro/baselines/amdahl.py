"""Amdahl's Law [Amdahl, 1967] and Gustafson's reevaluation [1988].

Gables generalizes Amdahl's Law two ways: work at different IPs runs
*concurrently* rather than serially, and data movement is modeled
alongside computation.  These classic laws are the baselines the paper
positions against (Section VI) and are used by the test suite to pin
down the limiting behaviour of the serialized extension.
"""

from __future__ import annotations

from .._validation import require_finite_positive, require_fraction
from ..errors import SpecError


def amdahl_speedup(parallel_fraction: float, speedup_factor: float) -> float:
    """Amdahl's Law: overall speedup when a fraction is accelerated.

    ``S = 1 / ((1 - f) + f / s)`` where ``f`` is the fraction of the
    original runtime that is sped up by factor ``s``.  As ``s -> inf``
    the speedup is bounded by ``1 / (1 - f)`` — the serial fraction
    rules.

    Parameters
    ----------
    parallel_fraction:
        ``f`` in [0, 1] — fraction of runtime that benefits.
    speedup_factor:
        ``s > 0`` — how much faster that fraction runs.
    """
    f = require_fraction(parallel_fraction, "parallel_fraction")
    s = require_finite_positive(speedup_factor, "speedup_factor")
    return 1.0 / ((1.0 - f) + f / s)


def amdahl_limit(parallel_fraction: float) -> float:
    """The ``s -> inf`` asymptote ``1 / (1 - f)`` (``inf`` when f=1)."""
    f = require_fraction(parallel_fraction, "parallel_fraction")
    if f == 1.0:
        return float("inf")
    return 1.0 / (1.0 - f)


def amdahl_fraction_needed(target_speedup: float, speedup_factor: float) -> float:
    """Invert Amdahl: the ``f`` needed to hit a target overall speedup.

    Solves ``S = 1 / ((1-f) + f/s)`` for ``f``.  Raises
    :class:`~repro.errors.SpecError` when the target exceeds what the
    factor can deliver even at ``f = 1`` (i.e. ``target > s``).
    """
    target = require_finite_positive(target_speedup, "target_speedup")
    s = require_finite_positive(speedup_factor, "speedup_factor")
    if target < 1.0:
        raise SpecError(f"target_speedup must be >= 1, got {target!r}")
    if target > s:
        raise SpecError(
            f"target speedup {target!r} unreachable with factor {s!r}"
        )
    if s == 1.0:
        return 0.0
    return (1.0 - 1.0 / target) / (1.0 - 1.0 / s)


def gustafson_speedup(parallel_fraction: float, processors: float) -> float:
    """Gustafson's Law: scaled speedup for a grown problem.

    ``S = (1 - f) + f * N`` — with the *scaled* workload, the parallel
    part grows with processor count ``N`` so speedup is linear in ``N``
    rather than bounded by the serial fraction.
    """
    f = require_fraction(parallel_fraction, "parallel_fraction")
    n = require_finite_positive(processors, "processors")
    return (1.0 - f) + f * n
