"""LogCA-lite: a high-level accelerator offload model.

[Altaf & Wood, ISCA 2017] model a host offloading work of granularity
``g`` to an accelerator with five parameters:

- ``L`` — latency: cycles to move a byte of data to the accelerator;
- ``o`` — overhead: fixed host cycles to set up one offload;
- ``g`` — granularity: bytes of data per offload;
- ``C`` — computational index: host cycles of work per byte
  (``C * g^beta`` total work for granularity ``g``);
- ``A`` — peak acceleration.

Unaccelerated time ``T0(g) = C * g^beta``; accelerated time
``T1(g) = o + L * g + C * g^beta / A``; speedup is their ratio.  The
break-even granularity ``g1`` (speedup = 1) is the model's signature
output: below it, offload overheads swamp the acceleration.

The paper cites LogCA as a "more sophisticated sub-model" that future
Gables work could incorporate per IP; we include this compact form both
as a baseline and to let examples contrast fixed-overhead effects that
Gables deliberately abstracts away.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import require_finite_positive, require_nonnegative
from ..errors import EvaluationError


@dataclass(frozen=True)
class LogCA:
    """LogCA accelerator parameters (all in host-cycle units).

    Parameters
    ----------
    latency:
        ``L`` — cycles per byte moved to/from the accelerator.
    overhead:
        ``o`` — fixed cycles to dispatch one offload.
    compute_index:
        ``C`` — host cycles of computation per byte of data.
    acceleration:
        ``A`` — the accelerator's speedup on the kernel itself.
    beta:
        Work growth exponent: total work is ``C * g**beta``
        (1.0 = linear kernels like streaming; >1 for e.g. matrix math).
    """

    latency: float
    overhead: float
    compute_index: float
    acceleration: float
    beta: float = 1.0

    def __post_init__(self) -> None:
        require_nonnegative(self.latency, "latency")
        require_nonnegative(self.overhead, "overhead")
        require_finite_positive(self.compute_index, "compute_index")
        require_finite_positive(self.acceleration, "acceleration")
        require_finite_positive(self.beta, "beta")

    def unaccelerated_time(self, granularity: float) -> float:
        """``T0(g) = C * g**beta`` — all work on the host."""
        g = require_finite_positive(granularity, "granularity")
        return self.compute_index * g**self.beta

    def accelerated_time(self, granularity: float) -> float:
        """``T1(g) = o + L*g + C * g**beta / A``."""
        g = require_finite_positive(granularity, "granularity")
        return (
            self.overhead
            + self.latency * g
            + self.compute_index * g**self.beta / self.acceleration
        )

    def speedup(self, granularity: float) -> float:
        """``T0(g) / T1(g)`` — offload benefit at granularity ``g``."""
        return self.unaccelerated_time(granularity) / self.accelerated_time(granularity)

    def asymptotic_speedup(self) -> float:
        """``g -> inf`` limit of the speedup.

        ``A`` when work grows super-linearly (``beta > 1``); for linear
        kernels the latency term never amortizes and the limit is
        ``C / (L + C/A)`` — bounded below ``A`` whenever ``L > 0``.
        """
        if self.beta > 1.0:
            return self.acceleration
        if self.beta < 1.0:
            if self.latency > 0:
                return 0.0
            return self.acceleration
        return self.compute_index / (
            self.latency + self.compute_index / self.acceleration
        )

    def break_even_granularity(self, g_max: float = 1e18) -> float:
        """Smallest ``g`` with speedup >= 1 (``inf`` if never reached).

        Solved by bisection on the continuous, monotone-difference
        function ``T0(g) - T1(g)``; exact enough for model purposes.
        """
        if self.speedup(1e-12) >= 1.0:
            return 0.0

        def gain(g: float) -> float:
            return self.unaccelerated_time(g) - self.accelerated_time(g)

        lo, hi = 1e-12, 1.0
        while gain(hi) < 0:
            hi *= 2.0
            if hi > g_max:
                return math.inf
        for _ in range(200):
            mid = math.sqrt(lo * hi)
            if gain(mid) < 0:
                lo = mid
            else:
                hi = mid
            if hi / lo < 1 + 1e-12:
                break
        else:
            raise EvaluationError("break-even bisection failed to converge")
        return hi
