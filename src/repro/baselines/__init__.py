"""Baseline performance models the paper positions Gables against.

- :mod:`.amdahl` — Amdahl's Law (1967) and Gustafson's Law (1988);
- :mod:`.hill_marty` — multicore-era Amdahl (symmetric / asymmetric /
  dynamic chip organizations, Hill & Marty 2008);
- :mod:`.multiamdahl` — N-IP sequential-work area-allocation model
  (Keslassy et al. 2012), the closest relative of Gables;
- :mod:`.logca` — a compact accelerator-offload model with fixed
  overheads (Altaf & Wood 2017);
- :mod:`.guz_valley` — the unified many-core / many-thread model
  (Guz et al. 2009), the on-chip-memory sub-model the paper cites for
  future per-IP sophistication.
"""

from .amdahl import (
    amdahl_fraction_needed,
    amdahl_limit,
    amdahl_speedup,
    gustafson_speedup,
)
from .guz_valley import (
    GuzMachine,
    ValleyReport,
    find_valley,
    power_law_hit_rate,
    to_ip_roofline,
)
from .hill_marty import (
    asymmetric_speedup,
    best_core_size,
    default_perf,
    dynamic_speedup,
    symmetric_speedup,
)
from .logca import LogCA
from .multiamdahl import (
    MultiAmdahlChip,
    MultiAmdahlIP,
    optimal_allocation,
    runtime,
    speedup_over_uniform,
)

__all__ = [
    "GuzMachine",
    "LogCA",
    "MultiAmdahlChip",
    "MultiAmdahlIP",
    "ValleyReport",
    "find_valley",
    "power_law_hit_rate",
    "to_ip_roofline",
    "amdahl_fraction_needed",
    "amdahl_limit",
    "amdahl_speedup",
    "asymmetric_speedup",
    "best_core_size",
    "default_perf",
    "dynamic_speedup",
    "gustafson_speedup",
    "optimal_allocation",
    "runtime",
    "speedup_over_uniform",
    "symmetric_speedup",
]
