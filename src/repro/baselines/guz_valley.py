"""The Guz et al. unified many-core / many-thread model ("the valley").

[Guz, Bolotin, Keidar, Kolodny, Mendelson & Weiser, IEEE CAL 2009] —
cited by Gables (Section VI) as the kind of "more-sophisticated
sub-model regarding on-chip memory trade-offs" a future Gables could
embed per IP.  The model spans cache-reliant many-core machines and
latency-hiding many-thread machines with one formula over the thread
count ``n``:

- per-thread cache shrinks as ``C_total / n``, so the hit rate falls
  as threads are added;
- each PE interleaves the threads assigned to it, hiding miss latency
  when enough threads are resident;
- off-chip bandwidth caps the miss stream.

Performance first *falls* as threads outgrow the cache (not yet enough
of them to hide latency) and recovers once multithreading covers the
misses — the "valley" between the two ridges the paper warns machines
away from.

This module implements the model with a pluggable hit-rate curve and
provides :func:`find_valley` to locate the two ridges and the valley
floor, plus :func:`to_ip_roofline` to collapse an operating point into
the ``(peak, bandwidth)`` pair a Gables IP needs — the embedding the
Gables paper sketches.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from .._validation import require_finite_positive, require_fraction
from ..errors import SpecError


def power_law_hit_rate(s0_bytes: float = 64e3, theta: float = 0.5,
                       max_rate: float = 0.98) -> Callable[[float], float]:
    """A concave cache hit-rate curve ``P_hit(cache_per_thread)``.

    ``P(S) = max_rate * (1 - (1 + S/s0)^(-theta))`` — zero at S=0,
    saturating at ``max_rate``; ``s0`` sets the working-set scale and
    ``theta`` the curvature (smaller = heavier tail).
    """
    require_finite_positive(s0_bytes, "s0_bytes")
    require_finite_positive(theta, "theta")
    require_fraction(max_rate, "max_rate", SpecError)

    def hit_rate(cache_per_thread: float) -> float:
        if cache_per_thread < 0:
            raise SpecError("cache_per_thread must be >= 0")
        return max_rate * (1.0 - (1.0 + cache_per_thread / s0_bytes) ** -theta)

    return hit_rate


@dataclass(frozen=True)
class GuzMachine:
    """The unified machine of the Guz model.

    Parameters
    ----------
    n_pe:
        Processing elements (cores/lanes).
    frequency:
        Clock, Hz.
    cpi_exe:
        Execution cycles per instruction, all hits.
    mem_fraction:
        ``r_m`` — fraction of instructions touching memory.
    miss_penalty_cycles:
        ``t_m`` — cycles to DRAM on a miss.
    cache_bytes:
        Total on-chip cache shared by all threads.
    line_bytes:
        Bytes fetched per miss.
    memory_bandwidth:
        Off-chip bytes/s cap.
    hit_rate:
        ``P_hit(cache_per_thread_bytes)`` — defaults to a power law.
    """

    n_pe: int
    frequency: float
    cpi_exe: float
    mem_fraction: float
    miss_penalty_cycles: float
    cache_bytes: float
    line_bytes: float
    memory_bandwidth: float
    hit_rate: Callable[[float], float] = field(
        default_factory=power_law_hit_rate
    )

    def __post_init__(self) -> None:
        if self.n_pe < 1:
            raise SpecError(f"n_pe must be >= 1, got {self.n_pe}")
        require_finite_positive(self.frequency, "frequency")
        require_finite_positive(self.cpi_exe, "cpi_exe")
        require_fraction(self.mem_fraction, "mem_fraction", SpecError)
        require_finite_positive(self.miss_penalty_cycles,
                                "miss_penalty_cycles")
        require_finite_positive(self.cache_bytes, "cache_bytes")
        require_finite_positive(self.line_bytes, "line_bytes")
        require_finite_positive(self.memory_bandwidth, "memory_bandwidth")

    def miss_rate(self, threads: int) -> float:
        """Per-access miss probability with ``threads`` sharing the cache."""
        if threads < 1:
            raise SpecError(f"threads must be >= 1, got {threads}")
        return 1.0 - self.hit_rate(self.cache_bytes / threads)

    def effective_cpi(self, threads: int) -> float:
        """Cycles per instruction including exposed miss stalls."""
        return (
            self.cpi_exe
            + self.mem_fraction
            * self.miss_rate(threads)
            * self.miss_penalty_cycles
        )

    def pe_utilization(self, threads: int) -> float:
        """Fraction of PE issue slots doing work.

        ``threads / n_pe`` threads interleave on each PE; a PE is busy
        whenever any resident thread is not stalled, captured by the
        standard interleaving bound
        ``min(1, (threads/n_pe) * cpi_exe / cpi_eff)``.
        """
        per_pe = threads / self.n_pe
        return min(1.0, per_pe * self.cpi_exe / self.effective_cpi(threads))

    def performance(self, threads: int) -> float:
        """Attained instructions/s at ``threads``, bandwidth-capped.

        The compute term is ``n_pe * utilization * f / cpi_exe``; the
        miss stream it implies must also fit the off-chip bandwidth,
        which caps performance at
        ``BW / (r_m * miss_rate * line_bytes)`` instructions/s.
        """
        compute = (
            self.n_pe
            * self.pe_utilization(threads)
            * self.frequency
            / self.cpi_exe
        )
        bytes_per_instruction = (
            self.mem_fraction * self.miss_rate(threads) * self.line_bytes
        )
        if bytes_per_instruction == 0:
            return compute
        bandwidth_cap = self.memory_bandwidth / bytes_per_instruction
        return min(compute, bandwidth_cap)


@dataclass(frozen=True)
class ValleyReport:
    """The landscape of performance vs thread count."""

    cache_ridge_threads: int  # best thread count in the cache regime
    cache_ridge_performance: float
    valley_threads: int  # the floor between the ridges
    valley_performance: float
    thread_ridge_threads: int  # best count in the many-thread regime
    thread_ridge_performance: float

    @property
    def has_valley(self) -> bool:
        """True when a genuine dip separates the two ridges."""
        return (
            self.valley_performance
            < 0.95 * min(self.cache_ridge_performance,
                         self.thread_ridge_performance)
        )

    @property
    def valley_depth(self) -> float:
        """Floor performance relative to the lower ridge (< 1 = dip)."""
        lower_ridge = min(self.cache_ridge_performance,
                          self.thread_ridge_performance)
        return self.valley_performance / lower_ridge


def find_valley(machine: GuzMachine, max_threads: int = 1 << 16) -> ValleyReport:
    """Sweep thread counts and locate the ridges and the valley floor.

    Scans powers of two (plus n_pe multiples near the low end), finds
    the global pre-peak, the post-peak, and the minimum between them.
    """
    if max_threads < machine.n_pe:
        raise SpecError("max_threads must be at least n_pe")
    counts = sorted(
        {machine.n_pe * k for k in (1, 2, 3, 4, 6, 8)}
        | {1 << k for k in range(0, max_threads.bit_length())}
    )
    counts = [n for n in counts if 1 <= n <= max_threads]
    perf = {n: machine.performance(n) for n in counts}

    # Cache ridge: the global peak of the low-thread regime (the first
    # local maximum, scanning upward).
    best_first = counts[0]
    for n in counts[1:]:
        if perf[n] < perf[best_first]:
            break
        best_first = n
    after = [n for n in counts if n > best_first]
    if not after:
        return ValleyReport(best_first, perf[best_first], best_first,
                            perf[best_first], best_first, perf[best_first])
    # Valley floor: the first local minimum after the cache ridge (the
    # point where adding threads starts helping again); thread ridge:
    # the best recovery at or beyond the floor.
    valley = after[-1]
    for position, n in enumerate(after[:-1]):
        if perf[after[position + 1]] > perf[n]:
            valley = n
            break
    recovery = [n for n in counts if n >= valley]
    thread_ridge = max(recovery, key=lambda n: perf[n])
    return ValleyReport(
        cache_ridge_threads=best_first,
        cache_ridge_performance=perf[best_first],
        valley_threads=valley,
        valley_performance=perf[valley],
        thread_ridge_threads=thread_ridge,
        thread_ridge_performance=perf[thread_ridge],
    )


def to_ip_roofline(machine: GuzMachine, threads: int,
                   ops_per_instruction: float = 1.0) -> tuple:
    """Collapse an operating point into Gables IP inputs.

    Returns ``(peak_ops_per_second, offchip_bytes_per_second)`` — the
    ``Ai * Ppeak`` and effective traffic of a Gables IP built from this
    machine at the chosen thread count; the embedding the Gables paper
    suggests for more-sophisticated per-IP sub-models.
    """
    require_finite_positive(ops_per_instruction, "ops_per_instruction")
    instructions = machine.performance(threads)
    bytes_per_instruction = (
        machine.mem_fraction * machine.miss_rate(threads) * machine.line_bytes
    )
    return (
        instructions * ops_per_instruction,
        instructions * bytes_per_instruction,
    )
