"""Amdahl's Law in the multicore era [Hill & Marty, IEEE Computer 2008].

A chip has ``n`` base-core-equivalent (BCE) resources.  A core built
from ``r`` BCEs delivers sequential performance ``perf(r)`` — modeled,
as in the paper, as ``sqrt(r)`` by default.  Three organizations:

- **symmetric**: ``n/r`` identical cores of size ``r``;
- **asymmetric**: one big core of size ``r`` plus ``n - r`` single-BCE
  cores, all usable in the parallel phase;
- **dynamic**: ``r`` BCEs fuse into one big core for the serial phase
  and scatter into ``n`` base cores for the parallel phase.

These are the intellectual ancestors of Gables' per-IP acceleration
``Ai``: both ask how to spend chip resources across heterogeneous
compute.  Gables adds the bandwidth axis they lack.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from .._validation import require_finite_positive, require_fraction
from ..errors import SpecError


def default_perf(r: float) -> float:
    """Pollack's-rule-style core performance: ``perf(r) = sqrt(r)``."""
    return math.sqrt(r)


def _check(n: float, r: float) -> None:
    require_finite_positive(n, "n (total BCEs)")
    require_finite_positive(r, "r (BCEs per big core)")
    if r > n:
        raise SpecError(f"core size r={r!r} exceeds chip budget n={n!r}")


def symmetric_speedup(
    f: float, n: float, r: float, perf: Callable[[float], float] = default_perf
) -> float:
    """Speedup of a symmetric multicore of ``n/r`` cores of size ``r``.

    ``S = 1 / ((1-f)/perf(r) + f * r / (perf(r) * n))``
    """
    f = require_fraction(f, "f")
    _check(n, r)
    p = perf(r)
    return 1.0 / ((1.0 - f) / p + f * r / (p * n))


def asymmetric_speedup(
    f: float, n: float, r: float, perf: Callable[[float], float] = default_perf
) -> float:
    """Speedup of one ``r``-BCE core plus ``n - r`` base cores.

    ``S = 1 / ((1-f)/perf(r) + f / (perf(r) + n - r))``
    """
    f = require_fraction(f, "f")
    _check(n, r)
    p = perf(r)
    return 1.0 / ((1.0 - f) / p + f / (p + n - r))


def dynamic_speedup(
    f: float, n: float, r: float, perf: Callable[[float], float] = default_perf
) -> float:
    """Speedup when ``r`` BCEs fuse for serial work, scatter for parallel.

    ``S = 1 / ((1-f)/perf(r) + f / n)``
    """
    f = require_fraction(f, "f")
    _check(n, r)
    return 1.0 / ((1.0 - f) / perf(r) + f / n)


def best_core_size(
    f: float,
    n: float,
    organization: str = "symmetric",
    perf: Callable[[float], float] = default_perf,
    resolution: int = 512,
) -> tuple:
    """Grid-search the core size ``r`` maximizing speedup.

    Returns ``(r_best, speedup_best)``.  A dense geometric grid over
    ``[1, n]`` suffices for the model's smooth, single-peaked curves.
    """
    speedup_fn = {
        "symmetric": symmetric_speedup,
        "asymmetric": asymmetric_speedup,
        "dynamic": dynamic_speedup,
    }.get(organization)
    if speedup_fn is None:
        raise SpecError(f"unknown organization {organization!r}")
    require_finite_positive(n, "n (total BCEs)")
    if resolution < 2:
        raise SpecError(f"resolution must be >= 2, got {resolution}")
    best_r, best_s = 1.0, -math.inf
    for k in range(resolution + 1):
        r = n ** (k / resolution)  # geometric grid from 1 to n
        s = speedup_fn(f, n, r, perf)
        if s > best_s:
            best_r, best_s = r, s
    return best_r, best_s
