"""MultiAmdahl [Keslassy, Weiser & Zidenberg, CAL 2012].

The model closest to Gables (paper Section VI).  MultiAmdahl models an
N-IP SoC where a workload spends time fraction ``ti`` in the code
region served by IP ``i``, work is *sequential* (one IP at a time), and
each IP's performance is a function of the chip resources (area)
allocated to it.  Given a total area budget it finds the allocation
minimizing total runtime:

    minimize    T(a) = sum_i ti / perf_i(a_i)
    subject to  sum_i a_i = A_total,  a_i >= 0

The key differences from Gables, which our benchmark harness
demonstrates side by side:

- MultiAmdahl has **no bandwidth terms** — neither per-IP links ``Bi``
  nor the shared ``Bpeak`` — so it cannot see memory-bound designs
  (e.g. the collapse in paper Fig. 6b);
- base Gables assumes **concurrent** work, MultiAmdahl sequential
  (Gables' Section V-C extension closes that gap).

Performance functions default to Pollack-rule ``perf(a) = k * sqrt(a)``
but any positive increasing callable works.  For power-law functions
``perf_i(a) = k_i * a^alpha`` the optimum has a closed form via
Lagrange multipliers, which :func:`optimal_allocation` uses to seed and
verify the numeric solver.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from .._validation import require_finite_positive, require_fractions_sum_to_one
from ..errors import EvaluationError, SpecError


@dataclass(frozen=True)
class MultiAmdahlIP:
    """One IP in a MultiAmdahl chip: a name and ``perf_i(area)``.

    ``power_law(k, alpha)`` builds the common ``k * a^alpha`` form; an
    arbitrary callable may be supplied instead via ``perf``.
    """

    name: str
    perf: Callable[[float], float]
    k: float | None = None  # power-law coefficient, if applicable
    alpha: float | None = None  # power-law exponent, if applicable

    @classmethod
    def power_law(cls, name: str, k: float = 1.0, alpha: float = 0.5) -> "MultiAmdahlIP":
        """``perf(a) = k * a**alpha`` (alpha=0.5 is Pollack's rule)."""
        require_finite_positive(k, f"IP {name!r} k")
        require_finite_positive(alpha, f"IP {name!r} alpha")
        if alpha >= 1.0:
            raise SpecError(
                f"IP {name!r} alpha must be < 1 for a well-posed optimum, "
                f"got {alpha!r}"
            )
        return cls(name=name, perf=lambda a: k * a**alpha, k=k, alpha=alpha)

    @property
    def is_power_law(self) -> bool:
        """True when a closed-form optimum is available."""
        return self.k is not None and self.alpha is not None


@dataclass(frozen=True)
class MultiAmdahlChip:
    """N IPs sharing a total area budget."""

    ips: tuple
    total_area: float
    name: str = "multiamdahl-chip"

    def __post_init__(self) -> None:
        if not isinstance(self.ips, tuple):
            object.__setattr__(self, "ips", tuple(self.ips))
        if not self.ips:
            raise SpecError("MultiAmdahlChip needs at least one IP")
        require_finite_positive(self.total_area, "total_area")

    @property
    def n_ips(self) -> int:
        """Number of IPs sharing the budget."""
        return len(self.ips)


def runtime(chip: MultiAmdahlChip, time_fractions: Sequence[float],
            areas: Sequence[float]) -> float:
    """``T(a) = sum_i ti / perf_i(a_i)`` for a concrete allocation."""
    if len(time_fractions) != chip.n_ips or len(areas) != chip.n_ips:
        raise SpecError("time_fractions and areas must match the chip's IP count")
    require_fractions_sum_to_one(time_fractions, "time_fractions")
    total = 0.0
    for ip, t, a in zip(chip.ips, time_fractions, areas):
        if a < 0:
            raise SpecError(f"area for {ip.name!r} must be >= 0, got {a!r}")
        if t == 0:
            continue
        if a == 0:
            return math.inf
        perf = ip.perf(a)
        if perf <= 0:
            raise EvaluationError(f"perf_{ip.name}({a!r}) must be positive")
        total += t / perf
    return total


def _closed_form_power_law(chip: MultiAmdahlChip,
                           time_fractions: Sequence[float]) -> list | None:
    """Lagrange closed form when every active IP is a power law.

    With ``perf_i = k_i * a^alpha_i``, stationarity gives
    ``t_i * alpha_i / (k_i * a_i^(alpha_i + 1)) = lambda`` for all active
    IPs.  For a *common* alpha this reduces to
    ``a_i ∝ (t_i / k_i)^(1 / (alpha + 1))``; mixed alphas fall back to
    the numeric solver (returns None).
    """
    active = [
        (ip, t) for ip, t in zip(chip.ips, time_fractions) if t > 0
    ]
    if not all(ip.is_power_law for ip, _ in active):
        return None
    alphas = {ip.alpha for ip, _ in active}
    if len(alphas) != 1:
        return None
    alpha = alphas.pop()
    exponent = 1.0 / (alpha + 1.0)
    weights = [
        (t * alpha / ip.k) ** exponent if t > 0 else 0.0
        for ip, t in zip(chip.ips, time_fractions)
    ]
    scale = chip.total_area / math.fsum(weights)
    return [w * scale for w in weights]


def optimal_allocation(chip: MultiAmdahlChip,
                       time_fractions: Sequence[float]) -> tuple:
    """Area allocation minimizing runtime; returns ``(areas, runtime)``.

    Uses the power-law closed form when available and a projected
    numeric solve (SLSQP over a softmax-free simplex parameterization)
    otherwise.  IPs with ``ti = 0`` receive zero area — spending budget
    on unused hardware can only hurt.
    """
    require_fractions_sum_to_one(time_fractions, "time_fractions")
    if len(time_fractions) != chip.n_ips:
        raise SpecError("time_fractions must match the chip's IP count")

    closed = _closed_form_power_law(chip, time_fractions)
    if closed is not None:
        return tuple(closed), runtime(chip, time_fractions, closed)

    active = [i for i, t in enumerate(time_fractions) if t > 0]
    if not active:
        raise SpecError("at least one time fraction must be positive")
    n_active = len(active)

    def objective(x: np.ndarray) -> float:
        areas = [0.0] * chip.n_ips
        for slot, i in enumerate(active):
            areas[i] = float(x[slot])
        return runtime(chip, time_fractions, areas)

    x0 = np.full(n_active, chip.total_area / n_active)
    result = optimize.minimize(
        objective,
        x0,
        method="SLSQP",
        bounds=[(1e-12 * chip.total_area, chip.total_area)] * n_active,
        constraints=[
            {"type": "eq", "fun": lambda x: float(np.sum(x)) - chip.total_area}
        ],
        options={"maxiter": 500, "ftol": 1e-14},
    )
    if not result.success:
        raise EvaluationError(f"MultiAmdahl optimization failed: {result.message}")
    areas = [0.0] * chip.n_ips
    for slot, i in enumerate(active):
        areas[i] = float(result.x[slot])
    return tuple(areas), runtime(chip, time_fractions, areas)


def speedup_over_uniform(chip: MultiAmdahlChip,
                         time_fractions: Sequence[float]) -> float:
    """How much the optimal allocation beats an even area split."""
    uniform = [chip.total_area / chip.n_ips] * chip.n_ips
    t_uniform = runtime(chip, time_fractions, uniform)
    _, t_optimal = optimal_allocation(chip, time_fractions)
    return t_uniform / t_optimal
