"""Serialization: JSON round-trip for specs and workloads.

``save``/``load`` move :class:`~repro.core.params.SoCSpec` and
:class:`~repro.core.params.Workload` documents to and from disk;
results export one-way via :func:`dumps`.  :func:`read_jsonl_tolerant`
/ :func:`append_jsonl` are the shared contract every append-only JSONL
artifact (checkpoints, benchmark history, structured logs, the serving
result cache) reads and writes through: a torn final line from a
killed writer is dropped, corruption anywhere earlier raises.
"""

from .jsonl import append_jsonl, read_jsonl_tolerant
from .soc_codec import (
    decode_description,
    encode_description,
    load_description,
    save_description,
)
from .json_codec import (
    SCHEMA,
    decode_soc,
    decode_workload,
    dumps,
    encode_result,
    encode_soc,
    encode_workload,
    load,
    loads,
    save,
)

__all__ = [
    "SCHEMA",
    "append_jsonl",
    "read_jsonl_tolerant",
    "decode_description",
    "decode_soc",
    "decode_workload",
    "dumps",
    "encode_description",
    "load_description",
    "save_description",
    "encode_result",
    "encode_soc",
    "encode_workload",
    "load",
    "loads",
    "save",
]
