"""Serialization: JSON round-trip for specs and workloads.

``save``/``load`` move :class:`~repro.core.params.SoCSpec` and
:class:`~repro.core.params.Workload` documents to and from disk;
results export one-way via :func:`dumps`.
"""

from .soc_codec import (
    decode_description,
    encode_description,
    load_description,
    save_description,
)
from .json_codec import (
    SCHEMA,
    decode_soc,
    decode_workload,
    dumps,
    encode_result,
    encode_soc,
    encode_workload,
    load,
    loads,
    save,
)

__all__ = [
    "SCHEMA",
    "decode_description",
    "decode_soc",
    "decode_workload",
    "dumps",
    "encode_description",
    "load_description",
    "save_description",
    "encode_result",
    "encode_soc",
    "encode_workload",
    "load",
    "loads",
    "save",
]
