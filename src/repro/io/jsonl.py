"""Shared torn-tail-tolerant JSONL reading.

Three append-only JSONL artifacts grew the same crash-tolerance
contract independently — sweep checkpoints
(:mod:`repro.resilience.checkpoint`), the benchmark history
(:mod:`repro.obs.bench`), and structured logs
(:mod:`repro.obs.logging`): a writer killed mid-append leaves at most
one partial final line, so a reader silently drops a torn *final*
line but fails loudly on corruption anywhere earlier (an artifact
worth appending to is an artifact worth refusing to misread).  The
evaluation service's result cache (:mod:`repro.serve`) is the fourth
such file.  :func:`read_jsonl_tolerant` is the one implementation of
that contract; the per-artifact readers supply only their decoding
and error flavor.
"""

from __future__ import annotations

import json
import os

from ..errors import SerializationError


def read_jsonl_tolerant(
    path,
    decode=None,
    *,
    error=SerializationError,
    label: str = "record",
) -> tuple:
    """Parse a JSONL file, tolerating a torn final line.

    Each non-blank line is JSON-parsed and passed through ``decode``
    (identity when ``None``).  A line that fails to parse or decode —
    ``decode`` signals a bad record by raising ``ValueError`` /
    ``KeyError`` / ``TypeError`` — is treated two ways:

    - on the **final** line it is a torn tail from an interrupted
      append and is silently dropped;
    - anywhere **earlier** it is corruption, raised as
      ``error(f"{path}:{lineno}: bad {label} (...)")``.

    The file is read as bytes and decoded per line: a write torn
    mid-UTF-8-sequence leaves invalid bytes that must count as a torn
    tail too, not escape as ``UnicodeDecodeError``.  Lines are framed
    on ``\\n`` alone — the writer's terminator — so torn bytes that
    happen to contain ``\\r``/``\\f`` stay one droppable tail instead
    of splitting into a "corrupt" earlier line.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        lines = handle.read().split(b"\n")
    if lines and not lines[-1]:
        lines.pop()  # the terminator of a complete final line
    records = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            document = json.loads(line.decode("utf-8"))
            records.append(
                document if decode is None else decode(document)
            )
        except (ValueError, KeyError, TypeError) as err:
            if lineno == len(lines):
                break  # torn tail from an interrupted append
            raise error(
                f"{path}:{lineno}: bad {label} ({err})"
            ) from None
    return tuple(records)


def append_jsonl(path, document: dict) -> None:
    """Append one JSON document as a line, flushing eagerly.

    The write is a single ``write`` call of one ``\\n``-terminated
    line, so a concurrent :func:`read_jsonl_tolerant` sees either
    nothing or a parseable record — plus at most the torn tail the
    reader already tolerates.  NaN/Infinity are rejected
    (``allow_nan=False``): an append-only artifact must never poison
    its own future reads.
    """
    line = json.dumps(document, allow_nan=False, sort_keys=True)
    with open(os.fspath(path), "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
