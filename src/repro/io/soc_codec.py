"""JSON round-trip for full SoC descriptions (IPs + fabric hierarchy).

Complements :mod:`repro.io.json_codec` (which handles the model-level
``SoCSpec``/``Workload``): architects store the richer
:class:`~repro.soc.description.SoCDescription` sketch once and lower
it to model inputs per analysis.
"""

from __future__ import annotations

import json

from ..errors import SerializationError
from ..soc.description import FabricTier, IPInstance, SoCDescription
from .json_codec import SCHEMA, _decode_finite


def encode_description(description: SoCDescription) -> dict:
    """SoCDescription -> JSON-ready dict."""
    return {
        "kind": "soc-description",
        "schema": SCHEMA,
        "name": description.name,
        "memory_bandwidth": description.memory_bandwidth,
        "fabrics": [
            {
                "name": fabric.name,
                "bandwidth": fabric.bandwidth,
                "parent": fabric.parent,
            }
            for fabric in description.fabrics
        ],
        "ips": [
            {
                "name": ip.name,
                "kind": ip.kind,
                "peak_perf": ip.peak_perf,
                "bandwidth": ip.bandwidth,
                "fabric": ip.fabric,
                "local_memory_bytes": ip.local_memory_bytes,
            }
            for ip in description.ips
        ],
    }


def decode_description(document: dict, source=None) -> SoCDescription:
    """JSON dict -> SoCDescription (re-validates everything).

    ``source`` (a file path) is woven into decode errors; non-finite
    numbers are rejected with ``SERIALIZATION_NONFINITE``.
    """
    if not isinstance(document, dict):
        raise SerializationError("expected an object")
    if document.get("kind") != "soc-description":
        raise SerializationError(
            f"expected kind 'soc-description', got {document.get('kind')!r}"
        )
    if document.get("schema") != SCHEMA:
        raise SerializationError(
            f"unsupported schema {document.get('schema')!r}"
        )
    try:
        fabrics = tuple(
            FabricTier(
                name=entry["name"],
                bandwidth=_decode_finite(
                    entry["bandwidth"], f"fabrics[{index}].bandwidth",
                    source,
                ),
                parent=entry.get("parent"),
            )
            for index, entry in enumerate(document.get("fabrics", []))
        )
        ips = tuple(
            IPInstance(
                name=entry["name"],
                kind=entry["kind"],
                peak_perf=_decode_finite(
                    entry["peak_perf"], f"ips[{index}].peak_perf", source
                ),
                bandwidth=_decode_finite(
                    entry["bandwidth"], f"ips[{index}].bandwidth", source
                ),
                fabric=entry.get("fabric"),
                local_memory_bytes=_decode_finite(
                    entry.get("local_memory_bytes", 0.0),
                    f"ips[{index}].local_memory_bytes",
                    source,
                ),
            )
            for index, entry in enumerate(document["ips"])
        )
        return SoCDescription(
            name=document.get("name", "soc"),
            memory_bandwidth=_decode_finite(
                document["memory_bandwidth"], "memory_bandwidth", source
            ),
            fabrics=fabrics,
            ips=ips,
        )
    except (KeyError, TypeError) as err:
        raise SerializationError(
            f"malformed soc-description document: {err}"
        ) from err


def save_description(description: SoCDescription, path) -> None:
    """Write a description to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(encode_description(description), handle, indent=2,
                  sort_keys=True, allow_nan=False)


def load_description(path) -> SoCDescription:
    """Read a description back from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as err:
            raise SerializationError(f"invalid JSON: {err}") from err
    return decode_description(document, source=str(path))
