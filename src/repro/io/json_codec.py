"""JSON serialization for model inputs and results.

Specs and workloads round-trip (``encode`` then ``decode`` is
identity); results export one-way for logging and comparison.  Every
document carries a ``"kind"`` tag and a ``"schema"`` version so stored
files stay debuggable.

Infinity-valued intensities (perfect reuse) are encoded as the string
``"inf"`` because JSON has no infinity literal.
"""

from __future__ import annotations

import json
import math

from ..core.params import IPBlock, SoCSpec, Workload
from ..core.result import GablesResult
from ..errors import SerializationError

#: Current document schema version.
SCHEMA = 1


def _encode_number(value: float):
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_number(value, field: str) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SerializationError(f"{field} must be a number, got {value!r}")
    return float(value)


def encode_soc(soc: SoCSpec) -> dict:
    """SoCSpec -> JSON-ready dict."""
    return {
        "kind": "soc",
        "schema": SCHEMA,
        "name": soc.name,
        "peak_perf": soc.peak_perf,
        "memory_bandwidth": soc.memory_bandwidth,
        "ips": [
            {
                "name": ip.name,
                "acceleration": ip.acceleration,
                "bandwidth": _encode_number(ip.bandwidth),
            }
            for ip in soc.ips
        ],
    }


def decode_soc(document: dict) -> SoCSpec:
    """JSON dict -> SoCSpec (validates via the dataclass)."""
    _expect_kind(document, "soc")
    try:
        ips = tuple(
            IPBlock(
                name=entry["name"],
                acceleration=float(entry["acceleration"]),
                bandwidth=_decode_number(entry["bandwidth"], "ip bandwidth"),
            )
            for entry in document["ips"]
        )
        return SoCSpec(
            peak_perf=float(document["peak_perf"]),
            memory_bandwidth=float(document["memory_bandwidth"]),
            ips=ips,
            name=document.get("name", "soc"),
        )
    except (KeyError, TypeError) as err:
        raise SerializationError(f"malformed soc document: {err}") from err


def encode_workload(workload: Workload) -> dict:
    """Workload -> JSON-ready dict."""
    return {
        "kind": "workload",
        "schema": SCHEMA,
        "name": workload.name,
        "fractions": list(workload.fractions),
        "intensities": [_encode_number(i) for i in workload.intensities],
    }


def decode_workload(document: dict) -> Workload:
    """JSON dict -> Workload (validates via the dataclass)."""
    _expect_kind(document, "workload")
    try:
        return Workload(
            fractions=tuple(float(f) for f in document["fractions"]),
            intensities=tuple(
                _decode_number(i, "intensity") for i in document["intensities"]
            ),
            name=document.get("name", "usecase"),
        )
    except (KeyError, TypeError) as err:
        raise SerializationError(f"malformed workload document: {err}") from err


def encode_result(result: GablesResult) -> dict:
    """GablesResult -> JSON-ready dict (export only)."""
    return {
        "kind": "result",
        "schema": SCHEMA,
        "attainable": result.attainable,
        "bottleneck": result.bottleneck,
        "binding_components": list(result.binding_components),
        "memory_time": result.memory_time,
        "average_intensity": _encode_number(result.average_intensity),
        "ip_terms": [
            {
                "name": term.name,
                "fraction": term.fraction,
                "intensity": _encode_number(term.intensity),
                "time": term.time,
                "limiter": term.limiter,
            }
            for term in result.ip_terms
        ],
        "extra_times": dict(result.extra_times),
    }


_DECODERS = {"soc": decode_soc, "workload": decode_workload}


def _expect_kind(document: dict, kind: str) -> None:
    if not isinstance(document, dict):
        raise SerializationError(f"expected an object, got {type(document).__name__}")
    got = document.get("kind")
    if got != kind:
        raise SerializationError(f"expected kind {kind!r}, got {got!r}")
    schema = document.get("schema")
    if schema != SCHEMA:
        raise SerializationError(
            f"unsupported schema {schema!r} (this library reads {SCHEMA})"
        )


def dumps(obj) -> str:
    """Serialize a SoCSpec / Workload / GablesResult to a JSON string."""
    if isinstance(obj, SoCSpec):
        document = encode_soc(obj)
    elif isinstance(obj, Workload):
        document = encode_workload(obj)
    elif isinstance(obj, GablesResult):
        document = encode_result(obj)
    else:
        raise SerializationError(f"cannot serialize {type(obj).__name__}")
    return json.dumps(document, indent=2, sort_keys=True)


def loads(text: str):
    """Deserialize a JSON string into a SoCSpec or Workload."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as err:
        raise SerializationError(f"invalid JSON: {err}") from err
    if not isinstance(document, dict):
        raise SerializationError("top-level JSON value must be an object")
    kind = document.get("kind")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise SerializationError(
            f"unknown or non-loadable kind {kind!r}; loadable: "
            f"{sorted(_DECODERS)}"
        )
    return decoder(document)


def save(obj, path) -> None:
    """Serialize ``obj`` to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(obj))


def load(path):
    """Deserialize a SoCSpec or Workload from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
