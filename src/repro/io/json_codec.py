"""JSON serialization for model inputs and results.

Specs and workloads round-trip (``encode`` then ``decode`` is
identity); results export one-way for logging and comparison.  Every
document carries a ``"kind"`` tag and a ``"schema"`` version so stored
files stay debuggable.

Infinity-valued intensities (perfect reuse) are encoded as the string
``"inf"`` because JSON has no infinity literal.  Decoding *rejects*
raw ``NaN``/``Infinity`` tokens (which Python's ``json`` would happily
parse) with a :class:`~repro.errors.SerializationError` carrying the
``SERIALIZATION_NONFINITE`` code and naming both the offending field
and the source file — a truncated or corrupted measurement log fails
loudly at the boundary instead of poisoning downstream arithmetic.
"""

from __future__ import annotations

import json
import math

from ..core.params import IPBlock, SoCSpec, Workload
from ..core.result import GablesResult
from ..errors import SerializationError

#: Current document schema version.
SCHEMA = 1


def _encode_number(value: float):
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _where(field: str, source) -> str:
    """``field`` qualified by the source file path, when known."""
    return f"{field} in {source}" if source else field


def _nonfinite(value, field: str, source) -> SerializationError:
    return SerializationError(
        f"non-finite value {value!r} for {_where(field, source)}; "
        'encode infinite intensities/bandwidths as the string "inf"',
        code="SERIALIZATION_NONFINITE",
    )


def _decode_number(value, field: str, source=None) -> float:
    """A number that may legitimately be the string-encoded infinity."""
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SerializationError(
            f"{_where(field, source)} must be a number, got {value!r}"
        )
    if math.isnan(value) or math.isinf(value):
        raise _nonfinite(value, field, source)
    return float(value)


def _decode_finite(value, field: str, source=None) -> float:
    """A number with no infinity escape hatch: must be finite."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SerializationError(
            f"{_where(field, source)} must be a number, got {value!r}"
        )
    if not math.isfinite(value):
        raise _nonfinite(value, field, source)
    return float(value)


def encode_soc(soc: SoCSpec) -> dict:
    """SoCSpec -> JSON-ready dict."""
    return {
        "kind": "soc",
        "schema": SCHEMA,
        "name": soc.name,
        "peak_perf": soc.peak_perf,
        "memory_bandwidth": soc.memory_bandwidth,
        "ips": [
            {
                "name": ip.name,
                "acceleration": ip.acceleration,
                "bandwidth": _encode_number(ip.bandwidth),
            }
            for ip in soc.ips
        ],
    }


def decode_soc(document: dict, source=None) -> SoCSpec:
    """JSON dict -> SoCSpec (validates via the dataclass)."""
    _expect_kind(document, "soc")
    try:
        ips = tuple(
            IPBlock(
                name=entry["name"],
                acceleration=_decode_finite(
                    entry["acceleration"], f"ips[{index}].acceleration",
                    source,
                ),
                bandwidth=_decode_number(
                    entry["bandwidth"], f"ips[{index}].bandwidth", source
                ),
            )
            for index, entry in enumerate(document["ips"])
        )
        return SoCSpec(
            peak_perf=_decode_finite(
                document["peak_perf"], "peak_perf", source
            ),
            memory_bandwidth=_decode_finite(
                document["memory_bandwidth"], "memory_bandwidth", source
            ),
            ips=ips,
            name=document.get("name", "soc"),
        )
    except (KeyError, TypeError) as err:
        raise SerializationError(f"malformed soc document: {err}") from err


def encode_workload(workload: Workload) -> dict:
    """Workload -> JSON-ready dict."""
    return {
        "kind": "workload",
        "schema": SCHEMA,
        "name": workload.name,
        "fractions": list(workload.fractions),
        "intensities": [_encode_number(i) for i in workload.intensities],
    }


def decode_workload(document: dict, source=None) -> Workload:
    """JSON dict -> Workload (validates via the dataclass)."""
    _expect_kind(document, "workload")
    try:
        return Workload(
            fractions=tuple(
                _decode_finite(f, f"fractions[{index}]", source)
                for index, f in enumerate(document["fractions"])
            ),
            intensities=tuple(
                _decode_number(i, f"intensities[{index}]", source)
                for index, i in enumerate(document["intensities"])
            ),
            name=document.get("name", "usecase"),
        )
    except (KeyError, TypeError) as err:
        raise SerializationError(f"malformed workload document: {err}") from err


def encode_result(result: GablesResult) -> dict:
    """GablesResult -> JSON-ready dict (export only)."""
    return {
        "kind": "result",
        "schema": SCHEMA,
        "attainable": result.attainable,
        "bottleneck": result.bottleneck,
        "binding_components": list(result.binding_components),
        "memory_time": result.memory_time,
        "average_intensity": _encode_number(result.average_intensity),
        "ip_terms": [
            {
                "name": term.name,
                "fraction": term.fraction,
                "intensity": _encode_number(term.intensity),
                "time": term.time,
                "limiter": term.limiter,
            }
            for term in result.ip_terms
        ],
        "extra_times": dict(result.extra_times),
    }


_DECODERS = {"soc": decode_soc, "workload": decode_workload}


def _expect_kind(document: dict, kind: str) -> None:
    if not isinstance(document, dict):
        raise SerializationError(f"expected an object, got {type(document).__name__}")
    got = document.get("kind")
    if got != kind:
        raise SerializationError(f"expected kind {kind!r}, got {got!r}")
    schema = document.get("schema")
    if schema != SCHEMA:
        raise SerializationError(
            f"unsupported schema {schema!r} (this library reads {SCHEMA})"
        )


def dumps(obj) -> str:
    """Serialize a SoCSpec / Workload / GablesResult to a JSON string."""
    if isinstance(obj, SoCSpec):
        document = encode_soc(obj)
    elif isinstance(obj, Workload):
        document = encode_workload(obj)
    elif isinstance(obj, GablesResult):
        document = encode_result(obj)
    else:
        raise SerializationError(f"cannot serialize {type(obj).__name__}")
    # allow_nan=False: never *write* the non-finite tokens decode rejects.
    return json.dumps(document, indent=2, sort_keys=True, allow_nan=False)


def loads(text: str, source=None):
    """Deserialize a JSON string into a SoCSpec or Workload.

    ``source`` (a file path) is woven into decode errors so a bad
    field is reported as ``fractions[2] in /path/to/usecase.json``.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as err:
        raise SerializationError(f"invalid JSON: {err}") from err
    if not isinstance(document, dict):
        raise SerializationError("top-level JSON value must be an object")
    kind = document.get("kind")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise SerializationError(
            f"unknown or non-loadable kind {kind!r}; loadable: "
            f"{sorted(_DECODERS)}"
        )
    return decoder(document, source=source)


def save(obj, path) -> None:
    """Serialize ``obj`` to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(obj))


def load(path):
    """Deserialize a SoCSpec or Workload from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), source=str(path))
