"""Empirical roofline sweep driver (paper Section IV-A).

Following the Empirical Roofline Toolkit methodology the paper adopted,
the driver runs Algorithm 1 across a grid of operational intensities
(the unroll ladder) and array footprints (cache sweep) on one simulated
engine, recording attained GFLOP/s per configuration.  The resulting
samples are the *pessimistic* roofline estimate the paper argues for:
attainable-by-construction, possibly below the true ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SpecError
from ..obs.metrics import counter as _counter
from ..obs.profile import profile_scope as _profile_scope
from ..obs.trace import span as _span
from ..resilience.checkpoint import SweepCheckpoint, sample_key
from ..resilience.faults import FaultInjector, FaultPlan
from ..resilience.faults import fault_plan as _named_fault_plan
from ..resilience.retry import call_with_retry, reject_outliers_mad
from ..sim.kernel import KernelSpec
from ..sim.platform import SimulatedSoC
from ..units import KIB

_SWEEP_RUNS = _counter("ert.sweep.runs")
_SWEEP_POINTS = _counter("ert.sweep.points")

#: Default intensity ladder: 1/16 to 1024 ops/byte in powers of two.
DEFAULT_INTENSITIES = tuple(2.0**k for k in range(-4, 11))

#: Default footprint ladder: 16 KiB to 512 MiB in powers of four.
DEFAULT_FOOTPRINTS = tuple(16 * KIB * 4**k for k in range(8))

#: Which kernel variant the paper used per engine kind.
VARIANT_BY_ENGINE = {"CPU": "inplace", "GPU": "stream", "DSP": "inplace"}


@dataclass(frozen=True)
class RooflineSample:
    """One (footprint, intensity) measurement."""

    engine: str
    elements: int
    footprint_bytes: float
    intensity: float
    gflops: float
    service_level: str

    @property
    def attained_bandwidth(self) -> float:
        """Bytes/s implied by the attained rate and the intensity."""
        return self.gflops * 1e9 / self.intensity


@dataclass(frozen=True)
class SweepResult:
    """All samples of one engine's empirical sweep.

    ``faults`` carries the provenance summary of the fault injector
    active during the sweep (``None`` for a clean run).
    """

    engine: str
    variant: str
    simd: bool
    samples: tuple
    faults: dict | None = None

    def at_intensity(self, intensity: float) -> tuple:
        """Samples of one intensity column, ordered by footprint."""
        selected = [s for s in self.samples if s.intensity == intensity]
        return tuple(sorted(selected, key=lambda s: s.footprint_bytes))

    def dram_samples(self) -> tuple:
        """Samples whose working set spilled to DRAM."""
        return tuple(s for s in self.samples if s.service_level == "DRAM")

    def intensities(self) -> tuple:
        """Distinct intensities measured, ascending."""
        return tuple(sorted({s.intensity for s in self.samples}))

    def max_gflops(self) -> float:
        """Best attained rate anywhere in the sweep."""
        return max(s.gflops for s in self.samples)


def run_sweep(
    platform: SimulatedSoC,
    engine: str,
    intensities=DEFAULT_INTENSITIES,
    footprints=DEFAULT_FOOTPRINTS,
    variant: str | None = None,
    simd: bool = False,
    repeats: int = 1,
    noise: float = 0.0,
    seed: int = 0,
    fault_plan=None,
    retry_policy=None,
    checkpoint=None,
) -> SweepResult:
    """Measure one engine's empirical roofline on a simulated platform.

    Parameters
    ----------
    platform, engine:
        Where to run.
    intensities:
        Ops/byte ladder (the compiled-in unroll depths).
    footprints:
        Working-set sizes in bytes; each is converted to an element
        count for the engine's kernel variant.
    variant:
        Kernel traffic shape; defaults to the paper's choice for the
        engine name (stream for GPUs, in-place update otherwise).
    simd:
        Vector-compile the kernel (the paper's NEON aside).
    repeats:
        Runs per configuration; the **best** run is kept, mirroring
        the paper's methodology ("repeatedly benchmark this kernel ...
        to seek the best achievable performance").
    noise:
        Relative one-sided measurement degradation (0.05 = runs lose
        up to ~5% to interference).  Noise only ever *reduces* attained
        performance — the pessimistic-estimate framing — and is drawn
        from a seeded RNG so sweeps stay reproducible.
    fault_plan:
        A :class:`repro.resilience.FaultPlan` (or registered plan name)
        attached to the platform for the duration of the sweep; the
        same ``seed`` seeds the injector, so sweeps under faults are
        bitwise reproducible.  Any injector already attached to the
        platform is restored afterwards.
    retry_policy:
        A :class:`repro.resilience.RetryPolicy`; each sample's
        measurement is retried per the policy when it raises
        :class:`~repro.errors.MeasurementError` (an injected dropout,
        or a real one on hardware), and repeat sets are trimmed by MAD
        outlier rejection before the best-of reduction.  Without a
        policy, a dropout propagates to the caller.
    checkpoint:
        Path or :class:`repro.resilience.SweepCheckpoint`; completed
        samples are appended as JSONL and replayed on resume.  Note a
        resumed sweep skips the RNG draws of replayed samples.
    """
    if not intensities:
        raise SpecError("need at least one intensity")
    if not footprints:
        raise SpecError("need at least one footprint")
    if repeats < 1:
        raise SpecError(f"repeats must be >= 1, got {repeats}")
    if noise < 0 or noise >= 1:
        raise SpecError(f"noise must lie in [0, 1), got {noise!r}")
    rng = None
    if noise > 0:
        import numpy as np

        rng = np.random.default_rng(seed)
    variant = variant or VARIANT_BY_ENGINE.get(engine, "inplace")

    injector = None
    if fault_plan is not None:
        plan = (
            _named_fault_plan(fault_plan)
            if isinstance(fault_plan, str)
            else fault_plan
        )
        if not isinstance(plan, FaultPlan):
            raise SpecError("fault_plan must be a FaultPlan or plan name")
        injector = FaultInjector(plan, seed=seed)
    if checkpoint is not None and not isinstance(checkpoint, SweepCheckpoint):
        checkpoint = SweepCheckpoint(checkpoint)

    _SWEEP_RUNS.inc()
    previous_injector = platform.fault_injector
    if injector is not None:
        platform.attach_faults(injector)
    try:
        with _span(
            "ert.run_sweep",
            engine=engine,
            variant=variant,
            grid=len(intensities) * len(footprints),
        ), _profile_scope("ert.run_sweep"):
            samples = _sweep_samples(
                platform, engine, intensities, footprints, variant, simd,
                repeats, rng, noise, retry_policy, checkpoint,
            )
    finally:
        if injector is not None:
            platform.attach_faults(previous_injector)

    active = injector if injector is not None else platform.fault_injector
    return SweepResult(
        engine=engine,
        variant=variant,
        simd=simd,
        samples=tuple(samples),
        faults=active.summary() if active is not None else None,
    )


def _sweep_samples(
    platform, engine, intensities, footprints, variant, simd, repeats,
    rng, noise, retry_policy, checkpoint,
) -> list:
    samples = []
    for footprint in footprints:
        # The stream variant keeps two arrays resident; size each so the
        # *total* footprint matches the requested working set.
        arrays = 2 if variant == "stream" else 1
        elements = max(1, int(footprint / (4 * arrays)))
        for intensity in intensities:
            kernel = KernelSpec(
                elements=elements, variant=variant, simd=simd
            ).with_intensity(intensity)
            key = sample_key(
                engine=engine,
                variant=variant,
                simd=simd,
                footprint=float(kernel.footprint_bytes),
                intensity=float(intensity),
            )
            if checkpoint is not None:
                cached = checkpoint.get(key)
                if cached is not None:
                    _SWEEP_POINTS.inc()
                    samples.append(
                        RooflineSample(
                            engine=engine,
                            elements=elements,
                            footprint_bytes=kernel.footprint_bytes,
                            intensity=intensity,
                            gflops=float(cached["gflops"]),
                            service_level=str(cached["service_level"]),
                        )
                    )
                    continue
            best_gflops, service_level = _measure_sample(
                platform, engine, kernel, intensity, repeats, rng, noise,
                retry_policy,
            )
            _SWEEP_POINTS.inc()
            if checkpoint is not None:
                checkpoint.record(
                    key,
                    {"gflops": best_gflops, "service_level": service_level},
                )
            samples.append(
                RooflineSample(
                    engine=engine,
                    elements=elements,
                    footprint_bytes=kernel.footprint_bytes,
                    intensity=intensity,
                    gflops=best_gflops,
                    service_level=service_level,
                )
            )
    return samples


def _measure_sample(
    platform, engine, kernel, intensity, repeats, rng, noise, retry_policy
) -> tuple:
    """Best (gflops, service_level) over the repeat set for one config.

    With a retry policy, each repeat retries injected dropouts and the
    repeat set is MAD-trimmed before the best-of reduction; without
    one, a :class:`~repro.errors.MeasurementError` propagates.
    """
    observations = []
    with _profile_scope("ert.measure"):
        for _ in range(repeats):
            def attempt():
                return platform.run_kernel(engine, kernel)

            if retry_policy is not None:
                result = call_with_retry(
                    attempt,
                    retry_policy,
                    context=(
                        f"{engine} sample at I={intensity:g}, "
                        f"{kernel.footprint_bytes:g} B"
                    ),
                )
            else:
                result = attempt()
            observed = result.gflops
            if rng is not None:
                observed *= 1.0 - noise * float(rng.random())
            observations.append((observed, result.service_level))
    values = [value for value, _ in observations]
    if retry_policy is not None:
        with _profile_scope("ert.outlier_reject"):
            values = reject_outliers_mad(values, retry_policy.mad_threshold)
    best = max(values)
    service_level = next(
        level for value, level in observations if value == best
    )
    return best, service_level
