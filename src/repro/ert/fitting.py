"""Roofline extraction from empirical sweep samples.

Turns a :class:`~repro.ert.sweep.SweepResult` into the two numbers a
roofline needs — attained compute peak and attained memory bandwidth —
plus per-cache-level bandwidth ceilings, and packages them as a
:class:`~repro.core.roofline.Roofline` so the measured chips plug
straight into the Gables model (the paper's Section IV workflow).

Extraction logic mirrors how the ERT reports are read by hand:

- the **compute peak** is the best rate at high intensity (where no
  bandwidth can bind);
- the **DRAM bandwidth** is the best implied bytes/s among samples
  whose working set spilled past every cache *and* whose intensity
  kept them bandwidth-bound;
- each **cache level's bandwidth** is the same statistic restricted to
  samples served by that level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.params import IPBlock, SoCSpec
from ..core.roofline import Ceiling, Roofline
from ..errors import FittingError
from ..obs.profile import profiled as _profiled
from .sweep import SweepResult

#: A sample counts as bandwidth-bound when it attains less than this
#: share of the sweep's best rate.
_BW_BOUND_SHARE = 0.95


@dataclass(frozen=True)
class EmpiricalRoofline:
    """The fitted ceilings of one engine.

    Attributes
    ----------
    engine:
        Engine name.
    peak_gflops:
        Attained compute ceiling (the paper's "pessimistic" estimate).
    dram_bandwidth:
        Attained bytes/s from DRAM-resident working sets.
    cache_bandwidths:
        Level name -> attained bytes/s for cache-resident sets.
    ridge_point:
        ``peak / dram_bandwidth`` in ops/byte.
    """

    engine: str
    peak_gflops: float
    dram_bandwidth: float
    cache_bandwidths: dict

    @property
    def ridge_point(self) -> float:
        """Intensity where the DRAM slant meets the compute roof."""
        return self.peak_gflops * 1e9 / self.dram_bandwidth

    def to_roofline(self) -> Roofline:
        """Package as a model-ready :class:`Roofline`.

        Cache bandwidths become named bandwidth *ceilings* above the
        DRAM roofline — strictly they are higher roofs for resident
        working sets; we encode them as ceilings of an inverted
        roofline the way ERT plots overlay them.  For Gables inputs the
        DRAM numbers are the ones to use (inter-IP data travels via
        DRAM in the base model).
        """
        return Roofline(
            peak_perf=self.peak_gflops * 1e9,
            peak_bandwidth=max(
                [self.dram_bandwidth, *self.cache_bandwidths.values()]
            ),
            ceilings=(
                Ceiling("DRAM", "bandwidth", self.dram_bandwidth),
            ),
            name=self.engine,
        )


@_profiled("ert.fit_roofline")
def fit_roofline(sweep: SweepResult) -> EmpiricalRoofline:
    """Extract the empirical roofline from a sweep.

    Raises :class:`~repro.errors.FittingError` when the sweep lacks
    DRAM-resident samples (footprints never left the caches) or lacks a
    compute-bound region (every sample bandwidth-bound).
    """
    if not sweep.samples:
        raise FittingError(f"sweep for {sweep.engine!r} has no samples")
    peak = sweep.max_gflops()

    dram = [s for s in sweep.dram_samples() if s.gflops < _BW_BOUND_SHARE * peak]
    if not dram:
        raise FittingError(
            f"sweep for {sweep.engine!r} has no bandwidth-bound DRAM "
            "samples; extend the footprint or lower the intensity ladder"
        )
    # Use only the largest footprint: working sets just past the last
    # cache still get partial hits, overstating sustainable DRAM rate.
    asymptote = max(s.footprint_bytes for s in dram)
    dram_bandwidth = max(
        s.attained_bandwidth for s in dram if s.footprint_bytes == asymptote
    )

    compute_bound = [s for s in sweep.samples if s.gflops >= _BW_BOUND_SHARE * peak]
    if not compute_bound:
        raise FittingError(
            f"sweep for {sweep.engine!r} never reached a compute roof; "
            "raise the intensity ladder"
        )

    cache_bandwidths: dict = {}
    for sample in sweep.samples:
        if sample.service_level == "DRAM":
            continue
        if sample.gflops >= _BW_BOUND_SHARE * peak:
            continue  # compute-bound: implies nothing about the level
        implied = sample.attained_bandwidth
        current = cache_bandwidths.get(sample.service_level, 0.0)
        cache_bandwidths[sample.service_level] = max(current, implied)
    # Drop levels slower than DRAM's asymptote (boundary artifacts).
    cache_bandwidths = {
        level: bw
        for level, bw in cache_bandwidths.items()
        if bw > dram_bandwidth
    }

    return EmpiricalRoofline(
        engine=sweep.engine,
        peak_gflops=peak,
        dram_bandwidth=dram_bandwidth,
        cache_bandwidths=cache_bandwidths,
    )


def acceleration_between(
    reference: EmpiricalRoofline, accelerator: EmpiricalRoofline
) -> float:
    """``Ai`` estimate: accelerator peak over reference peak.

    The paper: ``A1 = 349.6 / 7.5 = 46.6 ~ 47x`` for the Adreno GPU
    against the non-NEON CPU roofline.
    """
    if reference.peak_gflops <= 0:
        raise FittingError("reference peak must be positive")
    return accelerator.peak_gflops / reference.peak_gflops


def measured_soc_spec(
    reference: EmpiricalRoofline,
    others,
    memory_bandwidth: float | None = None,
    name: str = "measured",
) -> SoCSpec:
    """Assemble the measured engines into a model-ready SoC.

    The Section IV hand-off made executable: ``Ppeak`` is the reference
    engine's attained peak, each other engine contributes its ``Ai``
    (peak ratio, :func:`acceleration_between`) and ``Bi`` (attained
    DRAM bytes/s), and ``Bpeak`` defaults to the best attained DRAM
    bandwidth among all engines (the shared interface can move at
    least what any one engine drove through it).  The returned
    :class:`~repro.core.params.SoCSpec` plugs directly into the model
    front door — ``evaluate_variant(spec, workload, variant)`` — so
    measured chips run through the same lowered pipeline as paper
    specs.
    """
    others = tuple(others)
    if memory_bandwidth is None:
        memory_bandwidth = max(
            fitted.dram_bandwidth for fitted in (reference, *others)
        )
    if memory_bandwidth <= 0:
        raise FittingError("memory bandwidth must be positive")
    ips = [IPBlock(reference.engine, 1.0, reference.dram_bandwidth)]
    ips += [
        IPBlock(
            fitted.engine,
            acceleration_between(reference, fitted),
            fitted.dram_bandwidth,
        )
        for fitted in others
    ]
    return SoCSpec(
        peak_perf=reference.peak_gflops * 1e9,
        memory_bandwidth=memory_bandwidth,
        ips=tuple(ips),
        name=name,
    )


def optimistic_roofline(
    engine: str, spec_gflops: float, spec_bandwidth: float
) -> EmpiricalRoofline:
    """The manufacturer-specification ("optimistic") estimate.

    The paper contrasts spec-sheet rooflines (never exceedable, maybe
    unattainable) with micro-benchmarked ones (attainable, maybe a
    ceiling).  This helper represents the former in the same shape so
    the two can be compared numerically.
    """
    if spec_gflops <= 0 or spec_bandwidth <= 0:
        raise FittingError("spec numbers must be positive")
    return EmpiricalRoofline(
        engine=f"{engine} (spec)",
        peak_gflops=spec_gflops,
        dram_bandwidth=spec_bandwidth,
        cache_bandwidths={},
    )


def pessimism_ratio(
    optimistic: EmpiricalRoofline, pessimistic: EmpiricalRoofline
) -> dict:
    """How far below spec the measured ceilings sit.

    Returns ``{"compute": measured/spec, "bandwidth": measured/spec}``;
    the paper's examples: GPU compute 349.6/567 ~ 0.62, CPU read+write
    bandwidth 15.1/30 ~ 0.50.
    """
    if math.isclose(optimistic.peak_gflops, 0) or math.isclose(
        optimistic.dram_bandwidth, 0
    ):
        raise FittingError("optimistic roofline must be positive")
    return {
        "compute": pessimistic.peak_gflops / optimistic.peak_gflops,
        "bandwidth": pessimistic.dram_bandwidth / optimistic.dram_bandwidth,
    }
