"""Empirical Roofline Toolkit driver for the simulated SoC.

Reproduces the paper's Section IV methodology: sweep Algorithm 1 over
intensity and footprint grids on one engine (:func:`run_sweep`),
extract the attained ceilings (:func:`fit_roofline`), and derive the
Gables hardware parameters from the measurements
(:func:`acceleration_between`, :func:`gables_parameter_table`).
"""

from .fitting import (
    EmpiricalRoofline,
    acceleration_between,
    fit_roofline,
    measured_soc_spec,
    optimistic_roofline,
    pessimism_ratio,
)
from .report import (
    gables_parameter_table,
    roofline_summary,
    sweep_table,
    variant_prediction_table,
)
from .sweep import (
    DEFAULT_FOOTPRINTS,
    DEFAULT_INTENSITIES,
    VARIANT_BY_ENGINE,
    RooflineSample,
    SweepResult,
    run_sweep,
)

__all__ = [
    "DEFAULT_FOOTPRINTS",
    "DEFAULT_INTENSITIES",
    "EmpiricalRoofline",
    "RooflineSample",
    "SweepResult",
    "VARIANT_BY_ENGINE",
    "acceleration_between",
    "fit_roofline",
    "gables_parameter_table",
    "measured_soc_spec",
    "optimistic_roofline",
    "pessimism_ratio",
    "roofline_summary",
    "run_sweep",
    "sweep_table",
    "variant_prediction_table",
]
