"""Human-readable reports for empirical roofline measurements.

Formats the Section IV artifacts — per-engine rooflines (Figs. 7a, 7b,
9) and the derived Gables hardware parameters — as plain-text tables
for the CLI and the benchmark harness.
"""

from __future__ import annotations

from ..core.variants import evaluate_variant
from ..units import format_bandwidth, format_flops, format_ops
from .fitting import EmpiricalRoofline, acceleration_between
from .sweep import SweepResult


def roofline_summary(fitted: EmpiricalRoofline) -> str:
    """One engine's fitted ceilings as the paper's figure labels.

    E.g. ``"7.5 GFLOP/s (Maximum), DRAM - 15.1 GB/s"``.
    """
    lines = [
        f"{fitted.engine}: "
        f"{format_flops(fitted.peak_gflops * 1e9)} (Maximum), "
        f"DRAM - {format_bandwidth(fitted.dram_bandwidth)}",
    ]
    for level, bandwidth in sorted(fitted.cache_bandwidths.items()):
        lines.append(f"  {level} - {format_bandwidth(bandwidth)}")
    lines.append(f"  ridge point: {fitted.ridge_point:.3g} ops/byte")
    return "\n".join(lines)


def sweep_table(sweep: SweepResult, max_rows: int | None = None) -> str:
    """The raw sweep as an aligned text table."""
    header = (
        f"{'footprint':>12} {'intensity':>10} {'GFLOP/s':>10} {'level':>6}"
    )
    rows = [f"# engine={sweep.engine} variant={sweep.variant} simd={sweep.simd}",
            header]
    samples = sweep.samples[:max_rows] if max_rows else sweep.samples
    for s in samples:
        rows.append(
            f"{s.footprint_bytes:>12.3g} {s.intensity:>10.4g} "
            f"{s.gflops:>10.4g} {s.service_level:>6}"
        )
    if max_rows and len(sweep.samples) > max_rows:
        rows.append(f"... ({len(sweep.samples) - max_rows} more)")
    return "\n".join(rows)


def variant_prediction_table(soc, workload, variants) -> str:
    """Model predictions for a measured SoC under several variants.

    ``soc`` is typically :func:`repro.ert.fitting.measured_soc_spec`'s
    output; each :class:`~repro.core.variants.ModelVariant` in
    ``variants`` runs through the lowered pipeline and contributes one
    row of attainable performance plus its binding component — the
    measured-versus-modeled comparison of Section IV extended to every
    formulation of the model.
    """
    rows = [f"{'variant':>14} {'attainable':>14} {'bottleneck':>14}"]
    for variant in variants:
        result = evaluate_variant(
            soc, workload if variant.requires_workload else None, variant
        )
        rows.append(
            f"{variant.kind:>14} "
            f"{format_ops(result.attainable) + 'ops/s':>14} "
            f"{result.bottleneck:>14}"
        )
    return "\n".join(rows)


def gables_parameter_table(reference: EmpiricalRoofline, others) -> str:
    """The measured chips as Gables hardware inputs.

    ``Ppeak`` comes from the reference engine; each other engine
    contributes its ``Ai`` (peak ratio) and ``Bi`` (DRAM bandwidth).
    """
    rows = [
        f"{'IP':>8} {'A_i':>8} {'B_i':>12} {'peak':>14}",
        f"{reference.engine:>8} {1.0:>8.3g} "
        f"{format_bandwidth(reference.dram_bandwidth):>12} "
        f"{format_flops(reference.peak_gflops * 1e9):>14}",
    ]
    for fitted in others:
        rows.append(
            f"{fitted.engine:>8} "
            f"{acceleration_between(reference, fitted):>8.3g} "
            f"{format_bandwidth(fitted.dram_bandwidth):>12} "
            f"{format_flops(fitted.peak_gflops * 1e9):>14}"
        )
    return "\n".join(rows)
