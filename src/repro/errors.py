"""Exception hierarchy for the Gables reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause
while still being able to distinguish configuration problems from
evaluation problems.

Every subclass carries two stable, machine-readable attributes:

``code``
    A default ``UPPER_SNAKE`` error code.  Raise sites may attach a
    finer-grained code from :data:`FINE_GRAINED_CODES` via the
    keyword-only ``code=`` constructor argument — automated callers
    (batch drivers, the CLI, CI) dispatch on codes, never on message
    text.
``exit_code``
    The process exit status the CLI maps this class to.  Exit codes are
    distinct per class (and asserted so by ``tests/test_errors.py``),
    so shell pipelines can tell a malformed input file (8) from a
    measurement that never converged (10).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""

    code = "REPRO_ERROR"
    exit_code = 2

    def __init__(self, *args, code: str | None = None) -> None:
        super().__init__(*args)
        if code is not None:
            self.code = code


class SpecError(ReproError, ValueError):
    """A hardware specification is malformed or inconsistent.

    Raised when constructing or validating :class:`repro.core.SoCSpec`
    and related hardware description objects (e.g. a negative bandwidth,
    an acceleration ``A0 != 1`` for IP[0], or a bus matrix whose shape
    does not match the IP count).
    """

    code = "SPEC_INVALID"
    exit_code = 3


class WorkloadError(ReproError, ValueError):
    """A software usecase description is malformed.

    Raised for invalid work fractions (negative, or not summing to one),
    non-positive operational intensities, or a workload whose IP count
    does not match the SoC it is evaluated against.
    """

    code = "WORKLOAD_INVALID"
    exit_code = 4


class EvaluationError(ReproError, RuntimeError):
    """Model evaluation could not produce a well-defined answer."""

    code = "EVALUATION_FAILED"
    exit_code = 5


class SimulationError(ReproError, RuntimeError):
    """The simulated SoC substrate reached an inconsistent state."""

    code = "SIMULATION_FAILED"
    exit_code = 6


class FittingError(ReproError, RuntimeError):
    """Empirical roofline extraction failed (e.g. too few samples)."""

    code = "FITTING_FAILED"
    exit_code = 7


class SerializationError(ReproError, ValueError):
    """A document could not be encoded to or decoded from JSON."""

    code = "SERIALIZATION_FAILED"
    exit_code = 8


class ObservabilityError(ReproError, RuntimeError):
    """The instrumentation layer was misused or hit bad telemetry data.

    Raised by :mod:`repro.obs` for metric type conflicts (a name
    registered as a counter requested as a gauge), invalid metric
    updates, and malformed trace files handed to the summarizer.
    """

    code = "OBSERVABILITY_FAILED"
    exit_code = 9


class MeasurementError(ReproError, RuntimeError):
    """An empirical measurement failed and its retry budget ran out.

    Raised by the ERT sweep driver (:mod:`repro.ert.sweep`) when a
    sample drops out — an injected measurement fault, or a real one on
    hardware — and the active :class:`repro.resilience.RetryPolicy`
    exhausts its attempts or its per-sample time budget.
    """

    code = "MEASUREMENT_FAILED"
    exit_code = 10


class ServeError(ReproError, RuntimeError):
    """The evaluation service rejected or could not finish a request.

    Raised by :mod:`repro.serve` for request-layer problems that are
    not model errors: malformed request envelopes, unknown endpoints,
    admission-control shedding, expired deadlines, a draining server,
    and worker crashes.  Raise sites always attach a fine-grained
    ``SERVE_*`` code from :data:`FINE_GRAINED_CODES`; the HTTP status
    each code maps to lives in :data:`repro.serve.HTTP_STATUS_BY_CODE`.
    """

    code = "SERVE_FAILED"
    exit_code = 11


#: Fine-grained instance codes raise sites attach via ``code=``, mapped
#: to the class that is allowed to carry them.  The catalog is the
#: contract automated callers dispatch on; ``tests/test_errors.py``
#: asserts it is unique and that every code maps to a ReproError class.
FINE_GRAINED_CODES: dict = {
    "SPEC_NEGATIVE_BANDWIDTH": SpecError,
    "SPEC_NONPOSITIVE_PEAK": SpecError,
    "WORKLOAD_FRACTION_RANGE": WorkloadError,
    "WORKLOAD_FRACTION_SUM": WorkloadError,
    "WORKLOAD_INTENSITY_NONPOSITIVE": WorkloadError,
    "EVAL_DEGENERATE_POINT": EvaluationError,
    "SERIALIZATION_NONFINITE": SerializationError,
    "MEASUREMENT_DROPOUT": MeasurementError,
    "MEASUREMENT_TIMEOUT": MeasurementError,
    "MEASUREMENT_RETRIES_EXHAUSTED": MeasurementError,
    "MEASUREMENT_DEADLINE_EXCEEDED": MeasurementError,
    "SERVE_BAD_REQUEST": ServeError,
    "SERVE_UNKNOWN_ENDPOINT": ServeError,
    "SERVE_METHOD_NOT_ALLOWED": ServeError,
    "SERVE_PAYLOAD_TOO_LARGE": ServeError,
    "SERVE_DEADLINE_EXCEEDED": ServeError,
    "SERVE_OVERLOADED": ServeError,
    "SERVE_SHUTTING_DOWN": ServeError,
    "SERVE_WORKER_CRASHED": ServeError,
    "OBS_EXPOSITION_MALFORMED": ObservabilityError,
    "SLO_BAD_OBJECTIVE": ObservabilityError,
    "SLO_BURN_RATE_EXCEEDED": ObservabilityError,
}


def error_classes() -> tuple:
    """Every :class:`ReproError` subclass (including the base), sorted.

    Walks ``__subclasses__`` recursively so the catalog tests cannot go
    stale when a new subclass is added without a code.
    """
    seen = {ReproError}
    frontier = [ReproError]
    while frontier:
        for sub in frontier.pop().__subclasses__():
            if sub not in seen:
                seen.add(sub)
                frontier.append(sub)
    return tuple(sorted(seen, key=lambda cls: cls.__name__))


def exit_code_for(err: BaseException) -> int:
    """The CLI exit status for an exception (2 for unknown ReproErrors)."""
    return int(getattr(err, "exit_code", 2))
