"""Exception hierarchy for the Gables reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause
while still being able to distinguish configuration problems from
evaluation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SpecError(ReproError, ValueError):
    """A hardware specification is malformed or inconsistent.

    Raised when constructing or validating :class:`repro.core.SoCSpec`
    and related hardware description objects (e.g. a negative bandwidth,
    an acceleration ``A0 != 1`` for IP[0], or a bus matrix whose shape
    does not match the IP count).
    """


class WorkloadError(ReproError, ValueError):
    """A software usecase description is malformed.

    Raised for invalid work fractions (negative, or not summing to one),
    non-positive operational intensities, or a workload whose IP count
    does not match the SoC it is evaluated against.
    """


class EvaluationError(ReproError, RuntimeError):
    """Model evaluation could not produce a well-defined answer."""


class SimulationError(ReproError, RuntimeError):
    """The simulated SoC substrate reached an inconsistent state."""


class FittingError(ReproError, RuntimeError):
    """Empirical roofline extraction failed (e.g. too few samples)."""


class SerializationError(ReproError, ValueError):
    """A document could not be encoded to or decoded from JSON."""


class ObservabilityError(ReproError, RuntimeError):
    """The instrumentation layer was misused or hit bad telemetry data.

    Raised by :mod:`repro.obs` for metric type conflicts (a name
    registered as a counter requested as a gauge), invalid metric
    updates, and malformed trace files handed to the summarizer.
    """
