"""Shared validation helpers used by parameter dataclasses.

These helpers raise the library's own exception types with messages
that name the offending field, so a user mis-specifying an SoC or a
workload gets an actionable error instead of a NaN three calls later.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from .errors import SpecError, WorkloadError

#: Tolerance used when checking that work fractions sum to one.
FRACTION_SUM_TOL = 1e-9


def require_finite_positive(value: float, name: str, exc: type = SpecError) -> float:
    """Return ``value`` if it is a finite number strictly greater than zero."""
    value = _as_float(value, name, exc)
    if not math.isfinite(value) or value <= 0:
        raise exc(f"{name} must be a finite positive number, got {value!r}")
    return value


def require_positive(value: float, name: str, exc: type = SpecError) -> float:
    """Return ``value`` if it is strictly positive (``inf`` allowed).

    Infinite values are meaningful for some inputs: an operational
    intensity of ``inf`` models perfect reuse (no off-chip traffic) and
    an infinite bus bandwidth models an unconstrained link.
    """
    value = _as_float(value, name, exc)
    if math.isnan(value) or value <= 0:
        raise exc(f"{name} must be positive, got {value!r}")
    return value


def require_nonnegative(value: float, name: str, exc: type = SpecError) -> float:
    """Return ``value`` if it is a finite number >= 0."""
    value = _as_float(value, name, exc)
    if not math.isfinite(value) or value < 0:
        raise exc(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def require_fraction(value: float, name: str, exc: type = WorkloadError) -> float:
    """Return ``value`` if it lies in the closed interval [0, 1]."""
    value = _as_float(value, name, exc)
    if not math.isfinite(value) or value < 0 or value > 1:
        raise exc(f"{name} must lie in [0, 1], got {value!r}")
    return value


def require_probability(value: float, name: str, exc: type = SpecError) -> float:
    """Alias of :func:`require_fraction` with a spec-flavoured default error."""
    return require_fraction(value, name, exc)


def require_fractions_sum_to_one(
    fractions: Sequence[float], name: str, exc: type = WorkloadError
) -> None:
    """Check that ``fractions`` are non-negative and sum to one."""
    for index, fraction in enumerate(fractions):
        require_fraction(fraction, f"{name}[{index}]", exc)
    total = math.fsum(fractions)
    if abs(total - 1.0) > FRACTION_SUM_TOL:
        raise exc(f"{name} must sum to 1, got sum {total!r}")


def require_same_length(
    a: Sequence, b: Sequence, a_name: str, b_name: str, exc: type = SpecError
) -> None:
    """Check that two parallel sequences have equal lengths."""
    if len(a) != len(b):
        raise exc(
            f"{a_name} and {b_name} must have the same length, "
            f"got {len(a)} and {len(b)}"
        )


def as_float_tuple(values: Iterable[float], name: str, exc: type = SpecError) -> tuple:
    """Coerce an iterable of numbers to an immutable tuple of floats."""
    try:
        return tuple(float(v) for v in values)
    except (TypeError, ValueError) as err:
        raise exc(f"{name} must be an iterable of numbers: {err}") from err


def _as_float(value: float, name: str, exc: type) -> float:
    if isinstance(value, bool):
        raise exc(f"{name} must be a number, got bool {value!r}")
    try:
        return float(value)
    except (TypeError, ValueError) as err:
        raise exc(f"{name} must be a number, got {value!r}") from err
