"""One-shot regeneration of every paper artifact to files.

``gables figures --out DIR`` (or :func:`generate_all`) writes the full
reproduction bundle: SVG charts for every figure, text for every
table, and the interactive explorer — the artifact set a reader checks
against the paper side by side.
"""

from __future__ import annotations

from pathlib import Path

from .errors import SpecError


def generate_all(out_dir) -> dict:
    """Write every artifact into ``out_dir``; returns name -> path.

    Deterministic: the simulator and the market generator are seeded,
    so repeated runs produce identical bytes.
    """
    out = Path(out_dir)
    if out.exists() and not out.is_dir():
        raise SpecError(f"{out} exists and is not a directory")
    out.mkdir(parents=True, exist_ok=True)
    written: dict = {}

    def save(name: str, content: str) -> None:
        path = out / name
        path.write_text(content, encoding="utf-8")
        written[name] = path

    # --- Figure 2: market series ------------------------------------
    from .market import generate_market_dataset, ip_count_by_generation
    from .viz import bar_chart_svg

    dataset = generate_market_dataset()
    save("fig2a_chipsets_per_year.svg", bar_chart_svg(
        dataset.introductions_by_year(),
        title="Figure 2a: new SoC chipsets per year (synthetic)",
        x_label="year", y_label="chipsets",
    ))
    save("fig2b_ips_per_generation.svg", bar_chart_svg(
        ip_count_by_generation(),
        title="Figure 2b: IP blocks per SoC generation",
        x_label="generation", y_label="IP blocks",
    ))

    # --- Figure 1: the classic roofline the paper reprints ----------
    from .core import Ceiling, Roofline
    from .viz import classic_roofline_plot, roofline_svg as _roofline_svg

    classic = Roofline(
        peak_perf=42e9,
        peak_bandwidth=20e9,
        ceilings=(
            Ceiling("no-SIMD", "compute", 7.5e9),
            Ceiling("read+write", "bandwidth", 15.1e9),
        ),
        name="CPU",
    )
    save("fig1_classic_roofline.svg", _roofline_svg(
        classic_roofline_plot(classic, intensity=2.0,
                              title="Figure 1: the Roofline model")
    ))

    # --- Figure 3 / Figure 4: block diagrams ------------------------
    from .soc import generic_soc
    from .usecases import wifi_streaming
    from .viz import dataflow_diagram_svg, soc_diagram_svg

    save("fig3_soc_block_diagram.svg", soc_diagram_svg(generic_soc()))
    save("fig4_wifi_streaming_dataflow.svg",
         dataflow_diagram_svg(wifi_streaming()))

    # --- Table I ------------------------------------------------------
    from .reports import report_table1

    save("table1_usecase_matrix.txt", report_table1() + "\n")

    # --- Figure 6: the walkthrough ------------------------------------
    from .core import FIGURE_6_SEQUENCE
    from .reports import report_fig6
    from .viz import RooflinePlotData, roofline_svg, save_interactive_report

    save("fig6_appendix_numbers.txt", report_fig6() + "\n")
    for scenario in FIGURE_6_SEQUENCE:
        data = RooflinePlotData.from_model(
            scenario.soc(), scenario.workload(), title=scenario.name
        )
        save(f"{scenario.name}_scaled_rooflines.svg", roofline_svg(data))
    explorer = out / "fig6d_interactive_explorer.html"
    last = FIGURE_6_SEQUENCE[-1]
    save_interactive_report(last.soc(), last.workload(), explorer,
                            title="Figure 6d explorer")
    written[explorer.name] = explorer

    # --- Figures 7-9: the measured rooflines and the mixing grid ----
    from .ert import fit_roofline, gables_parameter_table, run_sweep
    from .reports import report_fig7, report_fig8, report_fig9
    from .sim import run_mixing_sweep, simulated_snapdragon_835
    from .viz import line_chart_svg

    platform = simulated_snapdragon_835()
    save("fig7_cpu_gpu_rooflines.txt", report_fig7() + "\n")
    save("fig9_dsp_roofline.txt", report_fig9() + "\n")
    fits = {
        engine: fit_roofline(run_sweep(platform, engine))
        for engine in ("CPU", "GPU", "DSP")
    }
    save("gables_parameters_measured.txt", gables_parameter_table(
        fits["CPU"], [fits["GPU"], fits["DSP"]]) + "\n")

    mixing = run_mixing_sweep(platform)
    save("fig8_mixing_grid.txt", report_fig8() + "\n")
    series = {
        f"I={int(intensity)}": [
            (p.fraction, p.normalized) for p in mixing.line(intensity)
        ]
        for intensity in mixing.intensities()
    }
    save("fig8_mixing_lines.svg", line_chart_svg(
        series,
        title="Figure 8: CPU+GPU mixing (simulated SD835)",
        x_label="fraction of work at GPU (f)",
        y_label="normalized performance",
        log_y=True,
    ))

    # --- The analytic Fig. 8 surface (upper bound) -------------------
    from .core import IPBlock, SoCSpec
    from .explore import analytic_mixing_grid
    from .viz import heatmap_svg

    measured_soc = SoCSpec(
        peak_perf=fits["CPU"].peak_gflops * 1e9,
        memory_bandwidth=30e9,
        ips=(
            IPBlock("CPU", 1.0, fits["CPU"].dram_bandwidth),
            IPBlock(
                "GPU",
                fits["GPU"].peak_gflops / fits["CPU"].peak_gflops,
                fits["GPU"].dram_bandwidth,
            ),
        ),
        name="measured-sd835",
    )
    grid = analytic_mixing_grid(measured_soc)
    save("fig8_analytic_upper_bound.svg", heatmap_svg(
        grid,
        title="Figure 8 analytic upper bound (Gables)",
        normalize_to=grid.at(0.0, 1.0).attainable,
    ))
    return written


def main_figures(out_dir) -> int:
    """CLI driver: generate and list the bundle."""
    written = generate_all(out_dir)
    for name in sorted(written):
        print(f"wrote {written[name]}")
    print(f"{len(written)} artifacts in {out_dir}")
    return 0
