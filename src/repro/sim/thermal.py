"""Thermal throttling model for the simulated SoC.

The paper stresses that its FP-intensive microbenchmark overheats
phones — "performance can vary significantly from one run to another"
— so all measurements were taken in a thermally controlled unit with
monitoring governors disabled.  The simulator reproduces both regimes:

- ``thermally_controlled=True`` (the paper's chamber): no throttling,
  perfectly repeatable numbers;
- uncontrolled: a first-order thermal RC model heats the die with the
  run's power draw; when the junction temperature would exceed the
  limit, the governor scales the sustained rate down to the power the
  package can dissipate.

The model is deterministic: "variance" across back-to-back runs is
modeled by the starting temperature carried over from the previous
run, the dominant real-world effect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import require_finite_positive, require_nonnegative
from ..errors import SpecError


@dataclass(frozen=True)
class ThermalSpec:
    """Package thermal parameters.

    Parameters
    ----------
    ambient_c:
        Ambient temperature, Celsius.
    limit_c:
        Junction temperature at which the governor throttles.
    resistance_c_per_w:
        Thermal resistance junction->ambient (C/W): steady-state rise
        is ``power * resistance``.
    time_constant_s:
        RC time constant of the package.
    sustainable_watts:
        Convenience: power at which steady-state just touches the limit
        (``(limit - ambient) / resistance``).
    """

    ambient_c: float = 25.0
    limit_c: float = 75.0
    resistance_c_per_w: float = 12.0
    time_constant_s: float = 30.0

    def __post_init__(self) -> None:
        require_finite_positive(self.resistance_c_per_w, "resistance_c_per_w")
        require_finite_positive(self.time_constant_s, "time_constant_s")
        if self.limit_c <= self.ambient_c:
            raise SpecError(
                f"limit_c ({self.limit_c}) must exceed ambient_c ({self.ambient_c})"
            )

    @property
    def sustainable_watts(self) -> float:
        """Steady-state power budget before throttling engages."""
        return (self.limit_c - self.ambient_c) / self.resistance_c_per_w


class ThermalState:
    """Mutable die temperature evolved across simulated runs.

    ``fault_source`` is an optional zero-argument callable returning a
    forced-governor multiplier in (0, 1] — how
    :class:`repro.resilience.FaultInjector` injects throttle episodes
    that fire *even in the controlled chamber* (a heat-soaked die from
    a previous tenant the governor reacts to regardless of our
    monitoring setup).
    """

    def __init__(
        self,
        spec: ThermalSpec,
        controlled: bool = True,
        fault_source=None,
    ) -> None:
        self.spec = spec
        self.controlled = controlled
        self.temperature_c = spec.ambient_c
        self.fault_source = fault_source

    def reset(self) -> None:
        """Cool the die back to ambient (e.g. between benchmark sets)."""
        self.temperature_c = self.spec.ambient_c

    def fault_factor(self) -> float:
        """Injected forced-throttle multiplier (1.0 when no faults)."""
        if self.fault_source is None:
            return 1.0
        return float(self.fault_source())

    def throttle_factor(self, power_watts: float) -> float:
        """Rate multiplier the governor imposes for a sustained draw.

        In the controlled chamber this is always 1.0 apart from
        injected fault episodes.  Otherwise, if the steady-state
        temperature for ``power_watts`` exceeds the limit, the
        sustained rate is scaled so dissipation matches the budget; a
        hot die (from previous runs) has less headroom.
        """
        require_nonnegative(power_watts, "power_watts")
        if power_watts == 0:
            return 1.0
        fault = self.fault_factor()
        if self.controlled:
            return fault
        headroom_c = self.spec.limit_c - self.temperature_c
        if headroom_c <= 0:
            # Already at/above limit: only the sustainable share runs.
            base = self.spec.sustainable_watts / power_watts \
                if power_watts > self.spec.sustainable_watts else 1.0
            return base * fault
        steady_rise = power_watts * self.spec.resistance_c_per_w
        allowed_rise = self.spec.limit_c - self.spec.ambient_c
        if steady_rise <= allowed_rise:
            return fault
        return allowed_rise / steady_rise * fault

    def time_to_limit(self, power_watts: float) -> float:
        """Seconds until the die reaches the governor limit at ``power``.

        Returns ``inf`` when the steady-state temperature for this power
        never reaches the limit (or in controlled mode), and 0 when the
        die is already at/above it.  First-order RC response.
        """
        require_nonnegative(power_watts, "power_watts")
        if self.controlled:
            return math.inf
        target = self.spec.ambient_c + power_watts * self.spec.resistance_c_per_w
        if target <= self.spec.limit_c:
            return math.inf
        if self.temperature_c >= self.spec.limit_c:
            return 0.0
        # temp(t) = target + (T0 - target) * exp(-t / tau); solve = limit.
        ratio = (target - self.temperature_c) / (target - self.spec.limit_c)
        return self.spec.time_constant_s * math.log(ratio)

    def advance(self, power_watts: float, duration_s: float) -> None:
        """Evolve die temperature through a run of the given power.

        First-order response toward the steady-state temperature for
        ``power_watts``, clamped at the governor limit.
        """
        require_nonnegative(power_watts, "power_watts")
        require_nonnegative(duration_s, "duration_s")
        if self.controlled:
            return
        target = min(
            self.spec.ambient_c + power_watts * self.spec.resistance_c_per_w,
            self.spec.limit_c,
        )
        decay = math.exp(-duration_s / self.spec.time_constant_s)
        self.temperature_c = target + (self.temperature_c - target) * decay
