"""Compute-engine models for the simulated SoC.

An engine is a throughput model of one programmable IP: scalar FLOP
rate, optional SIMD multiplier, thread/workgroup count (which gates how
much of the peak small problems can use), and the memory hierarchy it
streams through.  Engines deliberately stay at the fidelity Gables
needs — attained rate as a function of kernel shape — not cycle level.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import require_finite_positive
from ..errors import SpecError
from .memory import MemoryHierarchy


@dataclass(frozen=True)
class ComputeEngine:
    """One programmable engine (CPU complex, GPU, DSP scalar unit).

    Parameters
    ----------
    name:
        Engine name (matches the SoC description's IP instance).
    scalar_flops:
        Peak FLOP/s without SIMD/vector issue — what the paper's plain
        C kernel attains (e.g. 7.5 GFLOP/s on the Kryo CPU).
    simd_multiplier:
        Peak gain from full vector issue (e.g. the paper's >5x NEON
        gain on the CPU).  1.0 for engines whose quoted rate already
        assumes full-width issue (the GPU numbers do).
    parallel_lanes:
        Hardware contexts that must all be fed to reach peak (cores x
        threads, or workgroups).  Problems smaller than
        ``min_elements_per_lane * parallel_lanes`` attain
        proportionally less — visible as a left-edge droop in measured
        rooflines.
    hierarchy:
        The engine's cache hierarchy and DRAM path.
    write_fraction:
        Share of the kernel's traffic that is writes (the paper's CPU
        kernel updates in place: 0.5; its GPU stream variant also reads
        one array and writes another: 0.5).
    min_elements_per_lane:
        Elements each lane needs to reach full utilization.
    supports_float:
        False for engines that cannot run the single-precision kernel
        at all (e.g. the Hexagon HVX *vector* unit is integer-only —
        the paper had to measure the scalar unit instead).
    """

    name: str
    scalar_flops: float
    hierarchy: MemoryHierarchy
    simd_multiplier: float = 1.0
    parallel_lanes: int = 1
    write_fraction: float = 0.5
    min_elements_per_lane: int = 1024
    supports_float: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("ComputeEngine name must be non-empty")
        require_finite_positive(self.scalar_flops, f"{self.name!r} scalar_flops")
        require_finite_positive(self.simd_multiplier, f"{self.name!r} simd_multiplier")
        if self.simd_multiplier < 1.0:
            raise SpecError(f"{self.name!r} simd_multiplier must be >= 1")
        if self.parallel_lanes < 1:
            raise SpecError(f"{self.name!r} parallel_lanes must be >= 1")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise SpecError(f"{self.name!r} write_fraction must lie in [0, 1]")
        if self.min_elements_per_lane < 1:
            raise SpecError(f"{self.name!r} min_elements_per_lane must be >= 1")

    def peak_flops(self, simd: bool = False) -> float:
        """Peak FLOP/s with or without vectorization."""
        return self.scalar_flops * (self.simd_multiplier if simd else 1.0)

    def utilization(self, elements: int) -> float:
        """Fraction of peak reachable for a problem of ``elements``.

        Small problems cannot fill every lane: utilization ramps
        linearly until each lane has ``min_elements_per_lane`` work.
        """
        if elements < 1:
            raise SpecError(f"elements must be >= 1, got {elements}")
        needed = self.parallel_lanes * self.min_elements_per_lane
        return min(1.0, elements / needed)

    def attained_flops(
        self,
        elements: int,
        flops_per_byte: float,
        simd: bool = False,
        bandwidth_cap: float | None = None,
        write_fraction: float | None = None,
        footprint_bytes: float | None = None,
        dram_derate: float = 1.0,
    ) -> float:
        """Steady-state FLOP/s for a streaming kernel on this engine.

        The engine-level roofline: compute bound is the (possibly
        SIMD) peak derated by lane utilization; bandwidth bound is the
        hierarchy's streaming bandwidth for the kernel's footprint —
        optionally capped from outside (fabric share or contended DRAM
        allocation) — times the kernel's intensity.

        Parameters
        ----------
        elements:
            Array elements the kernel walks (footprint/4 bytes).
        flops_per_byte:
            The kernel's operational intensity.
        simd:
            Whether the kernel is vectorized.
        bandwidth_cap:
            Externally-imposed bytes/s limit (contention or fabric).
        write_fraction:
            Traffic mix override (e.g. a read-only kernel); defaults to
            the engine's configured mix.
        footprint_bytes:
            Resident working set override (a two-array streaming kernel
            occupies twice its element count); defaults to one array of
            single-precision words.
        dram_derate:
            Transient DRAM-interface multiplier in (0, 1] — an injected
            bandwidth-degradation episode
            (:mod:`repro.resilience.faults`); affects only the
            hierarchy's DRAM path.
        """
        require_finite_positive(flops_per_byte, "flops_per_byte")
        if not self.supports_float:
            raise SpecError(
                f"engine {self.name!r} cannot execute the floating-point kernel"
            )
        compute_bound = self.peak_flops(simd) * self.utilization(elements)
        footprint = footprint_bytes or elements * 4.0  # single-precision words
        mix = self.write_fraction if write_fraction is None else write_fraction
        bandwidth = self.hierarchy.streaming_bandwidth(
            footprint, mix, dram_derate=dram_derate
        )
        if bandwidth_cap is not None:
            bandwidth = min(bandwidth, bandwidth_cap)
        return min(compute_bound, bandwidth * flops_per_byte)

    def demand_bytes_per_second(
        self, elements: int, flops_per_byte: float, simd: bool = False
    ) -> float:
        """Bytes/s this engine *wants* from shared memory when unbounded.

        Used by the contention solver: an engine's demand is its
        compute-bound rate divided by intensity, capped by what its own
        hierarchy path can stream.
        """
        unbounded = self.attained_flops(elements, flops_per_byte, simd)
        return unbounded / flops_per_byte

    def dram_resident(self, footprint_bytes: float) -> bool:
        """True when a working set spills past all cache levels."""
        return self.hierarchy.service_level(footprint_bytes) == "DRAM"
