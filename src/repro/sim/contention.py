"""Max-min fair bandwidth sharing for contended resources.

When several simulated engines stream from DRAM at once, the memory
controller arbitrates.  We model the steady state as *max-min fair*
allocation: every flow gets its demand if possible; capacity left by
flows demanding less than an equal share is redistributed among the
rest (progressive filling).  This is the standard fluid model for fair
arbiters and is what makes the Fig. 8 mixing experiment's contention
behaviour emerge rather than being assumed.

Real controllers also lose some efficiency when interleaving distinct
request streams (bank conflicts, row-buffer thrash); the
``contention_efficiency`` hook derates total capacity as requester
count grows.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from .._validation import require_finite_positive, require_nonnegative
from ..errors import SpecError


def max_min_fair(capacity: float, demands: Sequence[float]) -> list:
    """Max-min fair shares of ``capacity`` for the given demands.

    Returns one allocation per demand, preserving order.  Demands of
    zero receive zero; if total demand fits, everyone gets their ask.

    >>> max_min_fair(10, [2, 5, 9])
    [2.0, 4.0, 4.0]
    """
    require_finite_positive(capacity, "capacity")
    demands = [require_nonnegative(d, f"demands[{i}]") for i, d in enumerate(demands)]
    allocations = [0.0] * len(demands)
    unsatisfied = [i for i, d in enumerate(demands) if d > 0]
    remaining = capacity
    while unsatisfied and remaining > 1e-12 * capacity:
        share = remaining / len(unsatisfied)
        # Satisfy every flow demanding no more than the current share.
        modest = [i for i in unsatisfied if demands[i] - allocations[i] <= share]
        if modest:
            for i in modest:
                grant = demands[i] - allocations[i]
                allocations[i] = demands[i]
                remaining -= grant
            unsatisfied = [i for i in unsatisfied if i not in set(modest)]
        else:
            for i in unsatisfied:
                allocations[i] += share
            remaining = 0.0
            unsatisfied = []
    return allocations


def contention_efficiency(n_requesters: int, per_extra_loss: float = 0.05,
                          floor: float = 0.7) -> float:
    """Fraction of peak capacity deliverable to ``n`` interleaved streams.

    One stream gets full capacity; each additional concurrent stream
    costs ``per_extra_loss`` (row-buffer locality loss) down to a
    ``floor``.  Defaults are conservative for LPDDR4-class parts.
    """
    if n_requesters < 0:
        raise SpecError(f"n_requesters must be >= 0, got {n_requesters}")
    if not 0 <= per_extra_loss < 1:
        raise SpecError(f"per_extra_loss must lie in [0, 1), got {per_extra_loss!r}")
    if not 0 < floor <= 1:
        raise SpecError(f"floor must lie in (0, 1], got {floor!r}")
    if n_requesters <= 1:
        return 1.0
    return max(floor, 1.0 - per_extra_loss * (n_requesters - 1))


def weighted_fair(capacity: float, demands: Sequence[float],
                  weights: Sequence[float]) -> list:
    """Weighted max-min fairness (QoS-style arbiter).

    Like :func:`max_min_fair` but unsatisfied flows fill in proportion
    to their weights — how real SoC memory controllers prioritize
    latency-critical IPs (display underflow beats CPU stalls).
    """
    require_finite_positive(capacity, "capacity")
    if len(demands) != len(weights):
        raise SpecError("demands and weights must have the same length")
    for i, w in enumerate(weights):
        require_finite_positive(w, f"weights[{i}]")
    demands = [require_nonnegative(d, f"demands[{i}]") for i, d in enumerate(demands)]
    allocations = [0.0] * len(demands)
    unsatisfied = [i for i, d in enumerate(demands) if d > 0]
    remaining = capacity
    while unsatisfied and remaining > 1e-12 * capacity:
        total_weight = math.fsum(weights[i] for i in unsatisfied)
        modest = [
            i
            for i in unsatisfied
            if demands[i] - allocations[i]
            <= remaining * weights[i] / total_weight
        ]
        if modest:
            for i in modest:
                grant = demands[i] - allocations[i]
                allocations[i] = demands[i]
                remaining -= grant
            unsatisfied = [i for i in unsatisfied if i not in set(modest)]
        else:
            for i in unsatisfied:
                allocations[i] += remaining * weights[i] / total_weight
            remaining = 0.0
            unsatisfied = []
    return allocations
