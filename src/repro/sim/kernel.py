"""The paper's Algorithm 1 micro-benchmark as a kernel specification.

The kernel walks an array of ``size`` single-precision words ``trials``
times, performing an unrolled chain of multiply-adds per element whose
length is compiled in (the ``FLOPS_PER_BYTE`` macro ladder in the
paper's pseudocode).  Varying the unroll depth controls operational
intensity; varying the array size moves the footprint across the cache
hierarchy.  Three traffic variants, matching Section IV-A/B:

- ``inplace`` — the CPU form: read each word, update it in place
  (4 bytes read + 4 written per element per trial);
- ``stream`` — the GPU form: stream-read one array, write another
  ("much like the CPU STREAM kernel");
- ``read_only`` — the paper's sanity-check variant (~20 GB/s vs
  15.1 GB/s read+write on the Snapdragon CPU).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import SpecError
from ..units import SP_WORD_BYTES

#: Traffic variants and their (bytes-moved, footprint-arrays) shape.
VARIANTS = {
    "inplace": {"bytes_per_element": 2 * SP_WORD_BYTES, "arrays": 1,
                "write_fraction": 0.5},
    "stream": {"bytes_per_element": 2 * SP_WORD_BYTES, "arrays": 2,
               "write_fraction": 0.5},
    "read_only": {"bytes_per_element": SP_WORD_BYTES, "arrays": 1,
                  "write_fraction": 0.0},
}


@dataclass(frozen=True)
class KernelSpec:
    """One configuration of the Algorithm 1 micro-benchmark.

    Parameters
    ----------
    elements:
        Array length in single-precision words (``size`` in the paper).
    trials:
        Outer repetitions; total work scales linearly.
    flops_per_element:
        Multiply-add chain length per element per trial.
    variant:
        Traffic shape: ``"inplace"`` | ``"stream"`` | ``"read_only"``.
    simd:
        Whether the kernel is vector-compiled (the paper's NEON case).
    """

    elements: int
    trials: int = 1
    flops_per_element: float = 2.0
    variant: str = "inplace"
    simd: bool = False

    def __post_init__(self) -> None:
        if self.elements < 1:
            raise SpecError(f"elements must be >= 1, got {self.elements}")
        if self.trials < 1:
            raise SpecError(f"trials must be >= 1, got {self.trials}")
        if self.flops_per_element <= 0:
            raise SpecError(
                f"flops_per_element must be positive, got {self.flops_per_element!r}"
            )
        if self.variant not in VARIANTS:
            raise SpecError(
                f"unknown variant {self.variant!r}; known: {sorted(VARIANTS)}"
            )

    @property
    def bytes_per_element(self) -> float:
        """Bytes moved per element per trial."""
        return VARIANTS[self.variant]["bytes_per_element"]

    @property
    def write_fraction(self) -> float:
        """Share of moved bytes that are writes."""
        return VARIANTS[self.variant]["write_fraction"]

    @property
    def footprint_bytes(self) -> float:
        """Resident working set (1 array in place, 2 for streaming)."""
        return self.elements * SP_WORD_BYTES * VARIANTS[self.variant]["arrays"]

    @property
    def intensity(self) -> float:
        """Operational intensity in FLOPs per byte moved."""
        return self.flops_per_element / self.bytes_per_element

    @property
    def total_flops(self) -> float:
        """FLOPs executed across all trials."""
        return self.elements * self.trials * self.flops_per_element

    @property
    def total_bytes(self) -> float:
        """Bytes moved across all trials."""
        return self.elements * self.trials * self.bytes_per_element

    def with_intensity(self, flops_per_byte: float) -> "KernelSpec":
        """The same kernel re-unrolled to hit a target intensity."""
        if flops_per_byte <= 0:
            raise SpecError(f"intensity must be positive, got {flops_per_byte!r}")
        return replace(
            self, flops_per_element=flops_per_byte * self.bytes_per_element
        )

    @classmethod
    def intensity_sweep(
        cls,
        elements: int,
        intensities,
        variant: str = "inplace",
        trials: int = 1,
        simd: bool = False,
    ) -> tuple:
        """Kernels covering a list of target intensities (ops/byte)."""
        base = cls(elements=elements, trials=trials, variant=variant, simd=simd)
        return tuple(base.with_intensity(i) for i in intensities)
