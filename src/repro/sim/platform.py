"""The assembled simulated SoC: engines + shared DRAM + fabrics + heat.

:class:`SimulatedSoC` is the stand-in for the paper's physical
Snapdragon devices.  It runs :class:`~repro.sim.kernel.KernelSpec`
micro-benchmarks on one engine (for the roofline sweeps of Figs. 7
and 9) or on several engines concurrently (for the Fig. 8 mixing
experiment), with:

- per-engine cache hierarchies shaping attained bandwidth vs footprint;
- a shared DRAM interface arbitrated max-min fair among concurrent
  DRAM-resident kernels, with an interleaving-efficiency derate;
- fabric caps for engines on slower fabrics (the Hexagon DSP case);
- host-routed coordination overhead for offloaded work — the paper's
  third usecase bottleneck ("the IPs are exposed as individual
  devices ... the CPU gets an explicit interruption") — modeled as
  extra non-useful ops per element on non-host engines in concurrent
  runs;
- an optional thermal governor (disabled in "thermally controlled
  unit" mode, the paper's measurement setup).

:func:`simulated_snapdragon_835` calibrates an instance to the paper's
published measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import require_finite_positive, require_nonnegative
from ..errors import SimulationError, SpecError
from ..obs.metrics import counter as _counter
from ..obs.metrics import histogram as _histogram
from ..obs.trace import span as _span
from ..units import GIGA, KIB, MIB
from .contention import contention_efficiency, max_min_fair, weighted_fair
from .engine import ComputeEngine
from .kernel import KernelSpec
from .memory import MemoryHierarchy, MemoryLevel
from .thermal import ThermalSpec, ThermalState

#: Simulator telemetry (see docs/observability.md for the name scheme).
_KERNEL_RUNS = _counter("sim.kernel.runs")
_KERNEL_RUNTIME = _histogram("sim.kernel.runtime_s")
_THROTTLE_EVENTS = _counter("sim.thermal.throttle_events")
_CONTENTION_ROUNDS = _counter("sim.dram.contention_rounds")
_CONCURRENT_RUNS = _counter("sim.concurrent.runs")


@dataclass(frozen=True)
class PowerModel:
    """Simple linear power model for one engine."""

    idle_watts: float = 0.1
    joules_per_gflop: float = 0.1
    joules_per_gbyte: float = 0.1

    def power(self, flops_per_s: float, bytes_per_s: float) -> float:
        """Sustained watts at the given compute and traffic rates."""
        require_nonnegative(flops_per_s, "flops_per_s")
        require_nonnegative(bytes_per_s, "bytes_per_s")
        return (
            self.idle_watts
            + self.joules_per_gflop * flops_per_s / GIGA
            + self.joules_per_gbyte * bytes_per_s / GIGA
        )


@dataclass(frozen=True)
class KernelResult:
    """Outcome of one simulated kernel run."""

    engine: str
    gflops: float  # attained useful GFLOP/s
    runtime_s: float
    intensity: float  # ops/byte of the kernel
    footprint_bytes: float
    service_level: str  # which memory level served the sweep
    throttle_factor: float  # 1.0 = no thermal throttling
    power_watts: float

    @property
    def attained_bandwidth(self) -> float:
        """Bytes/s the kernel actually streamed."""
        return self.gflops * GIGA / self.intensity


@dataclass(frozen=True)
class ConcurrentJob:
    """One engine's share of a concurrent run."""

    engine: str
    kernel: KernelSpec
    work_flops: float  # total useful FLOPs this job must complete

    def __post_init__(self) -> None:
        require_finite_positive(self.work_flops, "work_flops")


@dataclass(frozen=True)
class TimelineStep:
    """One fluid interval of a concurrent run.

    ``rates`` maps engine -> useful FLOP/s during [start_s, end_s);
    ``dram_shares`` maps engine -> allocated bytes/s for DRAM-resident
    jobs active in the interval.
    """

    start_s: float
    end_s: float
    rates: dict
    dram_shares: dict

    @property
    def duration_s(self) -> float:
        """Interval length."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class ConcurrentResult:
    """Outcome of a concurrent multi-engine run."""

    total_runtime_s: float
    job_runtimes: dict  # engine -> completion time
    total_flops: float
    throttle_factor: float
    timeline: tuple = ()

    @property
    def aggregate_gflops(self) -> float:
        """Useful GFLOP/s across all engines for the whole run."""
        return self.total_flops / self.total_runtime_s / GIGA

    def work_done(self, engine: str) -> float:
        """FLOPs an engine completed, integrated over the timeline."""
        return math.fsum(
            step.rates.get(engine, 0.0) * step.duration_s
            for step in self.timeline
        )


class SimulatedSoC:
    """A heterogeneous SoC behavioural simulator.

    Parameters
    ----------
    name:
        Platform label.
    engines:
        The programmable engines, host first (index 0 is the CPU that
        routes coordination).
    dram_bandwidth:
        Shared DRAM interface capacity, bytes/s (joint, all engines).
    fabric_caps:
        Optional engine-name -> bytes/s caps for engines behind slower
        fabrics.
    coordination_overhead_ops:
        Non-useful ops per element charged to *offloaded* (non-host)
        work in concurrent runs — dispatch, interrupts, rate-matching.
    thermal / thermally_controlled:
        Package thermals; controlled mode (default) never throttles,
        matching the paper's measurement chamber.
    power_models:
        Optional engine-name -> :class:`PowerModel`.
    """

    def __init__(
        self,
        name: str,
        engines,
        dram_bandwidth: float,
        fabric_caps: dict | None = None,
        coordination_overhead_ops: float = 1516.0,
        thermal: ThermalSpec | None = None,
        thermally_controlled: bool = True,
        power_models: dict | None = None,
    ) -> None:
        self.name = name
        self.engines = {engine.name: engine for engine in engines}
        if len(self.engines) != len(list(engines)):
            raise SpecError("engine names must be unique")
        if not self.engines:
            raise SpecError("SimulatedSoC needs at least one engine")
        self.host = next(iter(self.engines))
        self.dram_bandwidth = require_finite_positive(
            dram_bandwidth, "dram_bandwidth"
        )
        self.fabric_caps = dict(fabric_caps or {})
        for engine_name in self.fabric_caps:
            if engine_name not in self.engines:
                raise SpecError(f"fabric cap for unknown engine {engine_name!r}")
        self.coordination_overhead_ops = require_nonnegative(
            coordination_overhead_ops, "coordination_overhead_ops"
        )
        self.thermal = ThermalState(
            thermal or ThermalSpec(), controlled=thermally_controlled
        )
        self.power_models = dict(power_models or {})
        self.fault_injector = None

    def attach_faults(self, injector) -> None:
        """Attach a :class:`repro.resilience.FaultInjector` (or detach).

        While attached, every run consults the injector in a fixed
        order — dropout, then DRAM-bandwidth episode, then (inside the
        thermal model) forced-throttle episode, then multiplicative
        noise — so the injected timeline is a pure function of the
        injector's plan and seed.  Pass ``None`` to detach.
        """
        self.fault_injector = injector
        self.thermal.fault_source = (
            injector.throttle_factor if injector is not None else None
        )

    def _consult_faults(self, context: str) -> float:
        """Dropout check + DRAM derate draw for one run (1.0 = clean)."""
        injector = self.fault_injector
        if injector is None or not injector.plan.any_active:
            return 1.0
        injector.check_dropout(context)
        return injector.bandwidth_derate()

    def engine(self, name: str) -> ComputeEngine:
        """Look up an engine by name."""
        try:
            return self.engines[name]
        except KeyError:
            raise SpecError(
                f"platform {self.name!r} has no engine {name!r}; "
                f"available: {sorted(self.engines)}"
            ) from None

    def _power_model(self, name: str) -> PowerModel:
        return self.power_models.get(name, PowerModel())

    def _bandwidth_cap(self, engine_name: str) -> float:
        """Static per-engine cap from its fabric, if any."""
        return self.fabric_caps.get(engine_name, math.inf)

    # ------------------------------------------------------------------
    # Single-engine runs (roofline sweeps, Figs. 7 and 9)
    # ------------------------------------------------------------------

    def run_kernel(self, engine_name: str, kernel: KernelSpec) -> KernelResult:
        """Run Algorithm 1 on one engine; everything else is idle.

        The engine sees its full hierarchy bandwidth (capped by its
        fabric) and the whole DRAM interface; attained performance is
        its engine-level roofline at the kernel's intensity and
        footprint, derated by the thermal governor when uncontrolled.
        """
        _KERNEL_RUNS.inc()
        dram_derate = self._consult_faults(f"run_kernel on {engine_name!r}")
        with _span(
            "sim.run_kernel",
            engine=engine_name,
            intensity=kernel.intensity,
            footprint_bytes=kernel.footprint_bytes,
        ) as sp:
            result = self._run_kernel_impl(engine_name, kernel, dram_derate)
            sp.set_attribute("gflops", result.gflops)
            sp.set_attribute("service_level", result.service_level)
            sp.set_attribute("throttle_factor", result.throttle_factor)
        _KERNEL_RUNTIME.record(result.runtime_s)
        if result.throttle_factor < 1.0:
            _THROTTLE_EVENTS.inc()
        return result

    def _run_kernel_impl(
        self, engine_name: str, kernel: KernelSpec, dram_derate: float = 1.0
    ) -> KernelResult:
        engine = self.engine(engine_name)
        # Fabric and DRAM-interface caps gate off-chip traffic only;
        # cache/TCM-resident working sets never leave the engine.
        if engine.dram_resident(kernel.footprint_bytes):
            cap = min(
                self._bandwidth_cap(engine_name),
                self.dram_bandwidth * dram_derate,
            )
        else:
            cap = math.inf
        rate = engine.attained_flops(
            kernel.elements,
            kernel.intensity,
            simd=kernel.simd,
            bandwidth_cap=cap,
            write_fraction=kernel.write_fraction,
            footprint_bytes=kernel.footprint_bytes,
            dram_derate=dram_derate,
        )
        bytes_rate = rate / kernel.intensity
        power = self._power_model(engine_name).power(rate, bytes_rate)
        if rate <= 0:
            raise SimulationError(f"engine {engine_name!r} made no progress")

        # Transient thermal response: the run proceeds at full speed
        # until the die reaches the governor limit, then continues at
        # the sustainable-power rate.  A cold die therefore benchmarks
        # faster than a heat-soaked one — the run-to-run variance the
        # paper eliminated with its thermal chamber.
        full_speed_runtime = kernel.total_flops / rate
        time_to_limit = self.thermal.time_to_limit(power)
        if full_speed_runtime <= time_to_limit:
            runtime = full_speed_runtime
            self.thermal.advance(power, runtime)
        else:
            sustained_scale = min(
                1.0, self.thermal.spec.sustainable_watts / power
            )
            done_hot = rate * time_to_limit
            runtime = time_to_limit + (kernel.total_flops - done_hot) / (
                rate * sustained_scale
            )
            self.thermal.advance(power, time_to_limit)
            self.thermal.advance(power * sustained_scale,
                                 runtime - time_to_limit)
        # Injected faults degrade the *sustained* rate after the clean
        # thermal transient: a forced-governor episode (drawn inside the
        # thermal model, so it fires even in the controlled chamber)
        # and ambient multiplicative noise.
        fault_scale = self.thermal.fault_factor()
        if self.fault_injector is not None:
            fault_scale *= self.fault_injector.noise_factor()
        effective_rate = kernel.total_flops / runtime * fault_scale
        runtime = kernel.total_flops / effective_rate
        throttle = effective_rate / rate
        return KernelResult(
            engine=engine_name,
            gflops=effective_rate / GIGA,
            runtime_s=runtime,
            intensity=kernel.intensity,
            footprint_bytes=kernel.footprint_bytes,
            service_level=engine.hierarchy.service_level(kernel.footprint_bytes),
            throttle_factor=throttle,
            power_watts=power * throttle,
        )

    # ------------------------------------------------------------------
    # Concurrent runs (the Fig. 8 mixing experiment)
    # ------------------------------------------------------------------

    def _effective_rate(
        self,
        job: ConcurrentJob,
        dram_share: float | None,
        dram_derate: float = 1.0,
    ) -> float:
        """Useful FLOP/s for a job given its DRAM allocation.

        Offloaded (non-host) jobs pay the coordination overhead: of
        every ``F + overhead`` ops issued per element only ``F`` are
        useful.  The overhead consumes *issue slots*, so it derates the
        compute bound only — a memory-bound offload is still limited by
        its bandwidth, and min() keeps the two bounds separate.
        """
        engine = self.engine(job.engine)
        kernel = job.kernel
        if engine.dram_resident(kernel.footprint_bytes):
            cap = self._bandwidth_cap(job.engine)
            if dram_share is not None:
                cap = min(cap, dram_share)
        else:
            cap = math.inf
        compute_scale = 1.0
        if job.engine != self.host and self.coordination_overhead_ops > 0:
            useful = kernel.flops_per_element
            compute_scale = useful / (useful + self.coordination_overhead_ops)
        compute_bound = (
            engine.peak_flops(kernel.simd)
            * engine.utilization(kernel.elements)
            * compute_scale
        )
        bandwidth = engine.hierarchy.streaming_bandwidth(
            kernel.footprint_bytes, kernel.write_fraction,
            dram_derate=dram_derate,
        )
        bandwidth = min(bandwidth, cap)
        return min(compute_bound, bandwidth * kernel.intensity)

    def run_concurrent(self, jobs, qos_weights: dict | None = None
                       ) -> ConcurrentResult:
        """Run several kernels at once, sharing the DRAM interface.

        A fluid event loop: at each step, DRAM-resident jobs' demands
        are arbitrated over the (interleaving-derated) DRAM capacity —
        max-min fair by default, or weighted fair when ``qos_weights``
        maps engine names to arbiter weights (how real SoC memory
        controllers prioritize latency-critical IPs like the display
        pipeline) — every job progresses at its resulting rate, and
        time advances to the next completion, freeing that job's
        bandwidth for the survivors.
        """
        jobs = list(jobs)
        qos_weights = dict(qos_weights or {})
        for engine_name in qos_weights:
            if engine_name not in self.engines:
                raise SpecError(f"QoS weight for unknown engine {engine_name!r}")
        if not jobs:
            raise SpecError("run_concurrent needs at least one job")
        names = [job.engine for job in jobs]
        if len(set(names)) != len(names):
            raise SpecError(f"one job per engine, got {names!r}")
        for job in jobs:
            self.engine(job.engine)  # validate

        _CONCURRENT_RUNS.inc()
        dram_derate = self._consult_faults(
            f"run_concurrent on {', '.join(names)}"
        )
        with _span(
            "sim.run_concurrent", engines=",".join(names)
        ) as concurrent_span:
            result = self._run_concurrent_impl(jobs, qos_weights, dram_derate)
        concurrent_span.set_attribute("runtime_s", result.total_runtime_s)
        concurrent_span.set_attribute("steps", len(result.timeline))
        return result

    def _run_concurrent_impl(
        self, jobs, qos_weights, dram_derate: float = 1.0
    ) -> ConcurrentResult:
        remaining = {job.engine: job.work_flops for job in jobs}
        job_by_engine = {job.engine: job for job in jobs}
        completions: dict = {}
        timeline = []
        now = 0.0
        max_steps = 4 * len(jobs) + 8
        for _ in range(max_steps):
            active = [e for e, left in remaining.items() if left > 0]
            if not active:
                break
            _CONTENTION_ROUNDS.inc()
            dram_jobs = [
                e
                for e in active
                if self.engine(e).dram_resident(
                    job_by_engine[e].kernel.footprint_bytes
                )
            ]
            capacity = (
                self.dram_bandwidth * dram_derate
                * contention_efficiency(len(dram_jobs))
            )
            demands = []
            for e in dram_jobs:
                job = job_by_engine[e]
                # Demand if unconstrained by the shared interface.
                unconstrained = self._effective_rate(
                    job, dram_share=None, dram_derate=dram_derate
                )
                demands.append(unconstrained / job.kernel.intensity)
            if qos_weights and dram_jobs:
                weights = [qos_weights.get(e, 1.0) for e in dram_jobs]
                allocations = weighted_fair(capacity, demands, weights)
            else:
                allocations = max_min_fair(capacity, demands)
            shares = dict(zip(dram_jobs, allocations))

            rates = {}
            total_power = 0.0
            for e in active:
                job = job_by_engine[e]
                share = shares.get(e)
                rate = self._effective_rate(
                    job, dram_share=share, dram_derate=dram_derate
                )
                if rate <= 0:
                    raise SimulationError(f"job on {e!r} made no progress")
                rates[e] = rate
                total_power += self._power_model(e).power(
                    rate, rate / job.kernel.intensity
                )
            throttle = self.thermal.throttle_factor(total_power)
            if throttle < 1.0:
                _THROTTLE_EVENTS.inc()
            rates = {e: r * throttle for e, r in rates.items()}

            dt = min(remaining[e] / rates[e] for e in active)
            timeline.append(
                TimelineStep(
                    start_s=now,
                    end_s=now + dt,
                    rates=dict(rates),
                    dram_shares=dict(shares),
                )
            )
            for e in active:
                remaining[e] -= rates[e] * dt
                if remaining[e] <= 1e-6 * job_by_engine[e].work_flops:
                    remaining[e] = 0.0
                    completions[e] = now + dt
            self.thermal.advance(total_power * throttle, dt)
            now += dt
        else:
            raise SimulationError("concurrent run failed to converge")

        total_flops = math.fsum(job.work_flops for job in jobs)
        return ConcurrentResult(
            total_runtime_s=now,
            job_runtimes=completions,
            total_flops=total_flops,
            throttle_factor=self.thermal.throttle_factor(0.0),
            timeline=tuple(timeline),
        )


def simulated_snapdragon_821(
    thermally_controlled: bool = True,
) -> SimulatedSoC:
    """A :class:`SimulatedSoC` for the paper's second device.

    The paper publishes no Snapdragon 821 numbers — only that its
    "findings hold true for both systems" — so this platform uses the
    spec-derived estimates of :func:`repro.soc.presets.snapdragon_821`
    (Kryo quad-core, Adreno 530, Hexagon 680, LPDDR4 dual-channel),
    scaled with the same methodology as the 835 calibration.  The test
    suite verifies the *qualitative* Section IV findings on it, which
    is exactly the claim the paper makes.
    """
    cpu = ComputeEngine(
        name="CPU",
        scalar_flops=6.1 * GIGA,
        simd_multiplier=5.2,
        parallel_lanes=4,  # Kryo quad-core
        hierarchy=MemoryHierarchy(
            levels=(
                MemoryLevel("L1", 4 * 64 * KIB, 100 * GIGA),
                MemoryLevel("L2", 1.5 * MIB, 38 * GIGA),
            ),
            dram_read_bandwidth=17.8 * GIGA,
            # Solves 17.8 / (0.5 + 0.5/p) = 13.4.
            write_penalty=0.604,
        ),
        write_fraction=0.5,
        min_elements_per_lane=512,
    )
    gpu = ComputeEngine(
        name="GPU",
        scalar_flops=256.0 * GIGA,  # Adreno 530 attained estimate
        simd_multiplier=1.0,
        parallel_lanes=1024,
        hierarchy=MemoryHierarchy(
            levels=(MemoryLevel("GMEM", 1 * MIB, 64 * GIGA),),
            dram_read_bandwidth=23.6 * GIGA,
            # Solves 23.6 / (0.5 + 0.5/p) = 21.0.
            write_penalty=0.808,
        ),
        write_fraction=0.5,
        min_elements_per_lane=256,
    )
    dsp = ComputeEngine(
        name="DSP",
        scalar_flops=2.4 * GIGA,  # Hexagon 680 scalar threads
        simd_multiplier=1.0,
        parallel_lanes=4,
        hierarchy=MemoryHierarchy(
            levels=(MemoryLevel("TCM", 256 * KIB, 24 * GIGA),),
            dram_read_bandwidth=5.6 * GIGA,
            # Solves 5.6 / (0.5 + 0.5/p) = 4.6.
            write_penalty=0.697,
        ),
        write_fraction=0.5,
        min_elements_per_lane=2048,
    )
    return SimulatedSoC(
        name="sim-snapdragon-821",
        engines=(cpu, gpu, dsp),
        dram_bandwidth=29.8 * GIGA,
        fabric_caps={"DSP": 10 * GIGA},
        coordination_overhead_ops=1516.0,
        thermal=ThermalSpec(
            ambient_c=25.0,
            limit_c=75.0,
            resistance_c_per_w=14.3,
            time_constant_s=30.0,
        ),
        thermally_controlled=thermally_controlled,
        power_models={
            "CPU": PowerModel(idle_watts=0.3, joules_per_gflop=0.20,
                              joules_per_gbyte=0.09),
            "GPU": PowerModel(idle_watts=0.2, joules_per_gflop=0.014,
                              joules_per_gbyte=0.09),
            "DSP": PowerModel(idle_watts=0.05, joules_per_gflop=0.06,
                              joules_per_gbyte=0.09),
        },
    )


def simulated_snapdragon_835(
    thermally_controlled: bool = True,
) -> SimulatedSoC:
    """A :class:`SimulatedSoC` calibrated to the paper's Section IV.

    Calibration targets (all from the paper):

    ============================== =====================
    CPU scalar peak                7.5 GFLOP/s
    CPU NEON peak                  >40 GFLOP/s
    CPU DRAM read+write            15.1 GB/s
    CPU DRAM read-only             ~20 GB/s
    GPU peak                       349.6 GFLOP/s
    GPU DRAM (stream)              24.4 GB/s
    DSP scalar peak                3.0 GFLOP/s
    DSP DRAM                       5.4 GB/s (Fig. 9 axis)
    DSP fabric                     12.5 GB/s (Sec. IV-D)
    Theoretical DRAM               30 GB/s
    Mixing speedup @ I=1024        39.4x (Fig. 8)
    ============================== =====================

    The CPU write penalty is solved so 20 GB/s read-only blends to
    15.1 GB/s read+write; the coordination-overhead default derates
    offloaded GPU work to ~295 GFLOP/s so the mixing experiment's
    headline 39.4x emerges from 295 / 7.5.
    """
    cpu = ComputeEngine(
        name="CPU",
        scalar_flops=7.5 * GIGA,
        simd_multiplier=5.6,  # NEON: 7.5 -> 42 GFLOP/s ("in excess of 40")
        parallel_lanes=8,  # Kryo 280: 8 cores
        hierarchy=MemoryHierarchy(
            levels=(
                MemoryLevel("L1", 8 * 64 * KIB, 120 * GIGA),
                MemoryLevel("L2", 3 * MIB, 45 * GIGA),  # 2M big + 1M little
            ),
            dram_read_bandwidth=20 * GIGA,
            # Solves 20 / (0.5 + 0.5/p) = 15.1.
            write_penalty=0.6064,
        ),
        write_fraction=0.5,
        min_elements_per_lane=512,
    )
    gpu = ComputeEngine(
        name="GPU",
        scalar_flops=349.6 * GIGA,  # attained; theoretical 567
        simd_multiplier=1.0,  # shader rate already full width
        parallel_lanes=1024,  # 1024 workgroups x 256 threads
        hierarchy=MemoryHierarchy(
            levels=(MemoryLevel("GMEM", 1 * MIB, 80 * GIGA),),
            dram_read_bandwidth=27.45 * GIGA,
            # Solves 27.45 / (0.5 + 0.5/p) = 24.4.
            write_penalty=0.8,
        ),
        write_fraction=0.5,
        min_elements_per_lane=256,
    )
    dsp = ComputeEngine(
        name="DSP",
        scalar_flops=3.0 * GIGA,  # scalar unit; spec 3.6 for 4 threads
        simd_multiplier=1.0,  # HVX vector unit is integer-only
        parallel_lanes=4,  # four scalar threads
        hierarchy=MemoryHierarchy(
            levels=(MemoryLevel("TCM", 256 * KIB, 30 * GIGA),),
            dram_read_bandwidth=6.56 * GIGA,
            # Solves 6.56 / (0.5 + 0.5/p) = 5.4.
            write_penalty=0.7,
        ),
        write_fraction=0.5,
        min_elements_per_lane=2048,
    )
    return SimulatedSoC(
        name="sim-snapdragon-835",
        engines=(cpu, gpu, dsp),
        dram_bandwidth=30 * GIGA,
        fabric_caps={"DSP": 12.5 * GIGA},
        coordination_overhead_ops=1516.0,
        thermal=ThermalSpec(
            ambient_c=25.0,
            limit_c=75.0,
            resistance_c_per_w=14.3,  # sustainable ~3.5 W (passive phone)
            time_constant_s=30.0,
        ),
        thermally_controlled=thermally_controlled,
        power_models={
            "CPU": PowerModel(idle_watts=0.3, joules_per_gflop=0.16,
                              joules_per_gbyte=0.08),
            "GPU": PowerModel(idle_watts=0.2, joules_per_gflop=0.011,
                              joules_per_gbyte=0.08),
            "DSP": PowerModel(idle_watts=0.05, joules_per_gflop=0.05,
                              joules_per_gbyte=0.08),
        },
    )
