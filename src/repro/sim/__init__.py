"""Simulated SoC hardware — the substrate replacing the paper's phones.

The paper measured physical Snapdragon 835/821 devices through an
Android app; offline we reproduce the methodology on a behavioural
simulator with the same observable surface: run Algorithm 1 kernels on
an engine (:meth:`SimulatedSoC.run_kernel`), or on several engines
concurrently with shared-DRAM contention
(:meth:`SimulatedSoC.run_concurrent`).
:func:`simulated_snapdragon_835` is calibrated to every number the
paper publishes.
"""

from .contention import contention_efficiency, max_min_fair, weighted_fair
from .dvfs import (
    OperatingPoint,
    OPPTable,
    energy_per_flop,
    fastest_point_within,
    power_at,
    scaled_rate,
)
from .engine import ComputeEngine
from .kernel import VARIANTS, KernelSpec
from .memory import MemoryHierarchy, MemoryLevel
from .mixing import (
    DEFAULT_FRACTIONS,
    DEFAULT_INTENSITIES,
    MixingPoint,
    MixingSweep,
    dsp_perturbation,
    run_mixing_sweep,
)
from .platform import (
    ConcurrentJob,
    ConcurrentResult,
    KernelResult,
    PowerModel,
    SimulatedSoC,
    TimelineStep,
    simulated_snapdragon_821,
    simulated_snapdragon_835,
)
from .thermal import ThermalSpec, ThermalState

__all__ = [
    "ComputeEngine",
    "ConcurrentJob",
    "ConcurrentResult",
    "DEFAULT_FRACTIONS",
    "DEFAULT_INTENSITIES",
    "KernelResult",
    "KernelSpec",
    "MemoryHierarchy",
    "MemoryLevel",
    "MixingPoint",
    "MixingSweep",
    "OPPTable",
    "OperatingPoint",
    "PowerModel",
    "energy_per_flop",
    "fastest_point_within",
    "power_at",
    "scaled_rate",
    "SimulatedSoC",
    "ThermalSpec",
    "ThermalState",
    "TimelineStep",
    "VARIANTS",
    "contention_efficiency",
    "dsp_perturbation",
    "max_min_fair",
    "run_mixing_sweep",
    "simulated_snapdragon_821",
    "simulated_snapdragon_835",
    "weighted_fair",
]
