"""The Fig. 8 "mixing" experiment: offload sweep on the simulated SoC.

The paper's experiment: run the micro-benchmark with a fraction ``f``
of the total single-precision ops on the GPU and ``1 - f`` on the CPU,
concurrently, for ``f`` in {0, 1/8, ..., 1} and operational
intensities from 1 to 1024 ops/byte; report performance normalized to
all-work-on-CPU at intensity 1.  The headline observations this module
reproduces:

- at low intensity, offloading to the GPU *slows the usecase down*
  (coordination overhead and bandwidth contention swamp the idle
  acceleration);
- at high intensity, offloading wins big — 39.4x at I = 1024;
- the benefit is a property of the *workload* (its ``f`` and ``I``),
  not of the hardware alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SpecError
from ..resilience.retry import call_with_retry
from ..units import GIGA
from .kernel import KernelSpec
from .platform import ConcurrentJob, SimulatedSoC

#: The paper's f grid: 0 to 1 in increments of 1/8.
DEFAULT_FRACTIONS = tuple(i / 8 for i in range(9))

#: The paper's intensity lines: 1 to 1024 ops per byte.
DEFAULT_INTENSITIES = (1, 4, 16, 64, 256, 1024)

#: DRAM-resident footprint: 32 Mi elements = 128 MiB per array.
DEFAULT_ELEMENTS = 32 * 1024 * 1024

#: Total useful single-precision ops per run (same for every point).
DEFAULT_TOTAL_FLOPS = 200 * GIGA


@dataclass(frozen=True)
class MixingPoint:
    """One (f, I) cell of the mixing sweep."""

    fraction: float  # f — share of ops on the GPU
    intensity: float  # ops/byte at both IPs
    gflops: float  # aggregate attained useful GFLOP/s
    normalized: float  # vs all-on-CPU at I=1
    runtime_s: float


@dataclass(frozen=True)
class MixingSweep:
    """The full grid plus its normalization baseline."""

    points: tuple
    baseline_gflops: float
    cpu_engine: str
    gpu_engine: str

    def line(self, intensity: float) -> tuple:
        """All points of one intensity line, ordered by fraction."""
        selected = [p for p in self.points if p.intensity == intensity]
        return tuple(sorted(selected, key=lambda p: p.fraction))

    def intensities(self) -> tuple:
        """Distinct intensity lines, ascending."""
        return tuple(sorted({p.intensity for p in self.points}))

    def peak_speedup(self) -> MixingPoint:
        """The best cell — the paper quotes 39.4x at f=1, I=1024."""
        return max(self.points, key=lambda p: p.normalized)


def _run_point(
    platform: SimulatedSoC,
    cpu: str,
    gpu: str,
    fraction: float,
    intensity: float,
    elements: int,
    total_flops: float,
) -> tuple:
    """Aggregate (gflops, runtime) for one (f, I) cell."""
    cpu_kernel = KernelSpec(elements=elements, variant="inplace").with_intensity(
        intensity
    )
    gpu_kernel = KernelSpec(elements=elements, variant="stream").with_intensity(
        intensity
    )
    jobs = []
    if fraction < 1.0:
        jobs.append(ConcurrentJob(cpu, cpu_kernel, (1.0 - fraction) * total_flops))
    if fraction > 0.0:
        jobs.append(ConcurrentJob(gpu, gpu_kernel, fraction * total_flops))
    result = platform.run_concurrent(jobs)
    return total_flops / result.total_runtime_s / GIGA, result.total_runtime_s


def run_mixing_sweep(
    platform: SimulatedSoC,
    fractions=DEFAULT_FRACTIONS,
    intensities=DEFAULT_INTENSITIES,
    elements: int = DEFAULT_ELEMENTS,
    total_flops: float = DEFAULT_TOTAL_FLOPS,
    cpu_engine: str = "CPU",
    gpu_engine: str = "GPU",
    retry_policy=None,
) -> MixingSweep:
    """Run the Fig. 8 grid on a simulated platform.

    Every cell does the same ``total_flops`` of useful work; CPU and
    GPU portions run concurrently (0 < f < 1) through the platform's
    contention and coordination models.  Normalization follows the
    paper: all work on the CPU at intensity 1.

    When the platform has a fault injector attached
    (:meth:`~repro.sim.platform.SimulatedSoC.attach_faults`), pass a
    :class:`repro.resilience.RetryPolicy` so injected measurement
    dropouts are retried per cell instead of aborting the grid.
    """
    for f in fractions:
        if not 0 <= f <= 1:
            raise SpecError(f"fractions must lie in [0, 1], got {f!r}")
    for i in intensities:
        if i <= 0:
            raise SpecError(f"intensities must be positive, got {i!r}")

    def measure(fraction, intensity):
        def attempt():
            return _run_point(
                platform, cpu_engine, gpu_engine,
                fraction, intensity, elements, total_flops,
            )
        if retry_policy is None:
            return attempt()
        return call_with_retry(
            attempt, retry_policy,
            context=f"mixing cell (f={fraction:g}, I={intensity:g})",
        )

    baseline_gflops, _ = measure(0.0, 1.0)
    points = []
    for intensity in intensities:
        for fraction in fractions:
            gflops, runtime = measure(fraction, intensity)
            points.append(
                MixingPoint(
                    fraction=fraction,
                    intensity=float(intensity),
                    gflops=gflops,
                    normalized=gflops / baseline_gflops,
                    runtime_s=runtime,
                )
            )
    return MixingSweep(
        points=tuple(points),
        baseline_gflops=baseline_gflops,
        cpu_engine=cpu_engine,
        gpu_engine=gpu_engine,
    )


def dsp_perturbation(
    platform: SimulatedSoC,
    intensity: float = 16.0,
    elements: int = DEFAULT_ELEMENTS,
    total_flops: float = DEFAULT_TOTAL_FLOPS,
) -> float:
    """Section IV-D's finding: the scalar DSP barely perturbs CPU+GPU.

    Runs a CPU+GPU half-split with and without the DSP streaming
    alongside, and returns the relative slowdown of the *CPU+GPU*
    completion (0.02 = their work finished 2% later with the DSP
    active).  The paper: "the scalar DSP was too wimpy to substantially
    perturb CPU-GPU behavior".
    """
    kernel = KernelSpec(elements=elements, variant="inplace").with_intensity(intensity)
    pair = [
        ConcurrentJob("CPU", kernel, total_flops / 2),
        ConcurrentJob("GPU", kernel, total_flops / 2),
    ]

    def cpu_gpu_completion(jobs) -> float:
        result = platform.run_concurrent(jobs)
        return max(result.job_runtimes["CPU"], result.job_runtimes["GPU"])

    base = cpu_gpu_completion(list(pair))
    if base <= 0:
        raise SpecError("degenerate baseline runtime")
    dsp_kernel = KernelSpec(elements=elements, variant="inplace").with_intensity(
        intensity
    )
    with_dsp = cpu_gpu_completion(
        pair + [ConcurrentJob("DSP", dsp_kernel, total_flops / 200)]
    )
    return max(0.0, with_dsp / base - 1.0)
