"""Memory-hierarchy model for the simulated SoC.

Each simulated engine owns a hierarchy of capacity/bandwidth levels
(L1, L2, ... then DRAM).  A streaming kernel's *service level* is the
smallest level whose capacity holds its footprint: arrays that fit in
L2 stream at L2 bandwidth, larger arrays go to DRAM.  This is what
bends the measured rooflines upward at small footprints, exactly the
effect the paper notes for the Snapdragon CPU ("higher bandwidth from
its internal L1 and L2 caches by using smaller array sizes").

Writes cost more than reads at DRAM (read-modify-write turnarounds,
write allocation): the hierarchy applies a *write penalty* so a
read+write kernel attains less bandwidth than a read-only one — the
paper measures 15.1 GB/s read+write vs ~20 GB/s read-only on the same
chip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import require_finite_positive, require_fraction
from ..errors import SpecError


def _check_derate(dram_derate: float) -> float:
    if not 0.0 < dram_derate <= 1.0:
        raise SpecError(
            f"dram_derate must lie in (0, 1], got {dram_derate!r}"
        )
    return float(dram_derate)


@dataclass(frozen=True)
class MemoryLevel:
    """One cache/scratchpad level: capacity plus streaming bandwidth."""

    name: str
    capacity_bytes: float
    bandwidth: float  # bytes/s, read or write

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("MemoryLevel name must be non-empty")
        require_finite_positive(self.capacity_bytes, f"{self.name!r} capacity")
        require_finite_positive(self.bandwidth, f"{self.name!r} bandwidth")


@dataclass(frozen=True)
class MemoryHierarchy:
    """Ordered cache levels backed by DRAM.

    Parameters
    ----------
    levels:
        Cache levels from closest (smallest) to farthest; capacities
        and bandwidths must both be non-increasing in distance — a
        hierarchy where L2 is *faster* than L1 is a spec error.
    dram_read_bandwidth:
        Bytes/s this engine can stream from DRAM, read-only.
    write_penalty:
        Multiplier < 1 applied to DRAM bandwidth for the write share of
        the traffic mix (0.5 means writes stream at half read speed).
    """

    levels: tuple
    dram_read_bandwidth: float
    write_penalty: float = 0.55

    def __post_init__(self) -> None:
        if not isinstance(self.levels, tuple):
            object.__setattr__(self, "levels", tuple(self.levels))
        for level in self.levels:
            if not isinstance(level, MemoryLevel):
                raise SpecError("levels must contain MemoryLevel instances")
        for closer, farther in zip(self.levels, self.levels[1:]):
            if farther.capacity_bytes < closer.capacity_bytes:
                raise SpecError(
                    f"level {farther.name!r} smaller than {closer.name!r}"
                )
            if farther.bandwidth > closer.bandwidth:
                raise SpecError(
                    f"level {farther.name!r} faster than {closer.name!r}"
                )
        require_finite_positive(self.dram_read_bandwidth, "dram_read_bandwidth")
        require_fraction(self.write_penalty, "write_penalty", SpecError)
        if self.write_penalty == 0:
            raise SpecError("write_penalty must be > 0")
        if self.levels and self.dram_read_bandwidth > self.levels[-1].bandwidth:
            raise SpecError("DRAM cannot be faster than the last cache level")

    def dram_bandwidth(
        self, write_fraction: float, dram_derate: float = 1.0
    ) -> float:
        """Effective DRAM streaming bandwidth for a given traffic mix.

        With fraction ``w`` of the bytes being writes served at
        ``penalty * B`` and ``1 - w`` reads at ``B``, the harmonic
        blend is ``B / (1 - w + w / penalty)``.  ``dram_derate``
        scales the interface for a transient contention/fault episode
        (see :mod:`repro.resilience.faults`); it touches the DRAM path
        only, never cache-resident traffic.
        """
        w = require_fraction(write_fraction, "write_fraction", SpecError)
        derate = _check_derate(dram_derate)
        return (
            self.dram_read_bandwidth * derate
            / ((1.0 - w) + w / self.write_penalty)
        )

    def service_level(self, footprint_bytes: float) -> str:
        """Name of the level that serves a streaming footprint."""
        require_finite_positive(footprint_bytes, "footprint_bytes")
        for level in self.levels:
            if footprint_bytes <= level.capacity_bytes:
                return level.name
        return "DRAM"

    def streaming_bandwidth(
        self,
        footprint_bytes: float,
        write_fraction: float = 0.5,
        dram_derate: float = 1.0,
    ) -> float:
        """Attainable bandwidth when streaming over ``footprint_bytes``.

        Footprints within a level stream at that level's bandwidth;
        footprints a little past a capacity boundary blend the two
        levels (the resident share still hits), so measured rooflines
        roll off smoothly instead of cliff-dropping — matching how real
        cache-sweep microbenchmarks look.
        """
        require_finite_positive(footprint_bytes, "footprint_bytes")
        bandwidths = [level.bandwidth for level in self.levels]
        capacities = [level.capacity_bytes for level in self.levels]
        bandwidths.append(self.dram_bandwidth(write_fraction, dram_derate))
        capacities.append(math.inf)

        for index, capacity in enumerate(capacities):
            if footprint_bytes <= capacity:
                return bandwidths[index]
            # Check whether the *next* level fully owns the footprint;
            # if not, we fall through and blend at its boundary below.
            next_bw = bandwidths[index + 1]
            next_cap = capacities[index + 1]
            if footprint_bytes <= next_cap:
                # Fraction of the working set still resident here.
                resident = capacity / footprint_bytes
                blended = 1.0 / (
                    resident / bandwidths[index] + (1.0 - resident) / next_bw
                )
                return blended
        raise AssertionError("unreachable: DRAM capacity is infinite")
