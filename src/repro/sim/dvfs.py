"""DVFS: frequency/voltage operating points for simulated engines.

Mobile SoCs never run at one clock: governors pick an operating
performance point (OPP) per engine, trading rate against power
(dynamic power scales roughly with ``f * V^2``, and the voltage each
frequency needs rises with frequency).  The paper's measurement
methodology pins clocks at peak ("many vendor-specific knobs are used
to disable performance and power monitoring governors"); this module
models what those knobs hold still — so the library can also answer
energy-aware questions like race-to-idle versus pace-to-fit.

An :class:`OperatingPoint` scales an engine's rates; an :class:`OPPTable`
holds the ladder; helpers pick the fastest point under a power budget
and compare energy across points.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import require_finite_positive
from ..errors import SpecError
from .engine import ComputeEngine
from .platform import PowerModel


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS step.

    Parameters
    ----------
    name:
        Label ("turbo", "nominal", "efficient").
    frequency_scale:
        Clock relative to the engine's calibrated peak (<= 1).
    voltage_scale:
        Supply voltage relative to peak.  Dynamic energy per op scales
        with ``voltage_scale ** 2`` (CV^2); static power scales with
        ``voltage_scale`` (leakage is super-linear in V in reality;
        linear keeps the model honest without extra parameters).
    """

    name: str
    frequency_scale: float
    voltage_scale: float

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("OperatingPoint name must be non-empty")
        require_finite_positive(self.frequency_scale, "frequency_scale")
        require_finite_positive(self.voltage_scale, "voltage_scale")
        if self.frequency_scale > 1.0 or self.voltage_scale > 1.0:
            raise SpecError(
                f"OPP {self.name!r} scales must be <= 1 (peak-relative)"
            )

    @property
    def dynamic_energy_scale(self) -> float:
        """Energy per op relative to peak: ``V^2`` (CV^2 switching)."""
        return self.voltage_scale**2

    @property
    def dynamic_power_scale(self) -> float:
        """Power relative to peak at full utilization: ``f * V^2``."""
        return self.frequency_scale * self.voltage_scale**2


@dataclass(frozen=True)
class OPPTable:
    """An engine's DVFS ladder, fastest first."""

    points: tuple

    def __post_init__(self) -> None:
        if not isinstance(self.points, tuple):
            object.__setattr__(self, "points", tuple(self.points))
        if not self.points:
            raise SpecError("OPPTable needs at least one point")
        for point in self.points:
            if not isinstance(point, OperatingPoint):
                raise SpecError("points must contain OperatingPoint")
        frequencies = [p.frequency_scale for p in self.points]
        if frequencies != sorted(frequencies, reverse=True):
            raise SpecError("OPPTable points must be ordered fastest first")
        names = [p.name for p in self.points]
        if len(set(names)) != len(names):
            raise SpecError(f"OPP names must be unique, got {names!r}")

    @property
    def peak(self) -> OperatingPoint:
        """The fastest point."""
        return self.points[0]

    def by_name(self, name: str) -> OperatingPoint:
        """Look up a point by name."""
        for point in self.points:
            if point.name == name:
                return point
        raise SpecError(f"no OPP named {name!r}")

    @classmethod
    def mobile_default(cls) -> "OPPTable":
        """A typical three-step mobile ladder."""
        return cls(points=(
            OperatingPoint("turbo", 1.0, 1.0),
            OperatingPoint("nominal", 0.75, 0.85),
            OperatingPoint("efficient", 0.5, 0.7),
        ))


def scaled_rate(engine: ComputeEngine, point: OperatingPoint,
                elements: int, flops_per_byte: float,
                simd: bool = False) -> float:
    """Attained FLOP/s at an OPP.

    The compute bound scales with frequency; the memory path does not
    (DRAM and fabric clocks are independent domains), so memory-bound
    kernels lose nothing at lower engine clocks — the classic reason
    governors down-clock during streaming phases.
    """
    compute_bound = (
        engine.peak_flops(simd)
        * engine.utilization(elements)
        * point.frequency_scale
    )
    bandwidth = engine.hierarchy.streaming_bandwidth(
        elements * 4.0, engine.write_fraction
    )
    return min(compute_bound, bandwidth * flops_per_byte)


def power_at(point: OperatingPoint, model: PowerModel,
             flops_per_s: float, bytes_per_s: float) -> float:
    """Watts at an OPP: scaled dynamic terms plus scaled leakage."""
    dynamic = (
        model.joules_per_gflop * flops_per_s / 1e9
        + model.joules_per_gbyte * bytes_per_s / 1e9
    ) * point.dynamic_energy_scale
    static = model.idle_watts * point.voltage_scale
    return static + dynamic


def fastest_point_within(
    table: OPPTable,
    engine: ComputeEngine,
    model: PowerModel,
    elements: int,
    flops_per_byte: float,
    power_budget: float,
    simd: bool = False,
) -> OperatingPoint:
    """The governor's choice: the fastest OPP whose draw fits the budget.

    Falls back to the most efficient point when nothing fits (real
    governors cannot turn the engine off mid-usecase either).
    """
    require_finite_positive(power_budget, "power_budget")
    for point in table.points:
        rate = scaled_rate(engine, point, elements, flops_per_byte, simd)
        draw = power_at(point, model, rate, rate / flops_per_byte)
        if draw <= power_budget:
            return point
    return table.points[-1]


def energy_per_flop(point: OperatingPoint, model: PowerModel,
                    engine: ComputeEngine, elements: int,
                    flops_per_byte: float, simd: bool = False) -> float:
    """Joules per useful FLOP at an OPP, static power amortized in.

    Exposes the race-to-idle trade: a slower point saves CV^2 energy
    per op but pays leakage for longer.  Which wins depends on the
    leakage share — exactly what this function lets callers compute.
    """
    rate = scaled_rate(engine, point, elements, flops_per_byte, simd)
    if rate <= 0:
        raise SpecError("degenerate rate at this operating point")
    watts = power_at(point, model, rate, rate / flops_per_byte)
    return watts / rate
