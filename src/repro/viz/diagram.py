"""Block-diagram rendering: SoC fabric maps and usecase dataflows.

Reproduces the paper's two descriptive figures as generated SVG:

- :func:`soc_diagram_svg` — Figure 3's shape: fabric tiers as rows
  ordered by distance from the memory controller, IPs as blocks on
  their tier, bandwidths annotated;
- :func:`dataflow_diagram_svg` — Figure 4's shape: usecase stages in
  topological layers, flows as arrows with byte labels.
"""

from __future__ import annotations

import networkx as nx

from ..errors import SpecError
from ..soc.description import MEMORY_NODE, SoCDescription
from ..units import format_bandwidth, format_bytes
from ..usecases.dataflow import WORLD, Dataflow
from .svg import GRID, TEXT_PRIMARY, TEXT_SECONDARY, SvgCanvas, series_color

_BLOCK_W, _BLOCK_H = 96, 40
_GAP_X, _GAP_Y = 16, 64


def _tier_depths(description: SoCDescription) -> dict:
    """Fabric name -> hops to the memory controller."""
    graph = description.fabric_graph()
    depths = {}
    for fabric in description.fabrics:
        depths[fabric.name] = nx.shortest_path_length(
            graph, fabric.name, MEMORY_NODE
        )
    return depths


def soc_diagram_svg(description: SoCDescription) -> str:
    """Render a SoC description as a Figure 3-style block diagram."""
    depths = _tier_depths(description)
    tiers = sorted(
        description.fabrics, key=lambda fabric: depths[fabric.name]
    )
    rows = [("memory", None)] + [(f.name, f) for f in tiers]
    by_fabric: dict = {}
    for ip in description.ips:
        by_fabric.setdefault(ip.fabric, []).append(ip)

    widest = max(
        [len(by_fabric.get(f.name, [])) for f in tiers]
        + [len(by_fabric.get(None, [])) + 1]
    )
    width = max(640, 140 + widest * (_BLOCK_W + _GAP_X))
    height = 100 + len(rows) * (_BLOCK_H + _GAP_Y)
    canvas = SvgCanvas(width, height)
    canvas.text(24, 28, f"SoC: {description.name}", color=TEXT_PRIMARY,
                size=14, weight="bold")

    y_of: dict = {}
    for row_index, (label, fabric) in enumerate(rows):
        y = 60 + row_index * (_BLOCK_H + _GAP_Y)
        y_of[label] = y
        bandwidth = (
            format_bandwidth(description.memory_bandwidth)
            if fabric is None
            else format_bandwidth(fabric.bandwidth)
        )
        # Tier rail.
        canvas.line(120, y + _BLOCK_H / 2, width - 24, y + _BLOCK_H / 2,
                    color=GRID, width=6)
        canvas.text(24, y + _BLOCK_H / 2 + 4,
                    "DRAM" if fabric is None else label,
                    color=TEXT_PRIMARY, size=12, weight="bold")
        canvas.text(24, y + _BLOCK_H / 2 + 18, bandwidth, size=10)

        attached = by_fabric.get(None, []) if fabric is None else \
            by_fabric.get(label, [])
        for column, ip in enumerate(attached):
            x = 140 + column * (_BLOCK_W + _GAP_X)
            color = series_color(row_index % 8)
            canvas.rect(x, y, _BLOCK_W, _BLOCK_H, color=color, rx=6,
                        tooltip=f"{ip.name} ({ip.kind}): "
                                f"{format_bandwidth(ip.bandwidth)} link")
            canvas.text(x + _BLOCK_W / 2, y + 17, ip.name,
                        color="#ffffff", size=11, anchor="middle",
                        weight="bold")
            canvas.text(x + _BLOCK_W / 2, y + 31,
                        format_bandwidth(ip.bandwidth),
                        color="#ffffff", size=9, anchor="middle")
    # Vertical connectors between consecutive tiers.
    for (label_a, _), (label_b, _) in zip(rows, rows[1:]):
        canvas.line(110, y_of[label_a] + _BLOCK_H / 2,
                    110, y_of[label_b] + _BLOCK_H / 2,
                    color=GRID, width=3)
    return canvas.to_string()


def _layers(dataflow: Dataflow) -> list:
    """Stages grouped by topological depth (WORLD excluded)."""
    graph = dataflow.graph()
    internal = graph.subgraph(n for n in graph if n != WORLD)
    depth: dict = {}
    for node in nx.topological_sort(internal):
        parents = [p for p in internal.predecessors(node)]
        depth[node] = 1 + max((depth[p] for p in parents), default=-1)
    layers: dict = {}
    for node, d in depth.items():
        layers.setdefault(d, []).append(node)
    return [sorted(layers[d]) for d in sorted(layers)]


def dataflow_diagram_svg(dataflow: Dataflow) -> str:
    """Render a usecase dataflow as a Figure 4-style diagram."""
    layers = _layers(dataflow)
    if not layers:
        raise SpecError(f"dataflow {dataflow.name!r} has no stages")
    widest = max(len(layer) for layer in layers)
    width = max(560, 80 + widest * (_BLOCK_W + _GAP_X) + 60)
    height = 100 + len(layers) * (_BLOCK_H + _GAP_Y)
    canvas = SvgCanvas(width, height)
    canvas.text(24, 28, f"usecase: {dataflow.name}", color=TEXT_PRIMARY,
                size=14, weight="bold")

    ips = list(dataflow.active_ips)
    position: dict = {}
    for row, layer in enumerate(layers):
        y = 60 + row * (_BLOCK_H + _GAP_Y)
        row_width = len(layer) * (_BLOCK_W + _GAP_X) - _GAP_X
        x0 = (width - row_width) / 2
        for column, name in enumerate(layer):
            stage = dataflow.stage(name)
            x = x0 + column * (_BLOCK_W + _GAP_X)
            position[name] = (x + _BLOCK_W / 2, y)
            color = series_color(ips.index(stage.ip) % 8)
            canvas.rect(x, y, _BLOCK_W, _BLOCK_H, color=color, rx=6,
                        tooltip=f"{name} on {stage.ip}: "
                                f"{stage.ops_per_item:.3g} ops/item")
            canvas.text(x + _BLOCK_W / 2, y + 17, name, color="#ffffff",
                        size=10, anchor="middle", weight="bold")
            canvas.text(x + _BLOCK_W / 2, y + 31, stage.ip,
                        color="#ffffff", size=9, anchor="middle")

    for flow in dataflow.flows:
        if flow.producer == WORLD or flow.consumer == WORLD:
            continue
        x1, y1 = position[flow.producer]
        x2, y2 = position[flow.consumer]
        canvas.line(x1, y1 + _BLOCK_H, x2, y2, color=TEXT_SECONDARY,
                    width=1.5)
        mid_x, mid_y = (x1 + x2) / 2, (y1 + _BLOCK_H + y2) / 2
        canvas.text(mid_x + 6, mid_y, format_bytes(flow.bytes_per_item),
                    size=9)
    return canvas.to_string()
