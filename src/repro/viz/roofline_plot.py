"""Gables scaled-roofline plots (paper Section III-C, Figure 6).

Renders the multi-roofline visualization the paper develops: Roofline
axes (log intensity vs log attainable performance), one scaled roofline
per active IP plus the memory roofline, "drop lines" where each
component's operating intensity selects its bound, and the attainable
point — the lowest selection — highlighted.

Output is either an SVG document (:func:`roofline_svg`) or an ASCII
terminal rendering (:func:`roofline_ascii`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.curves import RooflineCurve
from ..core.gables import drop_lines, evaluate, scaled_roofline_curves
from ..core.params import SoCSpec, Workload
from ..core.result import MEMORY
from ..core.variants import ModelVariant, evaluate_variant
from ..errors import SpecError
from .ascii_art import render_log_log
from .scale import LogScale, si_label
from .svg import AXIS, GRID, TEXT_PRIMARY, TEXT_SECONDARY, SvgCanvas, series_style

#: Plot margins in pixels: left, right, top, bottom.
_MARGINS = (72, 24, 40, 56)


@dataclass(frozen=True)
class RooflinePlotData:
    """Everything a renderer needs, extracted from one evaluation."""

    curves: tuple  # RooflineCurve per component (memory last)
    operating_points: tuple  # (name, intensity, performance)
    attainable: float
    bottleneck: str
    title: str

    @classmethod
    def from_model(
        cls,
        soc: SoCSpec,
        workload: Workload,
        title: str | None = None,
        variant: ModelVariant | None = None,
    ) -> "RooflinePlotData":
        """Evaluate the model and package the plot geometry.

        With ``variant`` set, evaluation goes through the lowered
        pipeline and the variant's shared-resource components (bus
        times, the coordination term) appear as flat ceilings at their
        realized bound ``1/time``, with operating points at the
        workload's average intensity.  Phased variants have no single
        roofline picture and are rejected.
        """
        if variant is None:
            result = evaluate(soc, workload)
            extra = {}
        else:
            if not variant.requires_workload:
                raise SpecError(
                    "phased variants evaluate their own per-phase "
                    "workloads; plot each phase separately"
                )
            result = evaluate_variant(soc, workload, variant)
            extra = result.extra_times
        curves = list(scaled_roofline_curves(soc, workload))
        points = list(drop_lines(soc, workload))
        if variant is not None and math.isfinite(result.memory_perf_bound):
            # The variant may filter or reroute DRAM traffic; pin the
            # memory marker to the bound the lowered model computed.
            points = [
                (name, result.average_intensity, result.memory_perf_bound)
                if name == MEMORY else (name, intensity, perf)
                for name, intensity, perf in points
            ]
        average_intensity = result.average_intensity
        for name, time in extra.items():
            if time <= 0:
                continue  # an unbounded extra can never bind
            bound = 1.0 / time
            curves.append(
                RooflineCurve(name=name, slope=math.inf, roof=bound)
            )
            if math.isfinite(average_intensity):
                points.append((name, average_intensity, bound))
        return cls(
            curves=tuple(curves),
            operating_points=tuple(points),
            attainable=result.attainable,
            bottleneck=result.bottleneck,
            title=title or f"{soc.name} / {workload.name}",
        )

    def intensity_domain(self) -> tuple:
        """A (lo, hi) intensity range covering all interesting features."""
        interesting = [i for _, i, _ in self.operating_points]
        interesting += [
            c.ridge_point for c in self.curves if math.isfinite(c.ridge_point)
        ]
        finite = [i for i in interesting if i > 0 and math.isfinite(i)]
        if not finite:
            finite = [1.0]
        return min(finite) / 8, max(finite) * 8


def roofline_svg(
    data: RooflinePlotData, width: int = 720, height: int = 480
) -> str:
    """Render a scaled-roofline plot as an SVG document string."""
    left, right, top, bottom = _MARGINS
    plot_w = width - left - right
    plot_h = height - top - bottom
    if plot_w < 100 or plot_h < 80:
        raise SpecError("canvas too small for the configured margins")

    lo, hi = data.intensity_domain()
    x_scale = LogScale(lo, hi)
    perfs = [p for _, _, p in data.operating_points]
    perfs += [c(hi) for c in data.curves] + [c(lo) for c in data.curves]
    perfs.append(data.attainable)
    y_scale = LogScale.spanning(perfs)

    def to_px(intensity: float, perf: float) -> tuple:
        x = left + x_scale(intensity) * plot_w
        y = top + (1.0 - y_scale(perf)) * plot_h
        return x, y

    canvas = SvgCanvas(width, height)

    # Recessive grid on decade ticks, then axes.
    for tick in x_scale.ticks():
        x, _ = to_px(tick, y_scale.hi)
        canvas.line(x, top, x, top + plot_h, color=GRID, width=1)
        canvas.text(x, top + plot_h + 18, si_label(tick), anchor="middle")
    for tick in y_scale.ticks():
        _, y = to_px(x_scale.hi, tick)
        canvas.line(left, y, left + plot_w, y, color=GRID, width=1)
        canvas.text(left - 8, y + 4, si_label(tick), anchor="end")
    canvas.line(left, top + plot_h, left + plot_w, top + plot_h, color=AXIS,
                width=1.5)
    canvas.line(left, top, left, top + plot_h, color=AXIS, width=1.5)

    canvas.text(left + plot_w / 2, height - 16,
                "operational intensity (ops/byte)", anchor="middle")
    canvas.text(20, top + plot_h / 2, "attainable performance (ops/s)",
                anchor="middle", rotate=-90)
    canvas.text(left, 24, data.title, color=TEXT_PRIMARY, size=14,
                weight="bold")

    # The scaled rooflines.
    samples = x_scale.sample(96)
    for index, curve in enumerate(data.curves):
        color, dash = series_style(index)
        points = [to_px(i, curve(i)) for i in samples]
        canvas.polyline(points, color=color, dash=dash,
                        tooltip=f"{curve.name} scaled roofline")
        # Direct label at the right edge of the curve.
        label_x, label_y = points[-1]
        canvas.text(min(label_x + 4, width - 4), label_y - 6, curve.name,
                    color=TEXT_SECONDARY, size=11)

    # Drop lines + operating points.
    name_to_index = {curve.name: i for i, curve in enumerate(data.curves)}
    floor_y = top + plot_h
    for name, intensity, perf in data.operating_points:
        x, y = to_px(intensity, perf)
        color, _ = series_style(name_to_index[name])
        canvas.line(x, y, x, floor_y, color=color, width=1, dash="4 4")
        canvas.circle(x, y, r=4, color=color,
                      tooltip=f"{name}: I={intensity:.4g}, "
                              f"P={si_label(perf)}ops/s")

    # The attainable point (the lowest selection).
    binding = [p for p in data.operating_points if p[0] == data.bottleneck]
    if binding:
        _, intensity, perf = binding[0]
        x, y = to_px(intensity, perf)
        canvas.circle(x, y, r=6, color=TEXT_PRIMARY,
                      tooltip=f"attainable: {si_label(data.attainable)}ops/s "
                              f"({data.bottleneck}-bound)")
        canvas.text(x + 10, y + 4,
                    f"P = {si_label(data.attainable)} ({data.bottleneck})",
                    color=TEXT_PRIMARY, size=12, weight="bold")
    return canvas.to_string()


def roofline_ascii(data: RooflinePlotData, width: int = 76,
                   height: int = 22) -> str:
    """Render the same plot for a terminal."""
    lo, hi = data.intensity_domain()
    x_scale = LogScale(lo, hi)
    samples = x_scale.sample(width)
    series = {
        curve.name: [(i, curve(i)) for i in samples] for curve in data.curves
    }
    markers = {
        name: (intensity, perf)
        for name, intensity, perf in data.operating_points
    }
    title = (
        f"{data.title} - attainable {si_label(data.attainable)}ops/s "
        f"({data.bottleneck}-bound)"
    )
    body = render_log_log(
        series,
        x_label="ops/byte (log)",
        y_label="ops/s (log)",
        width=width,
        height=height,
        markers=markers,
    )
    return title + "\n" + body


def save_roofline_svg(soc: SoCSpec, workload: Workload, path,
                      title: str | None = None,
                      variant: ModelVariant | None = None) -> None:
    """One-call evaluate-and-save (used by the CLI and examples)."""
    data = RooflinePlotData.from_model(soc, workload, title=title,
                                       variant=variant)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(roofline_svg(data))


def classic_roofline_plot(roofline, intensity: float,
                          title: str | None = None) -> RooflinePlotData:
    """Plot data for a *classic* single-chip roofline (paper Figure 1).

    The original Williams-et-al. picture: one roofline (plus its
    ceilings, if any) with an operating point at the software's
    operational intensity.  Reuses the Gables plot machinery — a
    classic roofline is the one-IP, f=1 special case.

    Parameters
    ----------
    roofline:
        A :class:`~repro.core.roofline.Roofline`.
    intensity:
        The software's operational intensity, marking the drop line.
    """
    curves = [roofline.curve()] + list(roofline.ceiling_curves())
    attainable = roofline.attainable(intensity)
    bound_kind = (
        "memory" if roofline.is_memory_bound(intensity) else "compute"
    )
    return RooflinePlotData(
        curves=tuple(curves),
        operating_points=((roofline.name, intensity, attainable),),
        attainable=attainable,
        bottleneck=roofline.name,
        title=title or f"{roofline.name} roofline ({bound_kind}-bound "
                       f"at I={intensity:g})",
    )
