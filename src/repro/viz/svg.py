"""A minimal SVG document builder (no third-party dependencies).

Provides exactly the primitives the roofline and sweep plots need:
lines, polylines, circles, rects, and text — with XML escaping, CSS
classes for themable styling, and native ``<title>`` hover tooltips.
The palette follows a validated categorical order (fixed slot
assignment, never cycled); labels wear text tokens, never series color.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from ..errors import SpecError

#: Validated categorical palette, light mode, in fixed slot order.
SERIES_COLORS = (
    "#2a78d6",  # blue
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
    "#e87ba4",  # magenta
    "#eb6834",  # orange
)

#: Text and chrome tokens (light surface).
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
SURFACE = "#fcfcfb"
GRID = "#e4e3de"
AXIS = "#b5b4ac"


#: Recessive color for series beyond the categorical palette.
OVERFLOW_COLOR = TEXT_SECONDARY

#: Dash patterns distinguishing folded overflow series from each other.
_OVERFLOW_DASHES = ("6 3", "2 3", "9 3 2 3", "1 4")


def series_color(index: int) -> str:
    """Color for series ``index``; beyond 8 series, raise — fold or
    split the chart instead of inventing hues."""
    if index < 0:
        raise SpecError(f"series index must be >= 0, got {index}")
    if index >= len(SERIES_COLORS):
        raise SpecError(
            f"only {len(SERIES_COLORS)} categorical slots; restructure the "
            "chart (small multiples / fold into 'other') rather than cycling"
        )
    return SERIES_COLORS[index]


def series_style(index: int) -> tuple:
    """``(color, dash)`` for series ``index`` — the total-function
    sibling of :func:`series_color` for charts whose series count is
    data-driven (a roofline has one curve per IP plus memory plus any
    variant ceilings).  The first 8 series get the categorical palette,
    solid; later series fold into one recessive gray, told apart by
    dash pattern — the palette itself is never cycled."""
    if index < 0:
        raise SpecError(f"series index must be >= 0, got {index}")
    if index < len(SERIES_COLORS):
        return SERIES_COLORS[index], None
    overflow = index - len(SERIES_COLORS)
    return OVERFLOW_COLOR, _OVERFLOW_DASHES[overflow % len(_OVERFLOW_DASHES)]


class SvgCanvas:
    """An append-only SVG document of fixed pixel size."""

    def __init__(self, width: int = 720, height: int = 480) -> None:
        if width < 64 or height < 64:
            raise SpecError(f"canvas too small: {width}x{height}")
        self.width = width
        self.height = height
        self._body: list = []
        self._body.append(
            f'<rect x="0" y="0" width="{width}" height="{height}" '
            f'fill="{SURFACE}"/>'
        )

    def line(self, x1: float, y1: float, x2: float, y2: float,
             color: str = AXIS, width: float = 1.0, dash: str | None = None
             ) -> None:
        """A straight segment."""
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._body.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{color}" stroke-width="{width}"{dash_attr} '
            f'stroke-linecap="round"/>'
        )

    def polyline(self, points, color: str, width: float = 2.0,
                 tooltip: str | None = None, dash: str | None = None) -> None:
        """An open path through ``points`` ((x, y) pairs)."""
        if len(points) < 2:
            raise SpecError("polyline needs at least two points")
        coords = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        title = f"<title>{escape(tooltip)}</title>" if tooltip else ""
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._body.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="{width}"{dash_attr} stroke-linejoin="round" '
            f'stroke-linecap="round">{title}</polyline>'
        )

    def circle(self, x: float, y: float, r: float = 4.0,
               color: str = TEXT_PRIMARY, tooltip: str | None = None) -> None:
        """A marker dot with a 2px surface ring (overlap separation)."""
        title = f"<title>{escape(tooltip)}</title>" if tooltip else ""
        self._body.append(
            f'<circle cx="{x:.2f}" cy="{y:.2f}" r="{r:.2f}" fill="{color}" '
            f'stroke="{SURFACE}" stroke-width="2">{title}</circle>'
        )

    def rect(self, x: float, y: float, w: float, h: float, color: str,
             rx: float = 2.0, tooltip: str | None = None) -> None:
        """A filled rectangle (bars, legend swatches)."""
        title = f"<title>{escape(tooltip)}</title>" if tooltip else ""
        self._body.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{h:.2f}" '
            f'rx="{rx}" fill="{color}">{title}</rect>'
        )

    def text(self, x: float, y: float, content: str,
             color: str = TEXT_SECONDARY, size: int = 12,
             anchor: str = "start", rotate: float | None = None,
             weight: str = "normal") -> None:
        """A text label (always in text tokens, never series color)."""
        transform = (
            f' transform="rotate({rotate:.1f} {x:.2f} {y:.2f})"' if rotate else ""
        )
        self._body.append(
            f'<text x="{x:.2f}" y="{y:.2f}" fill="{color}" '
            f'font-size="{size}" font-family="system-ui, sans-serif" '
            f'font-weight="{weight}" text-anchor="{anchor}"{transform}>'
            f"{escape(content)}</text>"
        )

    def to_string(self) -> str:
        """Serialize the document."""
        header = (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}" role="img">'
        )
        return header + "".join(self._body) + "</svg>"

    def save(self, path) -> None:
        """Write the document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_string())
