"""Line charts for sweeps and series (Figs. 2a and 8 renderings).

Generic multi-series line charts on linear or log axes, used for the
mixing sweep (normalized performance vs offload fraction, one line per
intensity) and the market series (introductions per year).
"""

from __future__ import annotations

import math

from ..errors import SpecError
from .scale import si_label
from .svg import (
    AXIS,
    GRID,
    TEXT_PRIMARY,
    TEXT_SECONDARY,
    SvgCanvas,
    series_color,
    series_style,
)

_MARGINS = (72, 110, 40, 56)  # left, right (room for direct labels), top, bottom


def _nice_linear_ticks(lo: float, hi: float, target: int = 6) -> tuple:
    if not hi > lo:
        raise SpecError(f"need lo < hi, got [{lo}, {hi}]")
    raw = (hi - lo) / target
    magnitude = 10 ** math.floor(math.log10(raw))
    for step in (1, 2, 2.5, 5, 10):
        if raw <= step * magnitude:
            spacing = step * magnitude
            break
    first = math.ceil(lo / spacing) * spacing
    ticks = []
    tick = first
    while tick <= hi + 1e-9 * spacing:
        ticks.append(round(tick, 12))
        tick += spacing
    return tuple(ticks)


#: Fill used for the transition bands bracketing a bottleneck crossover.
_BAND_FILL = "#f0efe9"


def line_chart_svg(
    series: dict,
    title: str,
    x_label: str,
    y_label: str,
    log_y: bool = False,
    width: int = 720,
    height: int = 480,
    v_bands: tuple = (),
) -> str:
    """Render ``{name: [(x, y), ...]}`` as a multi-series line chart.

    Series keep their insertion order for slot colors; each line gets a
    direct label at its right end (identity is never color-alone).

    ``v_bands`` is an optional sequence of ``(x0, x1, label)`` triples:
    each is drawn as a shaded vertical band between the two x
    coordinates with the label at its top — used to bracket bottleneck
    crossovers between their two adjacent sweep samples.
    """
    if not series:
        raise SpecError("line_chart_svg needs at least one series")
    for name, points in series.items():
        if not points:
            raise SpecError(f"series {name!r} is empty")
    left, right, top, bottom = _MARGINS
    plot_w = width - left - right
    plot_h = height - top - bottom

    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    if x_lo == x_hi:
        x_lo, x_hi = x_lo - 1, x_hi + 1
    if log_y:
        positive = [y for y in ys if y > 0]
        if not positive:
            raise SpecError("log_y requires positive values")
        y_lo, y_hi = min(positive) / 1.5, max(positive) * 1.5
    else:
        y_lo, y_hi = min(ys), max(ys)
        if y_lo == y_hi:
            y_lo, y_hi = y_lo - 1, y_hi + 1
        pad = 0.06 * (y_hi - y_lo)
        y_lo, y_hi = y_lo - pad, y_hi + pad

    def to_px(x: float, y: float) -> tuple:
        px = left + (x - x_lo) / (x_hi - x_lo) * plot_w
        if log_y:
            frac = (math.log10(y) - math.log10(y_lo)) / (
                math.log10(y_hi) - math.log10(y_lo)
            )
        else:
            frac = (y - y_lo) / (y_hi - y_lo)
        return px, top + (1.0 - frac) * plot_h

    canvas = SvgCanvas(width, height)
    for x0, x1, band_label in v_bands:
        left_px, _ = to_px(min(x0, x1), y_hi)
        right_px, _ = to_px(max(x0, x1), y_hi)
        canvas.rect(left_px, top, max(right_px - left_px, 1.0), plot_h,
                    color=_BAND_FILL, rx=0, tooltip=band_label)
        canvas.line(left_px, top, left_px, top + plot_h, color=AXIS, width=1)
        canvas.line(right_px, top, right_px, top + plot_h, color=AXIS,
                    width=1)
        canvas.text((left_px + right_px) / 2, top + 14, band_label,
                    anchor="middle", size=10)
    for tick in _nice_linear_ticks(x_lo, x_hi):
        x, _ = to_px(tick, y_hi)
        canvas.line(x, top, x, top + plot_h, color=GRID, width=1)
        canvas.text(x, top + plot_h + 18, f"{tick:g}", anchor="middle")
    if log_y:
        k_lo = math.ceil(math.log10(y_lo))
        k_hi = math.floor(math.log10(y_hi))
        y_ticks = [10.0**k for k in range(k_lo, k_hi + 1)] or [y_lo, y_hi]
    else:
        y_ticks = _nice_linear_ticks(y_lo, y_hi)
    for tick in y_ticks:
        _, y = to_px(x_hi, tick)
        canvas.line(left, y, left + plot_w, y, color=GRID, width=1)
        canvas.text(left - 8, y + 4, si_label(tick), anchor="end")
    canvas.line(left, top + plot_h, left + plot_w, top + plot_h,
                color=AXIS, width=1.5)
    canvas.line(left, top, left, top + plot_h, color=AXIS, width=1.5)
    canvas.text(left + plot_w / 2, height - 16, x_label, anchor="middle")
    canvas.text(20, top + plot_h / 2, y_label, anchor="middle", rotate=-90)
    canvas.text(left, 24, title, color=TEXT_PRIMARY, size=14, weight="bold")

    for index, (name, points) in enumerate(series.items()):
        if not points:
            raise SpecError(f"series {name!r} is empty")
        color, dash = series_style(index)
        ordered = sorted(points, key=lambda p: p[0])
        pixels = [to_px(x, y) for x, y in ordered]
        if len(pixels) >= 2:
            canvas.polyline(pixels, color=color, dash=dash, tooltip=name)
        for (x, y), (px, py) in zip(ordered, pixels):
            canvas.circle(px, py, r=3.5, color=color,
                          tooltip=f"{name}: ({x:g}, {y:.4g})")
        end_x, end_y = pixels[-1]
        canvas.text(end_x + 8, end_y + 4, name, color=TEXT_SECONDARY, size=11)
    return canvas.to_string()


def sweep_series_svg(
    series,
    title: str | None = None,
    y_label: str = "attainable ops/s",
    log_y: bool = False,
    width: int = 720,
    height: int = 480,
) -> str:
    """Render a :class:`~repro.explore.SweepSeries` as a line chart.

    Each bottleneck transition becomes a shaded band bracketing the
    crossover between the last sample with the old bottleneck
    (``previous_value``) and the first with the new one (``value``).
    """
    points = list(zip(series.values(), series.attainables()))
    bands = tuple(
        (t.previous_value, t.value, f"{t.from_component} -> {t.to_component}")
        for t in series.bottleneck_transitions()
    )
    return line_chart_svg(
        {series.parameter: points},
        title=title or f"sweep over {series.parameter}",
        x_label=series.parameter,
        y_label=y_label,
        log_y=log_y,
        width=width,
        height=height,
        v_bands=bands,
    )


def bar_chart_svg(
    values: dict,
    title: str,
    x_label: str,
    y_label: str,
    width: int = 720,
    height: int = 480,
) -> str:
    """Render ``{category: value}`` as a single-series bar chart.

    One measure, one hue (slot 1); 2px surface gaps between bars;
    values labeled selectively (first, last, and max only).
    """
    if not values:
        raise SpecError("bar_chart_svg needs at least one bar")
    left, right, top, bottom = 72, 24, 40, 56
    plot_w = width - left - right
    plot_h = height - top - bottom
    y_hi = max(values.values())
    if y_hi <= 0:
        raise SpecError("bar values must include a positive maximum")

    canvas = SvgCanvas(width, height)
    for tick in _nice_linear_ticks(0, y_hi):
        y = top + (1.0 - tick / (y_hi * 1.08)) * plot_h
        canvas.line(left, y, left + plot_w, y, color=GRID, width=1)
        canvas.text(left - 8, y + 4, si_label(tick), anchor="end")
    canvas.line(left, top + plot_h, left + plot_w, top + plot_h,
                color=AXIS, width=1.5)
    canvas.text(left + plot_w / 2, height - 16, x_label, anchor="middle")
    canvas.text(20, top + plot_h / 2, y_label, anchor="middle", rotate=-90)
    canvas.text(left, 24, title, color=TEXT_PRIMARY, size=14, weight="bold")

    n = len(values)
    slot = plot_w / n
    bar_w = max(4.0, slot - 2.0)  # 2px surface gap between bars
    color = series_color(0)
    labeled = {0, n - 1, max(range(n), key=lambda i: list(values.values())[i])}
    for index, (category, value) in enumerate(values.items()):
        h = value / (y_hi * 1.08) * plot_h
        x = left + index * slot + 1.0
        y = top + plot_h - h
        canvas.rect(x, y, bar_w, h, color=color, rx=4,
                    tooltip=f"{category}: {value:g}")
        canvas.text(x + bar_w / 2, top + plot_h + 18, str(category),
                    anchor="middle", size=10)
        if index in labeled:
            canvas.text(x + bar_w / 2, y - 6, f"{value:g}",
                        anchor="middle", size=10, color=TEXT_SECONDARY)
    return canvas.to_string()
