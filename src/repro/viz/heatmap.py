"""Heatmap rendering for 2-D sweep grids.

One sequential hue (light -> dark = low -> high), log-scaled color for
the orders-of-magnitude spreads roofline surfaces produce, selective
cell labels (corners and the maximum), and native tooltips per cell.
"""

from __future__ import annotations

import math

from ..errors import SpecError
from .scale import si_label
from .svg import SURFACE, TEXT_PRIMARY, TEXT_SECONDARY, SvgCanvas

#: Sequential blue ramp, steps 100 -> 700 (validated palette).
SEQUENTIAL_RAMP = (
    "#cde2fb", "#9ec5f4", "#6da7ec", "#3987e5",
    "#256abf", "#184f95", "#0d366b",
)


def _ramp_color(fraction: float) -> str:
    """Pick the ramp step for a [0, 1] normalized magnitude."""
    index = min(
        len(SEQUENTIAL_RAMP) - 1,
        int(fraction * len(SEQUENTIAL_RAMP)),
    )
    return SEQUENTIAL_RAMP[index]


def heatmap_svg(
    grid,
    title: str,
    value_label: str = "attainable (ops/s)",
    width: int = 720,
    height: int = 480,
    normalize_to: float | None = None,
) -> str:
    """Render a :class:`~repro.explore.sweep2d.SweepGrid` as a heatmap.

    Color encodes log-magnitude; pass ``normalize_to`` to divide every
    cell first (e.g. the Fig. 8 baseline).  Cells carry tooltips with
    exact values and the binding component.
    """
    xs = grid.x_values()
    ys = grid.y_values()
    if not xs or not ys:
        raise SpecError("grid has no cells")
    left, right, top, bottom = 88, 140, 48, 56
    plot_w = width - left - right
    plot_h = height - top - bottom
    cell_w = plot_w / len(xs)
    cell_h = plot_h / len(ys)

    values = []
    for cell in grid.cells:
        value = cell.attainable
        if normalize_to:
            value /= normalize_to
        if value <= 0:
            raise SpecError("heatmap values must be positive")
        values.append(value)
    lo, hi = min(values), max(values)
    log_lo, log_hi = math.log10(lo), math.log10(hi)
    span = (log_hi - log_lo) or 1.0

    canvas = SvgCanvas(width, height)
    canvas.text(left, 28, title, color=TEXT_PRIMARY, size=14, weight="bold")

    best = grid.best()
    for cell in grid.cells:
        value = cell.attainable / normalize_to if normalize_to \
            else cell.attainable
        fraction = (math.log10(value) - log_lo) / span
        x = left + xs.index(cell.x) * cell_w
        # y axis ascends upward: biggest y at the top row.
        y = top + (len(ys) - 1 - ys.index(cell.y)) * cell_h
        tooltip = (
            f"{grid.x_name}={cell.x:g}, {grid.y_name}={cell.y:g}: "
            f"{value:.4g} ({cell.bottleneck}-bound)"
        )
        canvas.rect(x + 1, y + 1, cell_w - 2, cell_h - 2,
                    color=_ramp_color(fraction), rx=3, tooltip=tooltip)
        labeled = (
            (cell.x == best.x and cell.y == best.y)
            or (cell.x == xs[0] and cell.y == ys[0])
            or (cell.x == xs[-1] and cell.y == ys[-1])
        )
        if labeled:
            ink = TEXT_PRIMARY if fraction < 0.55 else SURFACE
            canvas.text(x + cell_w / 2, y + cell_h / 2 + 4,
                        f"{value:.3g}", color=ink, size=10,
                        anchor="middle")

    for index, x_value in enumerate(xs):
        canvas.text(left + (index + 0.5) * cell_w, top + plot_h + 18,
                    f"{x_value:g}", anchor="middle", size=10)
    for index, y_value in enumerate(ys):
        y = top + (len(ys) - 1 - index + 0.5) * cell_h
        canvas.text(left - 8, y + 4, f"{y_value:g}", anchor="end", size=10)
    canvas.text(left + plot_w / 2, height - 16, grid.x_name,
                anchor="middle")
    canvas.text(24, top + plot_h / 2, grid.y_name, anchor="middle",
                rotate=-90)

    # Legend ramp.
    legend_x = left + plot_w + 24
    step_h = plot_h / len(SEQUENTIAL_RAMP)
    for index, color in enumerate(SEQUENTIAL_RAMP):
        y = top + plot_h - (index + 1) * step_h
        canvas.rect(legend_x, y, 16, step_h - 1, color=color, rx=0)
    canvas.text(legend_x + 22, top + 10, si_label(hi), size=10)
    canvas.text(legend_x + 22, top + plot_h, si_label(lo), size=10)
    canvas.text(legend_x, top - 10, value_label, size=10,
                color=TEXT_SECONDARY)
    return canvas.to_string()
