"""ASCII terminal rendering for quick model inspection.

A character-grid canvas with log-log axes, used by the CLI to show
rooflines without leaving the terminal.  Deliberately simple: one
glyph per series (identity never rides on color alone here — there is
no color), axis tick labels on the decades, and a legend line.
"""

from __future__ import annotations

from ..errors import SpecError
from .scale import LogScale, si_label

#: Glyphs assigned to series in fixed order.
SERIES_GLYPHS = "*o+x#@%&"


class AsciiCanvas:
    """A character grid with (0,0) at the top-left."""

    def __init__(self, width: int = 72, height: int = 24) -> None:
        if width < 20 or height < 8:
            raise SpecError(f"ascii canvas too small: {width}x{height}")
        self.width = width
        self.height = height
        self._grid = [[" "] * width for _ in range(height)]

    def put(self, col: int, row: int, glyph: str) -> None:
        """Place one glyph, silently clipping out-of-range positions."""
        if len(glyph) != 1:
            raise SpecError(f"glyph must be a single character, got {glyph!r}")
        if 0 <= row < self.height and 0 <= col < self.width:
            self._grid[row][col] = glyph

    def write(self, col: int, row: int, text: str) -> None:
        """Write a string leftward-clipped at the canvas edge."""
        for offset, char in enumerate(text):
            self.put(col + offset, row, char)

    def to_string(self) -> str:
        """The grid as newline-joined rows, right-stripped."""
        return "\n".join("".join(row).rstrip() for row in self._grid)


def render_log_log(
    series: dict,
    x_label: str = "x",
    y_label: str = "y",
    width: int = 76,
    height: int = 22,
    markers: dict | None = None,
) -> str:
    """Render ``{name: [(x, y), ...]}`` series on log-log axes.

    ``markers`` optionally maps a name to a single highlighted (x, y)
    point drawn with ``O``.  Returns the plot as a string.
    """
    if not series:
        raise SpecError("render_log_log needs at least one series")
    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    if markers:
        xs += [x for x, _ in markers.values()]
        ys += [y for _, y in markers.values()]
    x_scale = LogScale.spanning(xs)
    y_scale = LogScale.spanning(ys)

    margin_left = 8
    margin_bottom = 3
    plot_w = width - margin_left - 1
    plot_h = height - margin_bottom - 1
    canvas = AsciiCanvas(width, height)

    # Axes.
    for row in range(plot_h + 1):
        canvas.put(margin_left, row, "|")
    for col in range(plot_w + 1):
        canvas.put(margin_left + col, plot_h, "-")
    canvas.put(margin_left, plot_h, "+")

    def to_cell(x: float, y: float) -> tuple:
        col = margin_left + round(x_scale(x) * (plot_w - 1)) + 1
        row = round((1.0 - y_scale(y)) * (plot_h - 1))
        return col, row

    # Ticks.
    for tick in x_scale.ticks():
        col, _ = to_cell(tick, y_scale.hi)
        canvas.put(col, plot_h, "+")
        canvas.write(max(0, col - 1), plot_h + 1, si_label(tick))
    for tick in y_scale.ticks():
        _, row = to_cell(x_scale.hi, tick)
        canvas.put(margin_left, row, "+")
        label = si_label(tick)
        canvas.write(max(0, margin_left - len(label) - 1), row, label)

    # Series.
    for index, (name, points) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        for x, y in points:
            if x <= 0 or y <= 0:
                continue
            col, row = to_cell(x, y)
            canvas.put(col, row, glyph)

    # Highlight markers.
    for name, (x, y) in (markers or {}).items():
        col, row = to_cell(x, y)
        canvas.put(col, row, "O")

    legend = "  ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]}={name}"
        for i, name in enumerate(series)
    )
    footer = f"x: {x_label}   y: {y_label}"
    return canvas.to_string() + "\n" + legend + "\n" + footer
