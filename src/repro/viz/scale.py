"""Axis scales and tick generation for log-log roofline plots.

Roofline plots are log-log by construction (Figure 1): operational
intensity spans 0.01-100+ ops/byte and performance spans orders of
magnitude.  :class:`LogScale` maps data values to the unit interval and
generates decade ticks with SI-prefixed labels.
"""

from __future__ import annotations

import math

from ..errors import SpecError


class LogScale:
    """A base-10 logarithmic scale from a data domain to [0, 1]."""

    def __init__(self, lo: float, hi: float) -> None:
        if not (lo > 0 and hi > 0):
            raise SpecError(f"log scale domain must be positive, got [{lo}, {hi}]")
        if not lo < hi:
            raise SpecError(f"log scale needs lo < hi, got [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        self._log_lo = math.log10(lo)
        self._span = math.log10(hi) - self._log_lo

    def __call__(self, value: float) -> float:
        """Map a data value to [0, 1] (values outside clamp)."""
        if value <= 0:
            raise SpecError(f"cannot place non-positive value {value!r} on log scale")
        position = (math.log10(value) - self._log_lo) / self._span
        return min(1.0, max(0.0, position))

    def invert(self, position: float) -> float:
        """Map a [0, 1] position back to the data domain."""
        return 10 ** (self._log_lo + position * self._span)

    def ticks(self) -> tuple:
        """Decade ticks covering the domain (at least two)."""
        first = math.ceil(self._log_lo - 1e-9)
        last = math.floor(self._log_lo + self._span + 1e-9)
        ticks = [10.0**k for k in range(first, last + 1)]
        if len(ticks) < 2:
            ticks = [self.lo, self.hi]
        return tuple(ticks)

    def sample(self, n: int = 128) -> tuple:
        """Geometrically spaced sample points across the domain."""
        if n < 2:
            raise SpecError(f"need at least 2 samples, got {n}")
        return tuple(self.invert(k / (n - 1)) for k in range(n))

    @classmethod
    def spanning(cls, values, pad_decades: float = 0.15) -> "LogScale":
        """A scale covering ``values`` with padding on each side."""
        finite = [v for v in values if v > 0 and math.isfinite(v)]
        if not finite:
            raise SpecError("no positive finite values to span")
        lo, hi = min(finite), max(finite)
        if lo == hi:
            lo, hi = lo / 10, hi * 10
        factor = 10**pad_decades
        return cls(lo / factor, hi * factor)


def si_label(value: float) -> str:
    """Short SI-prefixed tick label: ``1e9 -> '1G'``, ``0.1 -> '0.1'``."""
    if value == 0:
        return "0"
    for threshold, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            scaled = value / threshold
            return f"{scaled:g}{suffix}"
    if abs(value) >= 1:
        return f"{value:g}"
    return f"{value:g}"
