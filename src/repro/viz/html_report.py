"""Interactive HTML Gables explorer (the paper's web tool, recreated).

The Gables home page shipped "an interactive visualization tool to
facilitate deeper understanding" for two- and three-IP SoCs.  This
module generates a *self-contained* HTML document (no network, no
dependencies) with the same affordances for any N-IP design:

- sliders for each IP's work weight and operational intensity and for
  the DRAM bandwidth multiplier;
- the scaled-roofline plot (Section III-C) re-rendered live: per-IP
  curves, the memory roofline, drop lines, and the attainable point;
- the bottleneck and attainable performance restated as text.

The embedded JavaScript reimplements Equations 12-14 exactly; the
Python test suite cross-checks the embedded parameters and the initial
server-side numbers against :func:`repro.core.evaluate`.
"""

from __future__ import annotations

import json

from ..core.gables import evaluate
from ..core.params import SoCSpec, Workload
from .svg import SERIES_COLORS

#: Sliders cover intensities 2^-7 .. 2^10 ops/byte.
_LOG2_I_MIN, _LOG2_I_MAX = -7, 10

_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<style>
  :root {
    --surface-1: #fcfcfb; --text-primary: #0b0b0b;
    --text-secondary: #52514e; --grid: #e4e3de; --axis: #b5b4ac;
  }
  body { font: 14px/1.5 system-ui, sans-serif; margin: 24px;
         background: var(--surface-1); color: var(--text-primary);
         max-width: 980px; }
  h1 { font-size: 18px; }
  .panel { display: flex; gap: 24px; flex-wrap: wrap; }
  .controls { min-width: 300px; }
  .controls fieldset { border: 1px solid var(--grid); border-radius: 6px;
                       margin-bottom: 12px; }
  .controls label { display: block; margin: 6px 0 0; font-size: 12px;
                    color: var(--text-secondary); }
  .controls input[type=range] { width: 100%; }
  .swatch { display: inline-block; width: 10px; height: 10px;
            border-radius: 2px; margin-right: 6px; }
  #answer { font-weight: 600; margin: 8px 0; }
  svg text { font: 11px system-ui, sans-serif; }
</style>
</head>
<body>
<h1>__TITLE__</h1>
<p>Gables scaled rooflines (Hill &amp; Reddi, HPCA 2019).  Drag the
sliders: work weights are renormalized to fractions, intensities are
log&#8322; scales, and the plot re-evaluates Equations 12&ndash;14 live.</p>
<div class="panel">
  <div class="controls" id="controls"></div>
  <div>
    <div id="answer"></div>
    <svg id="plot" width="640" height="440" role="img"
         aria-label="Gables scaled roofline plot"></svg>
  </div>
</div>
<script>
"use strict";
const MODEL = __MODEL_JSON__;
const COLORS = __COLORS_JSON__;
const LOG2_I_MIN = __I_MIN__, LOG2_I_MAX = __I_MAX__;

const state = {
  weights: MODEL.fractions.slice(),
  log2I: MODEL.intensities.map(i => Math.log2(i)),
  bpeakScale: 1.0,
};

function fractions() {
  const total = state.weights.reduce((a, b) => a + b, 0);
  if (total <= 0) { const f = MODEL.fractions.slice(); return f; }
  return state.weights.map(w => w / total);
}

function evaluateGables() {
  // Equations 12-14: min over active scaled rooflines + memory.
  const f = fractions();
  const bpeak = MODEL.bpeak * state.bpeakScale;
  let best = Infinity, bottleneck = "?";
  const points = [];
  let invIavg = 0;
  for (let i = 0; i < MODEL.ips.length; i++) {
    if (f[i] <= 0) continue;
    const I = Math.pow(2, state.log2I[i]);
    invIavg += f[i] / I;
    const bound = Math.min(MODEL.ips[i].bandwidth * I,
                           MODEL.ips[i].accel * MODEL.ppeak) / f[i];
    points.push({ name: MODEL.ips[i].name, x: I, y: bound, index: i });
    if (bound < best) { best = bound; bottleneck = MODEL.ips[i].name; }
  }
  if (invIavg > 0) {
    const iavg = 1 / invIavg;
    const memBound = bpeak * iavg;
    points.push({ name: "memory", x: iavg, y: memBound,
                  index: MODEL.ips.length });
    if (memBound < best) { best = memBound; bottleneck = "memory"; }
  }
  return { attainable: best, bottleneck, points, f, bpeak };
}

function fmt(v) {
  const units = [[1e12, "T"], [1e9, "G"], [1e6, "M"], [1e3, "K"]];
  for (const [s, p] of units)
    if (v >= s) return (v / s).toPrecision(3) + p;
  return v.toPrecision(3);
}

function render() {
  const result = evaluateGables();
  const svg = document.getElementById("plot");
  const W = 640, H = 440, L = 64, R = 90, T = 20, B = 44;
  const xs = result.points.map(p => p.x);
  const xmin = Math.min(...xs) / 8, xmax = Math.max(...xs) * 8;
  let ys = result.points.map(p => p.y);
  for (const p of result.points) {
    ys.push(p.y * 0.1); ys.push(p.y * 10);
  }
  const ymin = Math.min(...ys), ymax = Math.max(...ys);
  const lx = v => L + (Math.log10(v) - Math.log10(xmin)) /
      (Math.log10(xmax) - Math.log10(xmin)) * (W - L - R);
  const ly = v => T + (1 - (Math.log10(v) - Math.log10(ymin)) /
      (Math.log10(ymax) - Math.log10(ymin))) * (H - T - B);
  let parts = [];
  // Decade grid.
  for (let k = Math.ceil(Math.log10(xmin)); k <= Math.log10(xmax); k++) {
    const x = lx(Math.pow(10, k));
    parts.push(`<line x1="${x}" y1="${T}" x2="${x}" y2="${H - B}"
        stroke="var(--grid)"/>`);
    parts.push(`<text x="${x}" y="${H - B + 16}" text-anchor="middle"
        fill="var(--text-secondary)">${fmt(Math.pow(10, k))}</text>`);
  }
  for (let k = Math.ceil(Math.log10(ymin)); k <= Math.log10(ymax); k++) {
    const y = ly(Math.pow(10, k));
    parts.push(`<line x1="${L}" y1="${y}" x2="${W - R}" y2="${y}"
        stroke="var(--grid)"/>`);
    parts.push(`<text x="${L - 6}" y="${y + 4}" text-anchor="end"
        fill="var(--text-secondary)">${fmt(Math.pow(10, k))}</text>`);
  }
  parts.push(`<line x1="${L}" y1="${H - B}" x2="${W - R}" y2="${H - B}"
      stroke="var(--axis)" stroke-width="1.5"/>`);
  parts.push(`<line x1="${L}" y1="${T}" x2="${L}" y2="${H - B}"
      stroke="var(--axis)" stroke-width="1.5"/>`);
  // Scaled rooflines + memory line, sampled geometrically.
  const curveAt = (p, I) => p.name === "memory"
      ? result.bpeak * I
      : Math.min(MODEL.ips[p.index].bandwidth * I,
                 MODEL.ips[p.index].accel * MODEL.ppeak) /
        result.f[p.index];
  for (const p of result.points) {
    const color = COLORS[p.index % COLORS.length];
    const coords = [];
    for (let s = 0; s <= 64; s++) {
      const I = xmin * Math.pow(xmax / xmin, s / 64);
      const y = Math.min(Math.max(curveAt(p, I), ymin), ymax);
      coords.push(`${lx(I).toFixed(1)},${ly(y).toFixed(1)}`);
    }
    parts.push(`<polyline points="${coords.join(" ")}" fill="none"
        stroke="${color}" stroke-width="2"/>`);
    parts.push(`<text x="${W - R + 6}" y="${ly(Math.min(Math.max(
        curveAt(p, xmax), ymin), ymax)) + 4}"
        fill="var(--text-secondary)">${p.name}</text>`);
    // Drop line + operating point.
    parts.push(`<line x1="${lx(p.x)}" y1="${ly(p.y)}" x2="${lx(p.x)}"
        y2="${H - B}" stroke="${color}" stroke-dasharray="4 4"/>`);
    parts.push(`<circle cx="${lx(p.x)}" cy="${ly(p.y)}" r="4"
        fill="${color}" stroke="var(--surface-1)" stroke-width="2">
        <title>${p.name}: I=${p.x.toPrecision(3)},
        P=${fmt(p.y)}ops/s</title></circle>`);
  }
  const binding = result.points.find(p => p.name === result.bottleneck);
  if (binding) {
    parts.push(`<circle cx="${lx(binding.x)}" cy="${ly(binding.y)}" r="6"
        fill="var(--text-primary)" stroke="var(--surface-1)"
        stroke-width="2"/>`);
  }
  parts.push(`<text x="${(L + W - R) / 2}" y="${H - 8}"
      text-anchor="middle" fill="var(--text-secondary)">
      operational intensity (ops/byte)</text>`);
  svg.innerHTML = parts.join("");
  document.getElementById("answer").textContent =
      `P_attainable = ${fmt(result.attainable)}ops/s ` +
      `(bottleneck: ${result.bottleneck}, ` +
      `Bpeak = ${fmt(result.bpeak)}B/s)`;
}

function buildControls() {
  const host = document.getElementById("controls");
  let html = "";
  MODEL.ips.forEach((ip, i) => {
    const color = COLORS[i % COLORS.length];
    html += `<fieldset><legend><span class="swatch"
        style="background:${color}"></span>${ip.name}
        (A=${ip.accel}, B=${fmt(ip.bandwidth)}B/s)</legend>
      <label>work weight: <span id="wv${i}"></span></label>
      <input type="range" id="w${i}" min="0" max="100"
             value="${Math.round(MODEL.fractions[i] * 100)}">
      <label>intensity I (ops/byte): <span id="iv${i}"></span></label>
      <input type="range" id="i${i}" min="${LOG2_I_MIN}"
             max="${LOG2_I_MAX}" step="0.1"
             value="${Math.log2(MODEL.intensities[i]).toFixed(1)}">
    </fieldset>`;
  });
  html += `<fieldset><legend>memory</legend>
    <label>Bpeak multiplier: <span id="bv"></span></label>
    <input type="range" id="b" min="-2" max="2" step="0.1" value="0">
    </fieldset>`;
  host.innerHTML = html;
  MODEL.ips.forEach((ip, i) => {
    document.getElementById(`w${i}`).addEventListener("input", e => {
      state.weights[i] = Number(e.target.value) / 100; update();
    });
    document.getElementById(`i${i}`).addEventListener("input", e => {
      state.log2I[i] = Number(e.target.value); update();
    });
  });
  document.getElementById("b").addEventListener("input", e => {
    state.bpeakScale = Math.pow(2, Number(e.target.value)); update();
  });
}

function update() {
  const f = fractions();
  MODEL.ips.forEach((ip, i) => {
    document.getElementById(`wv${i}`).textContent =
        `f = ${f[i].toFixed(3)}`;
    document.getElementById(`iv${i}`).textContent =
        Math.pow(2, state.log2I[i]).toPrecision(3);
  });
  document.getElementById("bv").textContent =
      `${state.bpeakScale.toFixed(2)}x`;
  render();
}

buildControls();
update();
</script>
</body>
</html>
"""


def interactive_report(
    soc: SoCSpec, workload: Workload, title: str | None = None
) -> str:
    """Generate the self-contained interactive explorer HTML.

    The initial slider positions reproduce ``workload`` on ``soc``;
    the document needs no network access or external assets.
    """
    model = {
        "ppeak": soc.peak_perf,
        "bpeak": soc.memory_bandwidth,
        "ips": [
            {
                "name": ip.name,
                "accel": ip.acceleration,
                # JSON has no Infinity; clamp unconstrained links far
                # above any plausible operating point instead.
                "bandwidth": min(ip.bandwidth, 1e18),
            }
            for ip in soc.ips
        ],
        "fractions": list(workload.fractions),
        "intensities": [
            min(max(i, 2.0**_LOG2_I_MIN), 2.0**_LOG2_I_MAX)
            for i in workload.intensities
        ],
    }
    # Keep the initial answer honest: server-side evaluation goes into
    # the title so tests can cross-check Python vs the JS reimplementation.
    result = evaluate(soc, workload)
    heading = title or (
        f"{soc.name} / {workload.name} - "
        f"{result.attainable / 1e9:.4g} Gops/s ({result.bottleneck})"
    )
    html = _TEMPLATE
    html = html.replace("__TITLE__", heading)
    html = html.replace("__MODEL_JSON__", json.dumps(model))
    html = html.replace("__COLORS_JSON__", json.dumps(list(SERIES_COLORS)))
    html = html.replace("__I_MIN__", str(_LOG2_I_MIN))
    html = html.replace("__I_MAX__", str(_LOG2_I_MAX))
    return html


def save_interactive_report(
    soc: SoCSpec, workload: Workload, path, title: str | None = None
) -> None:
    """Write the explorer to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(interactive_report(soc, workload, title=title))
