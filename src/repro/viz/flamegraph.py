"""Flamegraph-style SVG rendering of a phase-profile tree.

Renders the profiler's aggregated timing tree (see
:mod:`repro.obs.profile`) as stacked horizontal bars: each depth is one
row, each scope a rectangle whose width is its share of the root total,
children nested directly below their parent.  Unlike sampling
flamegraphs the input is exact — widths are measured wall time, not
sample counts.

The renderer is duck-typed over any node with ``name``, ``count``,
``total_s``, ``self_s``, and ``children`` attributes, so ``viz`` never
imports ``obs`` (the dependency runs the other way: obs -> viz would
create a cycle through core).
"""

from __future__ import annotations

import math

from ..errors import SpecError
from .svg import SERIES_COLORS, SURFACE, TEXT_PRIMARY, TEXT_SECONDARY, SvgCanvas

#: Bar geometry (pixels).
ROW_HEIGHT = 22
ROW_GAP = 2
MARGIN = 12
HEADER = 28

#: Bars narrower than this get no label (the tooltip still carries it).
MIN_LABEL_WIDTH = 48
#: Bars narrower than this are not drawn at all (sub-pixel noise).
MIN_BAR_WIDTH = 0.5


def _tree_depth(node) -> int:
    if not node.children:
        return 1
    return 1 + max(_tree_depth(child) for child in node.children)


def profile_flame_svg(nodes, width: int = 960,
                      title: str = "phase profile") -> str:
    """The profile tree as a flamegraph-style SVG document.

    ``nodes`` are root profile nodes (e.g. ``Profiler.report()``).
    Widths are proportional to cumulative time; each bar carries a
    hover tooltip with name, call count, total, and self time.  Colors
    cycle the categorical palette by depth — depth is an ordering, not
    a category, so reuse is deliberate here.
    """
    nodes = tuple(nodes)
    if not nodes:
        raise SpecError("flamegraph needs at least one profile node")
    total = math.fsum(node.total_s for node in nodes)
    if total <= 0:
        raise SpecError("flamegraph needs a positive total time")
    depth = max(_tree_depth(node) for node in nodes)
    height = HEADER + depth * (ROW_HEIGHT + ROW_GAP) + MARGIN
    canvas = SvgCanvas(width=max(width, 64), height=max(height, 64))
    span = canvas.width - 2 * MARGIN
    canvas.text(MARGIN, HEADER - 10, f"{title} — {total:.4g}s total",
                color=TEXT_PRIMARY, size=13, weight="bold")

    def draw(node, x: float, level: int) -> None:
        bar_w = span * node.total_s / total
        if bar_w < MIN_BAR_WIDTH:
            return
        y = HEADER + level * (ROW_HEIGHT + ROW_GAP)
        share = 100.0 * node.total_s / total
        tooltip = (f"{node.name}: {node.count} call(s), "
                   f"{node.total_s:.6f}s total, {node.self_s:.6f}s self "
                   f"({share:.1f}%)")
        canvas.rect(x, y, bar_w, ROW_HEIGHT,
                    SERIES_COLORS[level % len(SERIES_COLORS)],
                    tooltip=tooltip)
        if bar_w >= MIN_LABEL_WIDTH:
            label = node.name
            # ~7px per character at size 11; elide rather than overflow.
            max_chars = max(1, int((bar_w - 8) / 7))
            if len(label) > max_chars:
                label = label[: max(1, max_chars - 1)] + "…"
            canvas.text(x + 4, y + ROW_HEIGHT - 7, label,
                        color=SURFACE, size=11)
        child_x = x
        for child in node.children:
            draw(child, child_x, level + 1)
            child_x += span * child.total_s / total

    x = float(MARGIN)
    for node in nodes:
        draw(node, x, 0)
        x += span * node.total_s / total
    # Legend line: self time is the unlabelled remainder inside a bar.
    canvas.text(MARGIN, canvas.height - 4,
                "bar width = cumulative time; gaps below a bar = self time",
                color=TEXT_SECONDARY, size=10)
    return canvas.to_string()


def save_profile_flame_svg(path, nodes, width: int = 960,
                           title: str = "phase profile") -> None:
    """Write :func:`profile_flame_svg` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(profile_flame_svg(nodes, width=width, title=title))
