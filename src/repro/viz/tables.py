"""Plain-text, Markdown, and CSV table rendering for model outputs.

Reports frequently leave the terminal: Markdown goes into design docs,
CSV into spreadsheets.  These helpers render generic header/rows
tables plus adapters for the library's common result shapes.
"""

from __future__ import annotations

import csv
import io as _io

from ..errors import SpecError


def _check(headers, rows) -> list:
    headers = list(headers)
    if not headers:
        raise SpecError("table needs at least one column")
    normalized = []
    for index, row in enumerate(rows):
        row = list(row)
        if len(row) != len(headers):
            raise SpecError(
                f"row {index} has {len(row)} cells for {len(headers)} "
                "columns"
            )
        normalized.append([str(cell) for cell in row])
    return normalized


def markdown_table(headers, rows) -> str:
    """A GitHub-flavoured Markdown table."""
    body = _check(headers, rows)
    header_line = "| " + " | ".join(str(h) for h in headers) + " |"
    rule = "|" + "|".join(" --- " for _ in headers) + "|"
    lines = [header_line, rule]
    for row in body:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def csv_table(headers, rows) -> str:
    """RFC-4180 CSV (proper quoting via the stdlib writer)."""
    body = _check(headers, rows)
    buffer = _io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([str(h) for h in headers])
    writer.writerows(body)
    return buffer.getvalue()


def result_table(result, fmt: str = "markdown") -> str:
    """A :class:`~repro.core.result.GablesResult` per-component table."""
    headers = ("component", "f", "I (ops/B)", "time (s/op)",
               "bound (ops/s)", "limiter")
    rows = []
    for term in result.ip_terms:
        rows.append((
            term.name,
            f"{term.fraction:.4g}",
            "idle" if not term.active else f"{term.intensity:.4g}",
            f"{term.time:.4g}",
            "-" if term.perf_bound is None else f"{term.perf_bound:.4g}",
            term.limiter,
        ))
    rows.append((
        "memory", "-", f"{result.average_intensity:.4g}",
        f"{result.memory_time:.4g}",
        f"{result.memory_perf_bound:.4g}", "-",
    ))
    for name, time in result.extra_times.items():
        rows.append((name, "-", "-", f"{time:.4g}",
                     "inf" if time == 0 else f"{1.0 / time:.4g}", "-"))
    return _render(headers, rows, fmt)


def sweep_table(series, fmt: str = "markdown") -> str:
    """A :class:`~repro.explore.sweep.SweepSeries` as a table."""
    headers = (series.parameter, "attainable (ops/s)", "bottleneck")
    rows = [
        (f"{point.value:.6g}", f"{point.attainable:.6g}", point.bottleneck)
        for point in series.points
    ]
    return _render(headers, rows, fmt)


def drift_table(points, fmt: str = "markdown") -> str:
    """A generational-drift projection as a table."""
    headers = ("year", "attainable (ops/s)", "bottleneck", "vs today")
    rows = [
        (f"{p.year:g}", f"{p.attainable:.4g}", p.bottleneck,
         f"{p.speedup_vs_today:.2f}x")
        for p in points
    ]
    return _render(headers, rows, fmt)


def trace_summary_table(summaries, fmt: str = "markdown",
                        width: int | None = None) -> str:
    """A span-tree time breakdown as a table.

    ``summaries`` is the output of
    :func:`repro.obs.export.summarize_spans` (depth-first tree order);
    rows indent span names by depth and report each path's share of the
    total root-span wall time.

    ``width`` (markdown only) caps the rendered line length for
    terminal display: deeply indented span names that would overflow
    are *wrapped* onto continuation rows — indentation preserved, stat
    cells blank — never truncated.  ``None`` leaves rows unwrapped.
    """
    total = sum(s.total_s for s in summaries if s.depth == 0)
    headers = ("span", "count", "total (s)", "mean (s)",
               "self (s)", "% of trace")
    rows = []
    for summary in summaries:
        share = 100.0 * summary.total_s / total if total > 0 else 0.0
        rows.append((
            "  " * summary.depth + summary.name,
            summary.count,
            f"{summary.total_s:.6f}",
            f"{summary.mean_s:.6f}",
            f"{summary.self_s:.6f}",
            f"{share:.1f}",
        ))
    if width is not None and fmt == "markdown":
        rows = _wrap_span_rows(rows, width)
    return _render(headers, rows, fmt)


def _wrap_span_rows(rows, width: int) -> list:
    """Wrap over-long span cells onto continuation rows.

    The markdown renderer emits ``| span | c1 | ... |``, so each line
    costs ``4 + len(span) + sum(3 + len(cell))`` characters.  For every
    row whose line would exceed ``width``, the span cell is split at
    the largest budget that fits (floored at 16 characters so a narrow
    terminal still produces usable rows); continuation rows repeat the
    indentation and leave the stat cells empty.
    """
    wrapped = []
    for row in rows:
        span, *stats = (str(cell) for cell in row)
        overhead = 4 + sum(3 + len(cell) for cell in stats)
        budget = max(16, width - overhead)
        if len(span) <= budget:
            wrapped.append(row)
            continue
        indent = span[: len(span) - len(span.lstrip(" "))]
        body = span[len(indent):]
        chunk = max(1, budget - len(indent))
        pieces = [indent + body[i:i + chunk]
                  for i in range(0, len(body), chunk)]
        wrapped.append((pieces[0], *stats))
        for piece in pieces[1:]:
            wrapped.append((piece, *[""] * len(stats)))
    return wrapped


def _render(headers, rows, fmt: str) -> str:
    if fmt == "markdown":
        return markdown_table(headers, rows)
    if fmt == "csv":
        return csv_table(headers, rows)
    raise SpecError(f"unknown table format {fmt!r}; use markdown|csv")
