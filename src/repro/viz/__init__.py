"""Dependency-free visualization: SVG and ASCII scaled-roofline plots.

The paper's Section III-C plots (per-IP scaled rooflines, the memory
roofline, drop lines at each operating intensity, and the attainable
point) are produced by :func:`roofline_svg` / :func:`roofline_ascii`
from a :class:`RooflinePlotData` extracted from any model evaluation.
Sweep and market figures use :func:`line_chart_svg` /
:func:`bar_chart_svg`.
"""

from .ascii_art import SERIES_GLYPHS, AsciiCanvas, render_log_log
from .diagram import dataflow_diagram_svg, soc_diagram_svg
from .flamegraph import profile_flame_svg, save_profile_flame_svg
from .heatmap import SEQUENTIAL_RAMP, heatmap_svg
from .html_report import interactive_report, save_interactive_report
from .roofline_plot import (
    RooflinePlotData,
    classic_roofline_plot,
    roofline_ascii,
    roofline_svg,
    save_roofline_svg,
)
from .scale import LogScale, si_label
from .svg import SERIES_COLORS, SvgCanvas, series_color, series_style
from .sweep_plot import bar_chart_svg, line_chart_svg, sweep_series_svg
from .tables import (
    csv_table,
    drift_table,
    markdown_table,
    result_table,
    sweep_table,
    trace_summary_table,
)

__all__ = [
    "AsciiCanvas",
    "LogScale",
    "RooflinePlotData",
    "SEQUENTIAL_RAMP",
    "SERIES_COLORS",
    "SERIES_GLYPHS",
    "SvgCanvas",
    "bar_chart_svg",
    "classic_roofline_plot",
    "csv_table",
    "dataflow_diagram_svg",
    "drift_table",
    "heatmap_svg",
    "interactive_report",
    "markdown_table",
    "result_table",
    "sweep_table",
    "trace_summary_table",
    "line_chart_svg",
    "profile_flame_svg",
    "save_interactive_report",
    "save_profile_flame_svg",
    "render_log_log",
    "soc_diagram_svg",
    "roofline_ascii",
    "roofline_svg",
    "save_roofline_svg",
    "series_color",
    "series_style",
    "si_label",
    "sweep_series_svg",
]
