"""Unit constants and human-readable formatting helpers.

The Gables paper quotes hardware in Gops/s (or GFLOP/s) and GB/s.  The
library stores everything in base SI units (operations per second,
bytes per second, bytes, seconds) and uses these helpers at the API and
reporting boundaries.  Decimal prefixes are used throughout, matching
the paper (1 GB/s = 1e9 bytes/s), except for memory *capacities* where
binary prefixes are conventional (1 KiB = 1024 bytes).
"""

from __future__ import annotations

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

KIB = 1024
MIB = 1024**2
GIB = 1024**3

#: Bytes per single-precision word, the paper's default element size.
SP_WORD_BYTES = 4
#: Bytes per double-precision word.
DP_WORD_BYTES = 8

_DECIMAL_STEPS = (
    (TERA, "T"),
    (GIGA, "G"),
    (MEGA, "M"),
    (KILO, "K"),
)

_BINARY_STEPS = (
    (GIB, "GiB"),
    (MIB, "MiB"),
    (KIB, "KiB"),
)


def _format_decimal(value: float, unit: str, precision: int = 3) -> str:
    """Render ``value`` with the largest decimal prefix that fits."""
    if value != value:  # NaN
        return f"nan {unit}"
    if value in (float("inf"), float("-inf")):
        sign = "-" if value < 0 else ""
        return f"{sign}inf {unit}"
    magnitude = abs(value)
    for step, prefix in _DECIMAL_STEPS:
        if magnitude >= step:
            return f"{value / step:.{precision}g} {prefix}{unit}"
    return f"{value:.{precision}g} {unit}"


def format_ops(ops_per_second: float, precision: int = 3) -> str:
    """Format a performance value, e.g. ``4.0e10 -> '40 Gops/s'``."""
    return _format_decimal(ops_per_second, "ops/s", precision)


def format_flops(flops_per_second: float, precision: int = 3) -> str:
    """Format a floating-point rate, e.g. ``7.5e9 -> '7.5 GFLOP/s'``."""
    return _format_decimal(flops_per_second, "FLOP/s", precision)


def format_bandwidth(bytes_per_second: float, precision: int = 3) -> str:
    """Format a bandwidth, e.g. ``1.51e10 -> '15.1 GB/s'``."""
    return _format_decimal(bytes_per_second, "B/s", precision)


def format_bytes(num_bytes: float, precision: int = 3) -> str:
    """Format a capacity with binary prefixes, e.g. ``2097152 -> '2 MiB'``."""
    if num_bytes != num_bytes:
        return "nan B"
    magnitude = abs(num_bytes)
    for step, prefix in _BINARY_STEPS:
        if magnitude >= step:
            return f"{num_bytes / step:.{precision}g} {prefix}"
    return f"{num_bytes:.{precision}g} B"


def format_seconds(seconds: float, precision: int = 3) -> str:
    """Format a duration, scaling down to ms/us/ns for small values."""
    if seconds != seconds:
        return "nan s"
    if seconds in (float("inf"), float("-inf")):
        return "inf s" if seconds > 0 else "-inf s"
    magnitude = abs(seconds)
    if magnitude >= 1 or magnitude == 0:
        return f"{seconds:.{precision}g} s"
    for scale, suffix in ((1e-3, "ms"), (1e-6, "us"), (1e-9, "ns")):
        if magnitude >= scale:
            return f"{seconds / scale:.{precision}g} {suffix}"
    return f"{seconds / 1e-12:.{precision}g} ps"


def format_intensity(ops_per_byte: float, precision: int = 3) -> str:
    """Format an operational intensity, e.g. ``8 -> '8 ops/byte'``."""
    if ops_per_byte == float("inf"):
        return "inf ops/byte"
    return f"{ops_per_byte:.{precision}g} ops/byte"
