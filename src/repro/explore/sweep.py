"""One-dimensional parameter sweeps over the Gables model.

The paper's analyses are sweeps: Figure 6 walks ``f``, ``Bpeak`` and
``I1``; Figure 8 sweeps ``f`` per intensity line.  This module provides
those sweeps over *any* evaluator with the model's signature, recording
the attainable performance and the binding component at every point —
the bottleneck transitions are where the design insight lives.

Each built-in sweep runs on the vectorized batch engine
(:func:`repro.core.batch.evaluate_batch`): the whole parameter grid is
constructed as numpy arrays and evaluated in one shot, which is what
makes dense, interactive sweeps cheap (see ``docs/performance.md``).
Passing a custom ``evaluate_fn`` opts out of batching and falls back to
the per-point scalar loop, preserving the pluggable-evaluator escape
hatch for power-constrained or extended models.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace
from typing import NamedTuple

import numpy as np

from ..core.batch import evaluate_batch, fraction_grid
from ..core.gables import evaluate
from ..core.params import SoCSpec, Workload
from ..core.variants import (
    ModelVariant,
    evaluate_variant,
    evaluate_variant_batch,
)
from ..errors import ReproError, SpecError, WorkloadError
from ..obs.metrics import counter as _counter
from ..obs.profile import profile_scope as _profile_scope
from ..obs.trace import span as _span
from ..resilience.partial import check_on_error, record_failure

_SWEEP_SERIES = _counter("explore.sweep.series")
_SWEEP_POINTS = _counter("explore.sweep.points")
_SWEEP_BATCHES = _counter("explore.sweep.batches")


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: input value, bound, and attribution."""

    value: float
    attainable: float
    bottleneck: str


class BottleneckTransition(NamedTuple):
    """One binding-component crossover, bracketed by its sample points.

    The crossover happens somewhere in ``(previous_value, value]``:
    ``previous_value`` is the last sample still bound by
    ``from_component`` and ``value`` the first sample bound by
    ``to_component`` (``index`` is that point's position in the
    series).  Plots can bracket the crossover with both endpoints
    instead of a single post-transition tick.
    """

    value: float
    from_component: str
    to_component: str
    previous_value: float
    index: int


@dataclass(frozen=True)
class SweepSeries:
    """An ordered sweep with transition analysis.

    ``errors`` holds :class:`repro.resilience.PointFailure` records
    (``coords=(swept_value,)``) for points that failed under a tolerant
    ``on_error`` mode; failed points are never part of ``points``.
    """

    parameter: str
    points: tuple
    errors: tuple = ()

    def values(self) -> tuple:
        """The swept input values."""
        return tuple(p.value for p in self.points)

    def attainables(self) -> tuple:
        """Attainable performance at each point."""
        return tuple(p.attainable for p in self.points)

    def best(self) -> SweepPoint:
        """The point with the highest attainable performance."""
        return max(self.points, key=lambda p: p.attainable)

    def bottleneck_transitions(self) -> tuple:
        """Crossovers where the binding component changes.

        Returns :class:`BottleneckTransition` records — e.g. the ``f``
        interval over which a two-IP design flips from CPU-bound to
        memory-bound.  Each record carries both the pre- and
        post-transition sample values, bracketing the crossover.
        """
        transitions = []
        for index, (before, after) in enumerate(
            zip(self.points, self.points[1:])
        ):
            if before.bottleneck != after.bottleneck:
                transitions.append(
                    BottleneckTransition(
                        value=after.value,
                        from_component=before.bottleneck,
                        to_component=after.bottleneck,
                        previous_value=before.value,
                        index=index + 1,
                    )
                )
        return tuple(transitions)


EvaluateFn = Callable[[SoCSpec, Workload], object]


def _series(
    parameter: str,
    values: Sequence[float],
    build: Callable[[float], tuple],
    evaluate_fn: EvaluateFn,
    batch_fn=None,
    on_error: str = "raise",
    variant: ModelVariant | None = None,
) -> SweepSeries:
    check_on_error(on_error)
    if variant is not None and evaluate_fn is not evaluate:
        raise SpecError(
            "pass either a custom evaluate_fn or a variant, not both"
        )
    use_batch = (
        batch_fn is not None
        and evaluate_fn is evaluate
        and on_error == "raise"
    )
    if variant is not None:
        # Route scalar fallbacks through the lowered engine; the batch
        # fast path (built variant-aware by the sweep functions) stays.
        def evaluate_fn(soc, workload, _variant=variant):  # noqa: F811
            return evaluate_variant(soc, workload, _variant)

    if len(values) == 0:
        raise SpecError(f"sweep over {parameter!r} needs at least one value")
    _SWEEP_SERIES.inc()
    _SWEEP_POINTS.inc(len(values))
    errors: tuple = ()
    with _span("explore.sweep", parameter=parameter, points=len(values)), \
            _profile_scope("explore.sweep"):
        if use_batch:
            # Fast path: the whole grid through the vectorized engine.
            _SWEEP_BATCHES.inc()
            batch = batch_fn(np.asarray(values, dtype=float))
            names = batch.component_names
            points = tuple(
                SweepPoint(
                    value=float(value),
                    attainable=attainable,
                    bottleneck=names[code],
                )
                for value, attainable, code in zip(
                    values,
                    batch.attainables.tolist(),
                    batch.bottleneck_codes.tolist(),
                )
            )
        else:
            # Scalar loop: custom evaluators, and the tolerant modes
            # (which need per-point exception capture).  Surviving
            # points are bitwise identical to a fault-free run — the
            # same scalar evaluation either way.
            scalar_points = []
            failures = []
            for value in values:
                try:
                    soc, workload = build(value)
                    result = evaluate_fn(soc, workload)
                except ReproError as err:
                    if on_error == "raise":
                        raise
                    failures.append(record_failure((float(value),), err))
                    continue
                scalar_points.append(
                    SweepPoint(
                        value=float(value),
                        attainable=result.attainable,
                        bottleneck=result.bottleneck,
                    )
                )
            points = tuple(scalar_points)
            if on_error == "record":
                errors = tuple(failures)
    return SweepSeries(parameter=parameter, points=points, errors=errors)


def _require_workload_variant(
    variant: ModelVariant | None, parameter: str
) -> None:
    """Reject workload-parameter sweeps of workload-free variants."""
    if variant is not None and not variant.requires_workload:
        raise SpecError(
            f"variant {variant.kind!r} carries its own workloads; "
            f"cannot sweep {parameter!r}"
        )


def _workload_matrices(workload: Workload, k: int) -> tuple:
    """The workload's (fi, Ii) vectors tiled to K batch rows."""
    shape = (k, workload.n_ips)
    fractions = np.broadcast_to(
        np.asarray(workload.fractions, dtype=float), shape
    )
    intensities = np.broadcast_to(
        np.asarray(workload.intensities, dtype=float), shape
    )
    return fractions, intensities


def sweep_fraction(
    soc: SoCSpec,
    workload: Workload,
    ip_index: int,
    fractions: Sequence[float],
    evaluate_fn: EvaluateFn = evaluate,
    on_error: str = "raise",
    variant: ModelVariant | None = None,
    engine: str = "auto",
) -> SweepSeries:
    """Sweep the share of work at one IP (the paper's f-sweeps).

    Work removed from / granted to IP ``ip_index`` is redistributed
    proportionally among the rest (see
    :meth:`~repro.core.params.Workload.with_fraction_at`).
    """
    _require_workload_variant(variant, f"f[{ip_index}]")

    def batch_fn(values: np.ndarray):
        grid = fraction_grid(workload.fractions, ip_index, values)
        intensities_m = np.broadcast_to(
            np.asarray(workload.intensities, dtype=float), grid.shape
        )
        if variant is None:
            return evaluate_batch(
                soc, grid, intensities_m, validate=False, engine=engine
            )
        return evaluate_variant_batch(
            soc, variant, grid, intensities_m, validate=False,
            engine=engine,
        )

    return _series(
        f"f[{ip_index}]",
        fractions,
        lambda f: (soc, workload.with_fraction_at(ip_index, f)),
        evaluate_fn,
        batch_fn,
        on_error=on_error,
        variant=variant,
    )


def sweep_intensity(
    soc: SoCSpec,
    workload: Workload,
    ip_index: int,
    intensities: Sequence[float],
    evaluate_fn: EvaluateFn = evaluate,
    on_error: str = "raise",
    variant: ModelVariant | None = None,
    engine: str = "auto",
) -> SweepSeries:
    """Sweep one IP's operational intensity (Fig. 6c -> 6d's ``I1``)."""
    if not 0 <= ip_index < workload.n_ips:
        raise SpecError(f"ip_index {ip_index} out of range")
    _require_workload_variant(variant, f"I[{ip_index}]")

    def build(value: float) -> tuple:
        intensities_new = list(workload.intensities)
        intensities_new[ip_index] = value
        return soc, replace(workload, intensities=tuple(intensities_new))

    def batch_fn(values: np.ndarray):
        if not np.all((values > 0) & ~np.isnan(values)):
            raise WorkloadError(
                "swept intensities must be positive (inf allowed)"
            )
        matrix = np.tile(
            np.asarray(workload.intensities, dtype=float), (len(values), 1)
        )
        matrix[:, ip_index] = values
        fractions_m, _ = _workload_matrices(workload, len(values))
        if variant is None:
            return evaluate_batch(
                soc, fractions_m, matrix, validate=False, engine=engine
            )
        return evaluate_variant_batch(
            soc, variant, fractions_m, matrix, validate=False,
            engine=engine,
        )

    return _series(
        f"I[{ip_index}]", intensities, build, evaluate_fn, batch_fn,
        on_error=on_error, variant=variant,
    )


def sweep_memory_bandwidth(
    soc: SoCSpec,
    workload: Workload,
    bandwidths: Sequence[float],
    evaluate_fn: EvaluateFn = evaluate,
    on_error: str = "raise",
    variant: ModelVariant | None = None,
    engine: str = "auto",
) -> SweepSeries:
    """Sweep ``Bpeak`` (Fig. 6b -> 6c's question: does more DRAM help?)."""

    def batch_fn(values: np.ndarray):
        if variant is not None and not variant.requires_workload:
            return evaluate_variant_batch(
                soc, variant, memory_bandwidth=values, engine=engine
            )
        fractions_m, intensities_m = _workload_matrices(workload, len(values))
        if variant is None:
            return evaluate_batch(
                soc, fractions_m, intensities_m, memory_bandwidth=values,
                engine=engine,
            )
        return evaluate_variant_batch(
            soc, variant, fractions_m, intensities_m,
            memory_bandwidth=values, engine=engine,
        )

    return _series(
        "Bpeak",
        bandwidths,
        lambda b: (soc.with_memory_bandwidth(b), workload),
        evaluate_fn,
        batch_fn,
        on_error=on_error,
        variant=variant,
    )


def sweep_ip_bandwidth(
    soc: SoCSpec,
    workload: Workload,
    ip_index: int,
    bandwidths: Sequence[float],
    evaluate_fn: EvaluateFn = evaluate,
    on_error: str = "raise",
    variant: ModelVariant | None = None,
    engine: str = "auto",
) -> SweepSeries:
    """Sweep one IP's link bandwidth ``Bi``."""
    if not 0 <= ip_index < soc.n_ips:
        raise SpecError(f"IP index {ip_index} out of range for N={soc.n_ips}")

    def batch_fn(values: np.ndarray):
        matrix = np.tile(
            np.array([ip.bandwidth for ip in soc.ips]), (len(values), 1)
        )
        matrix[:, ip_index] = values
        if variant is not None and not variant.requires_workload:
            return evaluate_variant_batch(
                soc, variant, ip_bandwidths=matrix, engine=engine
            )
        fractions_m, intensities_m = _workload_matrices(workload, len(values))
        if variant is None:
            return evaluate_batch(
                soc, fractions_m, intensities_m, ip_bandwidths=matrix,
                engine=engine,
            )
        return evaluate_variant_batch(
            soc, variant, fractions_m, intensities_m, ip_bandwidths=matrix,
            engine=engine,
        )

    return _series(
        f"B[{ip_index}]",
        bandwidths,
        lambda b: (soc.with_ip(ip_index, bandwidth=b), workload),
        evaluate_fn,
        batch_fn,
        on_error=on_error,
        variant=variant,
    )


def sweep_acceleration(
    soc: SoCSpec,
    workload: Workload,
    ip_index: int,
    accelerations: Sequence[float],
    evaluate_fn: EvaluateFn = evaluate,
    on_error: str = "raise",
    variant: ModelVariant | None = None,
    engine: str = "auto",
) -> SweepSeries:
    """Sweep one IP's acceleration ``Ai`` (how big should the IP be?)."""
    if ip_index == 0:
        raise SpecError("IP[0] defines Ppeak; its acceleration is fixed at 1")
    if not 0 <= ip_index < soc.n_ips:
        raise SpecError(f"IP index {ip_index} out of range for N={soc.n_ips}")

    def batch_fn(values: np.ndarray):
        if not np.all(np.isfinite(values) & (values > 0)):
            raise SpecError(
                "swept accelerations must be finite positive numbers"
            )
        matrix = np.tile(
            np.array([soc.ip_peak(i) for i in range(soc.n_ips)]),
            (len(values), 1),
        )
        matrix[:, ip_index] = values * soc.peak_perf
        if variant is not None and not variant.requires_workload:
            return evaluate_variant_batch(
                soc, variant, ip_peaks=matrix, engine=engine
            )
        fractions_m, intensities_m = _workload_matrices(workload, len(values))
        if variant is None:
            return evaluate_batch(
                soc, fractions_m, intensities_m, ip_peaks=matrix,
                engine=engine,
            )
        return evaluate_variant_batch(
            soc, variant, fractions_m, intensities_m, ip_peaks=matrix,
            engine=engine,
        )

    return _series(
        f"A[{ip_index}]",
        accelerations,
        lambda a: (soc.with_ip(ip_index, acceleration=a), workload),
        evaluate_fn,
        batch_fn,
        on_error=on_error,
        variant=variant,
    )
