"""One-dimensional parameter sweeps over the Gables model.

The paper's analyses are sweeps: Figure 6 walks ``f``, ``Bpeak`` and
``I1``; Figure 8 sweeps ``f`` per intensity line.  This module provides
those sweeps over *any* evaluator with the model's signature, recording
the attainable performance and the binding component at every point —
the bottleneck transitions are where the design insight lives.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace

from ..core.gables import evaluate
from ..core.params import SoCSpec, Workload
from ..errors import SpecError
from ..obs.metrics import counter as _counter
from ..obs.trace import span as _span

_SWEEP_SERIES = _counter("explore.sweep.series")
_SWEEP_POINTS = _counter("explore.sweep.points")


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: input value, bound, and attribution."""

    value: float
    attainable: float
    bottleneck: str


@dataclass(frozen=True)
class SweepSeries:
    """An ordered sweep with transition analysis."""

    parameter: str
    points: tuple

    def values(self) -> tuple:
        """The swept input values."""
        return tuple(p.value for p in self.points)

    def attainables(self) -> tuple:
        """Attainable performance at each point."""
        return tuple(p.attainable for p in self.points)

    def best(self) -> SweepPoint:
        """The point with the highest attainable performance."""
        return max(self.points, key=lambda p: p.attainable)

    def bottleneck_transitions(self) -> tuple:
        """Values where the binding component changes.

        Returns ``(value, from_component, to_component)`` triples —
        e.g. the ``f`` where a two-IP design flips from CPU-bound to
        memory-bound.
        """
        transitions = []
        for before, after in zip(self.points, self.points[1:]):
            if before.bottleneck != after.bottleneck:
                transitions.append(
                    (after.value, before.bottleneck, after.bottleneck)
                )
        return tuple(transitions)


EvaluateFn = Callable[[SoCSpec, Workload], object]


def _series(
    parameter: str,
    values: Sequence[float],
    build: Callable[[float], tuple],
    evaluate_fn: EvaluateFn,
) -> SweepSeries:
    if not values:
        raise SpecError(f"sweep over {parameter!r} needs at least one value")
    _SWEEP_SERIES.inc()
    _SWEEP_POINTS.inc(len(values))
    with _span("explore.sweep", parameter=parameter, points=len(values)):
        points = []
        for value in values:
            soc, workload = build(value)
            result = evaluate_fn(soc, workload)
            points.append(
                SweepPoint(
                    value=float(value),
                    attainable=result.attainable,
                    bottleneck=result.bottleneck,
                )
            )
    return SweepSeries(parameter=parameter, points=tuple(points))


def sweep_fraction(
    soc: SoCSpec,
    workload: Workload,
    ip_index: int,
    fractions: Sequence[float],
    evaluate_fn: EvaluateFn = evaluate,
) -> SweepSeries:
    """Sweep the share of work at one IP (the paper's f-sweeps).

    Work removed from / granted to IP ``ip_index`` is redistributed
    proportionally among the rest (see
    :meth:`~repro.core.params.Workload.with_fraction_at`).
    """
    return _series(
        f"f[{ip_index}]",
        fractions,
        lambda f: (soc, workload.with_fraction_at(ip_index, f)),
        evaluate_fn,
    )


def sweep_intensity(
    soc: SoCSpec,
    workload: Workload,
    ip_index: int,
    intensities: Sequence[float],
    evaluate_fn: EvaluateFn = evaluate,
) -> SweepSeries:
    """Sweep one IP's operational intensity (Fig. 6c -> 6d's ``I1``)."""
    if not 0 <= ip_index < workload.n_ips:
        raise SpecError(f"ip_index {ip_index} out of range")

    def build(value: float) -> tuple:
        intensities_new = list(workload.intensities)
        intensities_new[ip_index] = value
        return soc, replace(workload, intensities=tuple(intensities_new))

    return _series(f"I[{ip_index}]", intensities, build, evaluate_fn)


def sweep_memory_bandwidth(
    soc: SoCSpec,
    workload: Workload,
    bandwidths: Sequence[float],
    evaluate_fn: EvaluateFn = evaluate,
) -> SweepSeries:
    """Sweep ``Bpeak`` (Fig. 6b -> 6c's question: does more DRAM help?)."""
    return _series(
        "Bpeak",
        bandwidths,
        lambda b: (soc.with_memory_bandwidth(b), workload),
        evaluate_fn,
    )


def sweep_ip_bandwidth(
    soc: SoCSpec,
    workload: Workload,
    ip_index: int,
    bandwidths: Sequence[float],
    evaluate_fn: EvaluateFn = evaluate,
) -> SweepSeries:
    """Sweep one IP's link bandwidth ``Bi``."""
    return _series(
        f"B[{ip_index}]",
        bandwidths,
        lambda b: (soc.with_ip(ip_index, bandwidth=b), workload),
        evaluate_fn,
    )


def sweep_acceleration(
    soc: SoCSpec,
    workload: Workload,
    ip_index: int,
    accelerations: Sequence[float],
    evaluate_fn: EvaluateFn = evaluate,
) -> SweepSeries:
    """Sweep one IP's acceleration ``Ai`` (how big should the IP be?)."""
    if ip_index == 0:
        raise SpecError("IP[0] defines Ppeak; its acceleration is fixed at 1")
    return _series(
        f"A[{ip_index}]",
        accelerations,
        lambda a: (soc.with_ip(ip_index, acceleration=a), workload),
        evaluate_fn,
    )
