"""Balanced-design solvers (the Fig. 6d endgame).

The paper's walkthrough ends at a *perfectly balanced* design: all
three rooflines equal at the operating intensity, with no component
over-provisioned.  These solvers automate the steps the authors did by
hand:

- :func:`minimum_sufficient_bandwidth` — the smallest ``Bpeak`` that
  keeps memory from binding (Fig. 6d trimmed 30 GB/s down to 20);
- :func:`intensity_for_balance` — the reuse an IP must achieve so its
  link stops binding (Fig. 6d raised ``I1`` from 0.1 to 8);
- :func:`optimal_fraction` — the work split maximizing attainable
  performance on a two-IP SoC;
- :func:`balance_report` — which components are over-provisioned, and
  by how much, for a given design point.
"""

from __future__ import annotations

import math

from ..core.gables import evaluate, ip_terms
from ..core.params import SoCSpec, Workload
from ..errors import EvaluationError, SpecError


def minimum_sufficient_bandwidth(soc: SoCSpec, workload: Workload) -> float:
    """Smallest ``Bpeak`` at which memory is not the (sole) bottleneck.

    Memory time is ``sum(Di) / Bpeak``; the slowest non-memory
    component takes ``T* = max(T_IP[i])``.  Any ``Bpeak >= sum(Di)/T*``
    leaves attainable performance unchanged — spending more is pure
    cost without benefit, the Fig. 6c trap.
    """
    terms = ip_terms(soc, workload)
    total_bytes = math.fsum(term.data_bytes for term in terms)
    if total_bytes == 0:
        raise EvaluationError("usecase moves no data; any Bpeak is sufficient")
    slowest_ip = max(term.time for term in terms)
    if slowest_ip <= 0:
        raise EvaluationError("degenerate usecase: no IP takes time")
    return total_bytes / slowest_ip


def intensity_for_balance(soc: SoCSpec, workload: Workload, ip_index: int) -> float:
    """Reuse IP ``ip_index`` needs so its *link* no longer binds it.

    The IP's transfer time ``(fi / Ii) / Bi`` drops below its compute
    time ``fi / (Ai * Ppeak)`` once ``Ii >= Ai * Ppeak / Bi`` — the
    IP's own ridge point.  This is hardware-and-software work ("easier
    said than done", per the paper): more local memory *and* an
    algorithm that uses it.
    """
    if not 0 <= ip_index < soc.n_ips:
        raise SpecError(f"ip_index {ip_index} out of range for N={soc.n_ips}")
    ip = soc.ips[ip_index]
    if math.isinf(ip.bandwidth):
        return 0.0  # an unconstrained link never binds
    return soc.ip_peak(ip_index) / ip.bandwidth


def optimal_fraction(
    soc: SoCSpec,
    workload: Workload,
    ip_index: int = 1,
    resolution: int = 4096,
) -> tuple:
    """Work split maximizing attainable performance; ``(f*, P*)``.

    Dense grid search over ``f in [0, 1]``; the objective is piecewise
    smooth with at most a handful of breakpoints (each component's
    bound), so a fine grid plus local refinement is exact enough for
    model work.
    """
    if resolution < 8:
        raise SpecError(f"resolution must be >= 8, got {resolution}")

    def perf(f: float) -> float:
        return evaluate(soc, workload.with_fraction_at(ip_index, f)).attainable

    best_f, best_p = 0.0, -math.inf
    for k in range(resolution + 1):
        f = k / resolution
        p = perf(f)
        if p > best_p:
            best_f, best_p = f, p
    # Golden-section refinement around the grid winner.
    lo = max(0.0, best_f - 1.0 / resolution)
    hi = min(1.0, best_f + 1.0 / resolution)
    phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c, d = b - phi * (b - a), a + phi * (b - a)
    for _ in range(60):
        if perf(c) >= perf(d):
            b = d
        else:
            a = c
        c, d = b - phi * (b - a), a + phi * (b - a)
    f_star = (a + b) / 2.0
    p_star = perf(f_star)
    if p_star < best_p:
        f_star, p_star = best_f, best_p
    return f_star, p_star


def balance_report(soc: SoCSpec, workload: Workload) -> dict:
    """Slack per component: 0.0 = binding, 0.9 = 90% over-provisioned.

    Slack is ``1 - time/binding_time``; a balanced design (Fig. 6d)
    has (near-)zero slack on every *active* component.  Idle IPs are
    reported with slack 1.0 — candidates for removal in this usecase's
    context (though other usecases may need them; Table I's point).
    """
    result = evaluate(soc, workload)
    binding = max(result.component_times().values())
    slack = {}
    for term in result.ip_terms:
        slack[term.name] = 1.0 if not term.active else 1.0 - term.time / binding
    slack["memory"] = (
        1.0 if result.memory_time == 0 else 1.0 - result.memory_time / binding
    )
    return slack


def is_over_provisioned(
    soc: SoCSpec, workload: Workload, component: str, threshold: float = 0.5
) -> bool:
    """True when a component has more than ``threshold`` slack.

    The paper's third conjecture: estimating ``fi`` per usecase
    "can illuminate whether an IP is over-designed to provide more
    acceleration than is justified by the work assigned to it".
    """
    slack = balance_report(soc, workload)
    if component not in slack:
        raise SpecError(
            f"unknown component {component!r}; known: {sorted(slack)}"
        )
    return slack[component] > threshold
