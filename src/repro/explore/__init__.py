"""Design-space exploration on top of the Gables model.

- :mod:`.sweep` — 1-D parameter sweeps with bottleneck transitions;
- :mod:`.balance` — balanced-design solvers (sufficient ``Bpeak``,
  required reuse, optimal work split, slack reports);
- :mod:`.sensitivity` — elasticity of attainable performance to every
  hardware knob;
- :mod:`.ranking` — SoC down-selection over a usecase portfolio
  (worst-case, not average — the paper's criterion);
- :mod:`.pareto` — cost/performance frontiers;
- :mod:`.synthesis` — exact minimal-SoC synthesis for a portfolio of
  quality floors (the inverse Gables question).
"""

from .balance import (
    balance_report,
    intensity_for_balance,
    is_over_provisioned,
    minimum_sufficient_bandwidth,
    optimal_fraction,
)
from .fleet import (
    FleetGridResult,
    FleetPoint,
    FleetResult,
    GridChunkSummary,
    WorkerReport,
    evaluate_grid_chunks,
    evaluate_population,
    fleet_bench_records,
    grid_chunk,
    grid_chunk_plan,
    run_fleet_grid_sweep,
    run_fleet_sweep,
    worker_checkpoint_path,
)
from .pareto import (
    DesignPoint,
    default_cost_model,
    explore_bandwidth_frontier,
    pareto_front,
)
from .ranking import CandidateScore, UsecaseRequirement, rank_socs, score_candidate
from .scaling import (
    DriftPoint,
    TechnologyTrend,
    bottleneck_drift,
    project_soc,
    years_until_memory_bound,
)
from .sensitivity import SensitivityReport, sensitivity
from .synthesis import (
    SynthesizedDesign,
    cost_of_design,
    required_bandwidths,
    synthesize_soc,
)
from .sweep2d import (
    GridCell,
    SweepGrid,
    analytic_mixing_grid,
    sweep_grid,
)
from .sweep import (
    BottleneckTransition,
    SweepPoint,
    SweepSeries,
    sweep_acceleration,
    sweep_fraction,
    sweep_intensity,
    sweep_ip_bandwidth,
    sweep_memory_bandwidth,
)

__all__ = [
    "BottleneckTransition",
    "CandidateScore",
    "DesignPoint",
    "DriftPoint",
    "FleetGridResult",
    "FleetPoint",
    "FleetResult",
    "GridChunkSummary",
    "WorkerReport",
    "evaluate_grid_chunks",
    "evaluate_population",
    "fleet_bench_records",
    "grid_chunk",
    "grid_chunk_plan",
    "run_fleet_grid_sweep",
    "run_fleet_sweep",
    "worker_checkpoint_path",
    "TechnologyTrend",
    "bottleneck_drift",
    "project_soc",
    "years_until_memory_bound",
    "SensitivityReport",
    "GridCell",
    "SweepGrid",
    "SweepPoint",
    "SweepSeries",
    "analytic_mixing_grid",
    "sweep_grid",
    "SynthesizedDesign",
    "UsecaseRequirement",
    "cost_of_design",
    "required_bandwidths",
    "synthesize_soc",
    "balance_report",
    "default_cost_model",
    "explore_bandwidth_frontier",
    "intensity_for_balance",
    "is_over_provisioned",
    "minimum_sufficient_bandwidth",
    "optimal_fraction",
    "pareto_front",
    "rank_socs",
    "score_candidate",
    "sensitivity",
    "sweep_acceleration",
    "sweep_fraction",
    "sweep_intensity",
    "sweep_ip_bandwidth",
    "sweep_memory_bandwidth",
]
