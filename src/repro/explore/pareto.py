"""Pareto-frontier utilities for design-space exploration.

Early SoC design trades attainable performance against cost proxies
(DRAM bandwidth is expensive in power and pins; IP area is expensive in
silicon).  These helpers enumerate candidate designs, attach a cost,
and extract the non-dominated set.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.batch import evaluate_batch
from ..core.params import SoCSpec, Workload
from ..core.variants import ModelVariant, evaluate_variant_batch
from ..errors import SpecError
from ..obs.metrics import counter as _counter
from ..obs.trace import span as _span

_PARETO_CANDIDATES = _counter("explore.pareto.candidates")
_PARETO_KEPT = _counter("explore.pareto.kept")


@dataclass(frozen=True)
class DesignPoint:
    """One candidate design: label, cost (lower better), perf (higher)."""

    label: str
    cost: float
    performance: float

    def dominates(self, other: "DesignPoint") -> bool:
        """Weakly better on both axes, strictly on at least one."""
        no_worse = self.cost <= other.cost and self.performance >= other.performance
        strictly = self.cost < other.cost or self.performance > other.performance
        return no_worse and strictly


def pareto_front(points: Sequence[DesignPoint]) -> tuple:
    """Non-dominated subset, sorted by ascending cost.

    O(n log n): sweep by cost, keep points that raise the best-so-far
    performance.  Duplicate-cost points keep only the best performer.
    """
    if not points:
        raise SpecError("pareto_front needs at least one point")
    _PARETO_CANDIDATES.inc(len(points))
    with _span("explore.pareto_front", candidates=len(points)) as sp:
        ordered = sorted(points, key=lambda p: (p.cost, -p.performance))
        front = []
        best_perf = float("-inf")
        for point in ordered:
            if point.performance > best_perf:
                front.append(point)
                best_perf = point.performance
        _PARETO_KEPT.inc(len(front))
        sp.set_attribute("kept", len(front))
    return tuple(front)


#: Cost model signature: SoCSpec -> abstract cost units.
CostModel = Callable[[SoCSpec], float]


def default_cost_model(
    bandwidth_weight: float = 1.0, compute_weight: float = 0.2
) -> CostModel:
    """A simple cost proxy: GB/s of DRAM plus weighted total IP Gops.

    Bandwidth is weighted heavier than compute, reflecting the mobile
    reality the paper leans on (pins, power, and LPDDR cost scale with
    bandwidth; compute area is comparatively cheap).
    """
    if bandwidth_weight < 0 or compute_weight < 0:
        raise SpecError("cost weights must be non-negative")

    def cost(soc: SoCSpec) -> float:
        total_compute = sum(
            soc.ip_peak(i) for i in range(soc.n_ips)
        )
        return (
            bandwidth_weight * soc.memory_bandwidth / 1e9
            + compute_weight * total_compute / 1e9
        )

    return cost


def explore_bandwidth_frontier(
    soc: SoCSpec,
    workload: Workload,
    bandwidths: Sequence[float],
    cost_model: CostModel | None = None,
    variant: ModelVariant | None = None,
    engine: str = "auto",
) -> tuple:
    """Pareto frontier over ``Bpeak`` candidates for one usecase.

    Demonstrates the Fig. 6c lesson quantitatively: beyond the
    sufficient bandwidth, cost rises with zero performance gain, so
    those points fall off the frontier.  With ``variant`` set the axis
    is evaluated through the lowered pipeline instead of base Gables;
    workload-carrying variants (phased usecases) ignore ``workload``.
    """
    if not bandwidths:
        raise SpecError("need at least one candidate bandwidth")
    cost_model = cost_model or default_cost_model()
    # Candidate SoC objects are still built per point (the cost model
    # sees them); the model runs once over the whole bandwidth axis.
    candidates = [soc.with_memory_bandwidth(b) for b in bandwidths]
    bandwidth_axis = np.asarray(bandwidths, dtype=float)
    k = len(bandwidths)
    shape = (k, workload.n_ips)
    if variant is not None and not variant.requires_workload:
        batch = evaluate_variant_batch(
            soc, variant, memory_bandwidth=bandwidth_axis, engine=engine
        )
    else:
        fractions = np.broadcast_to(
            np.asarray(workload.fractions, dtype=float), shape
        )
        intensities = np.broadcast_to(
            np.asarray(workload.intensities, dtype=float), shape
        )
        if variant is None:
            batch = evaluate_batch(
                soc,
                fractions,
                intensities,
                memory_bandwidth=bandwidth_axis,
                validate=False,
                engine=engine,
            )
        else:
            batch = evaluate_variant_batch(
                soc,
                variant,
                fractions,
                intensities,
                memory_bandwidth=bandwidth_axis,
                validate=False,
                engine=engine,
            )
    points = [
        DesignPoint(
            label=f"Bpeak={bandwidth / 1e9:.3g}GB/s",
            cost=cost_model(candidate),
            performance=attainable,
        )
        for bandwidth, candidate, attainable in zip(
            bandwidths, candidates, batch.attainables.tolist()
        )
    ]
    return pareto_front(points)
