"""Design synthesis: the smallest SoC that clears a usecase portfolio.

Inverts the Gables question.  Instead of "what does this SoC attain?",
ask: given the usecase portfolio and quality floors (the paper's 10-20
usecases that must *all* run acceptably), what is the cheapest
(Bpeak, A1..An, B1..Bn) assignment that makes every usecase feasible?

The search is coordinate descent with analytic inner steps — for fixed
work splits, each hardware knob's minimum feasible value has a closed
form because Gables is a max() of linear terms:

- the memory interface needs ``Bpeak >= total_bytes * P_required``;
- IP[i]'s link needs ``Bi >= (fi / Ii) * P_required``;
- IP[i]'s engine needs ``Ai * Ppeak >= fi * P_required``.

Each knob's requirement is the max over the portfolio, so synthesis is
exact (no iteration needed) for a fixed ``Ppeak``; the paper's framing
"which IPs should my SoC include and roughly how big" becomes one
function call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import require_finite_positive
from ..core.batch import cached_evaluator
from ..core.params import IPBlock, SoCSpec
from ..errors import SpecError

#: Portfolio slack checks revisit the same (soc, workload) points across
#: synthesize calls (and ranking/report flows reuse them); a shared
#: memo makes the re-evaluations free.
_EVALUATE = cached_evaluator()


@dataclass(frozen=True)
class SynthesizedDesign:
    """Output of :func:`synthesize_soc`.

    ``soc`` is the minimal design; ``slack`` reports, per usecase, the
    attained/required headroom (all >= 1 by construction).
    """

    soc: SoCSpec
    slack: dict

    def binding_usecases(self, tol: float = 1e-6) -> tuple:
        """Usecases with (near-)zero headroom — the sizing drivers."""
        return tuple(
            sorted(
                name
                for name, headroom in self.slack.items()
                if headroom <= 1.0 + tol
            )
        )


def required_bandwidths(requirements, n_ips: int) -> tuple:
    """Closed-form per-knob minima over a portfolio.

    Returns ``(bpeak_min, link_mins, engine_mins)`` where
    ``link_mins[i]`` is the minimum ``Bi`` (bytes/s) and
    ``engine_mins[i]`` the minimum absolute engine rate ``Ai * Ppeak``
    (ops/s) for every usecase to hit its floor.
    """
    requirements = list(requirements)
    if not requirements:
        raise SpecError("portfolio needs at least one usecase")
    bpeak_min = 0.0
    link_mins = [0.0] * n_ips
    engine_mins = [0.0] * n_ips
    for requirement in requirements:
        workload = requirement.workload
        if workload.n_ips != n_ips:
            raise SpecError(
                f"usecase {requirement.name!r} covers {workload.n_ips} IPs, "
                f"expected {n_ips}"
            )
        target = requirement.required
        if target <= 0:
            continue
        total_bytes = math.fsum(
            f / i
            for f, i in zip(workload.fractions, workload.intensities)
            if f > 0 and not math.isinf(i)
        )
        bpeak_min = max(bpeak_min, total_bytes * target)
        for index in range(n_ips):
            fraction = workload.fractions[index]
            if fraction == 0:
                continue
            intensity = workload.intensities[index]
            if not math.isinf(intensity):
                link_mins[index] = max(
                    link_mins[index], (fraction / intensity) * target
                )
            engine_mins[index] = max(engine_mins[index], fraction * target)
    return bpeak_min, tuple(link_mins), tuple(engine_mins)


def synthesize_soc(
    requirements,
    n_ips: int,
    ip_names=None,
    peak_perf: float | None = None,
    name: str = "synthesized-soc",
) -> SynthesizedDesign:
    """The minimal SoC meeting every requirement (exact, closed form).

    Parameters
    ----------
    requirements:
        :class:`~repro.explore.ranking.UsecaseRequirement` instances
        with positive floors.
    n_ips:
        IP count every workload covers.
    ip_names:
        Optional names (default ``IP[0..N-1]``).
    peak_perf:
        ``Ppeak`` to pin IP[0] at.  Defaults to IP[0]'s own engine
        requirement (acceleration 1 exactly); a larger value shrinks
        the other IPs' ``Ai`` (they are expressed relative to it).

    Every requirement with a zero floor is ignored (it constrains
    nothing).  Raises when no usecase constrains an IP's engine and no
    ``peak_perf`` is given for IP[0].
    """
    bpeak_min, link_mins, engine_mins = required_bandwidths(
        requirements, n_ips
    )
    if peak_perf is None:
        peak_perf = engine_mins[0]
        if peak_perf <= 0:
            raise SpecError(
                "no usecase assigns work to IP[0]; pass peak_perf explicitly"
            )
    require_finite_positive(peak_perf, "peak_perf")
    if engine_mins[0] > peak_perf * (1 + 1e-12):
        raise SpecError(
            f"peak_perf {peak_perf:.3g} is below IP[0]'s requirement "
            f"{engine_mins[0]:.3g}"
        )
    names = tuple(ip_names) if ip_names else tuple(
        f"IP[{i}]" for i in range(n_ips)
    )
    if len(names) != n_ips:
        raise SpecError(f"need {n_ips} names, got {len(names)}")

    ips = []
    for index in range(n_ips):
        if index == 0:
            acceleration = 1.0
        else:
            acceleration = max(engine_mins[index] / peak_perf, 1e-12)
        bandwidth = link_mins[index] if link_mins[index] > 0 else math.inf
        ips.append(IPBlock(names[index], acceleration, bandwidth))
    soc = SoCSpec(
        peak_perf=peak_perf,
        memory_bandwidth=max(bpeak_min, 1.0),
        ips=tuple(ips),
        name=name,
    )

    slack = {}
    for requirement in requirements:
        if requirement.required <= 0:
            continue
        attained = _EVALUATE(soc, requirement.workload).attainable
        slack[requirement.name] = attained / requirement.required
        if attained < requirement.required * (1 - 1e-9):
            raise SpecError(
                f"synthesis failed to satisfy {requirement.name!r}: "
                f"{attained:.4g} < {requirement.required:.4g}"
            )
    return SynthesizedDesign(soc=soc, slack=slack)


def cost_of_design(soc: SoCSpec, bandwidth_weight: float = 1.0,
                   compute_weight: float = 0.2) -> float:
    """The pareto module's default cost applied to a synthesized SoC.

    Infinite link bandwidths (unconstrained IPs) are costed at the
    memory interface's bandwidth — an IP's port never usefully exceeds
    what DRAM can feed.
    """
    compute = math.fsum(soc.ip_peak(i) for i in range(soc.n_ips))
    links = math.fsum(
        min(ip.bandwidth, soc.memory_bandwidth) for ip in soc.ips
    )
    return (
        bandwidth_weight * (soc.memory_bandwidth + links) / 1e9
        + compute_weight * compute / 1e9
    )
