"""SoC down-selection: rank candidate chips across a usecase portfolio.

The paper's framing: "a consumer SoC must enable 10-20 important
usecases ... to all run acceptably well.  The average is immaterial."
Selection therefore scores a chip by its *worst* headroom across the
portfolio (every usecase must clear its requirement), with the
portfolio-wide minimum attainable as the tie-breaker — not by any mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.gables import evaluate
from ..core.params import SoCSpec, Workload
from ..errors import SpecError


@dataclass(frozen=True)
class UsecaseRequirement:
    """One portfolio entry: a workload and the ops/s it must sustain.

    ``required`` is the performance needed for acceptable quality
    (e.g. ``ops_per_frame * target_fps``); 0 means "no hard floor".
    """

    workload: Workload
    required: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.required < 0:
            raise SpecError(f"required must be >= 0, got {self.required!r}")
        if not self.name:
            object.__setattr__(self, "name", self.workload.name)


@dataclass(frozen=True)
class CandidateScore:
    """One SoC's evaluation against the whole portfolio."""

    soc_name: str
    headrooms: dict  # usecase -> attainable / required (inf if no floor)
    attainable: dict  # usecase -> ops/s
    worst_headroom: float
    feasible: bool  # every usecase meets its floor

    def failing_usecases(self) -> tuple:
        """Usecases whose requirement this SoC cannot meet."""
        return tuple(
            sorted(name for name, h in self.headrooms.items() if h < 1.0)
        )


def score_candidate(soc: SoCSpec, requirements) -> CandidateScore:
    """Evaluate one SoC against every portfolio requirement."""
    requirements = list(requirements)
    if not requirements:
        raise SpecError("portfolio needs at least one usecase")
    headrooms: dict = {}
    attainable: dict = {}
    for requirement in requirements:
        result = evaluate(soc, requirement.workload)
        attainable[requirement.name] = result.attainable
        if requirement.required == 0:
            headrooms[requirement.name] = math.inf
        else:
            headrooms[requirement.name] = result.attainable / requirement.required
    worst = min(headrooms.values())
    return CandidateScore(
        soc_name=soc.name,
        headrooms=headrooms,
        attainable=attainable,
        worst_headroom=worst,
        feasible=worst >= 1.0,
    )


def rank_socs(socs, requirements) -> tuple:
    """Rank candidate SoCs for a usecase portfolio.

    Feasible chips come first, ordered by worst-case headroom
    descending (most margin on the hardest usecase wins); infeasible
    chips follow, ordered by how close they come.  Ties break on the
    minimum raw attainable across the portfolio, then on name for
    determinism.
    """
    socs = list(socs)
    if not socs:
        raise SpecError("need at least one candidate SoC")
    names = [soc.name for soc in socs]
    if len(set(names)) != len(names):
        raise SpecError(f"candidate names must be unique, got {names!r}")
    scores = [score_candidate(soc, requirements) for soc in socs]

    def key(score: CandidateScore) -> tuple:
        return (
            0 if score.feasible else 1,
            -score.worst_headroom,
            -min(score.attainable.values()),
            score.soc_name,
        )

    return tuple(sorted(scores, key=key))
