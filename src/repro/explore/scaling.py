"""Generational scaling studies: planning SoCs 2-3 years out.

The paper's framing problem: "one must plan for future usecases 2-3
years in advance of when the SoC is deployed."  Compute and bandwidth
do not scale together — logic rides what is left of Moore's law while
off-chip bandwidth crawls with memory standards (the memory wall) — so
a usecase that is compute-bound on today's chip drifts memory-bound on
tomorrow's.  This module projects a design forward under explicit
annual growth rates and reports when each usecase's bottleneck flips.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_finite_positive
from ..core.batch import evaluate_batch
from ..core.params import IPBlock, SoCSpec, Workload
from ..core.variants import ModelVariant, evaluate_variant_batch
from ..errors import SpecError


@dataclass(frozen=True)
class TechnologyTrend:
    """Annual growth multipliers for each hardware axis.

    Defaults reflect the late-2010s mobile reality: logic throughput
    ~1.3x/year (process + architecture), off-chip bandwidth ~1.12x/year
    (LPDDR generations), IP links tracking logic more than memory.
    """

    compute_growth: float = 1.30
    memory_bandwidth_growth: float = 1.12
    link_bandwidth_growth: float = 1.20

    def __post_init__(self) -> None:
        for field_name in ("compute_growth", "memory_bandwidth_growth",
                           "link_bandwidth_growth"):
            value = getattr(self, field_name)
            require_finite_positive(value, field_name)
            if value < 1.0:
                raise SpecError(
                    f"{field_name} must be >= 1 (technology regresses "
                    "only in fiction)"
                )

    @property
    def balance_drift_per_year(self) -> float:
        """How fast machine balance (ops/byte) rises: the memory wall.

        > 1 means every year demands more data reuse from software to
        stay compute-bound — the quantitative version of the paper's
        conjecture that operational intensity "bears careful thought".
        """
        return self.compute_growth / self.memory_bandwidth_growth


def project_soc(soc: SoCSpec, years: float,
                trend: TechnologyTrend | None = None) -> SoCSpec:
    """The same design, fabricated ``years`` later under ``trend``.

    Compute (``Ppeak``; accelerations are relative and stay put) and
    bandwidths scale by their compounded growth.  Infinite link
    bandwidths stay infinite.
    """
    if years < 0:
        raise SpecError(f"years must be >= 0, got {years!r}")
    trend = trend or TechnologyTrend()
    compute = trend.compute_growth**years
    memory = trend.memory_bandwidth_growth**years
    link = trend.link_bandwidth_growth**years
    ips = tuple(
        IPBlock(
            ip.name,
            ip.acceleration,
            ip.bandwidth if ip.bandwidth == float("inf")
            else ip.bandwidth * link,
        )
        for ip in soc.ips
    )
    return SoCSpec(
        peak_perf=soc.peak_perf * compute,
        memory_bandwidth=soc.memory_bandwidth * memory,
        ips=ips,
        name=f"{soc.name}+{years:g}y",
    )


@dataclass(frozen=True)
class DriftPoint:
    """One year of a bottleneck-drift projection."""

    year: float
    attainable: float
    bottleneck: str
    speedup_vs_today: float


def bottleneck_drift(
    soc: SoCSpec,
    workload: Workload,
    years: int = 5,
    trend: TechnologyTrend | None = None,
    variant: ModelVariant | None = None,
    engine: str = "auto",
) -> tuple:
    """Project a fixed usecase across future chip generations.

    Returns one :class:`DriftPoint` per year 0..years.  The classic
    outcome: early years ride compute growth near-linearly; once the
    usecase's intensity falls below the growing machine balance, gains
    flatten to the bandwidth growth rate and the bottleneck reads
    ``memory`` — the model's argument for investing in reuse rather
    than FLOPs.

    With ``variant`` set the projection runs through the lowered
    pipeline; buses and coordination then appear as candidate
    bottlenecks.  Workload-carrying variants (phased usecases) ignore
    ``workload`` and attribute each year to its binding *phase*.
    """
    if years < 0:
        raise SpecError(f"years must be >= 0, got {years}")
    trend = trend or TechnologyTrend()
    # All projected generations in one batch: each year is a row of
    # scaled hardware rates (the same products project_soc computes),
    # the workload is constant.  Year 0 scales by exactly 1.0, so row 0
    # doubles as "today" for the speedup column.
    year_axis = np.arange(years + 1, dtype=float)
    compute = trend.compute_growth**year_axis
    memory = soc.memory_bandwidth * trend.memory_bandwidth_growth**year_axis
    link = trend.link_bandwidth_growth**year_axis
    accelerations = np.array([ip.acceleration for ip in soc.ips])
    base_bandwidths = np.array([ip.bandwidth for ip in soc.ips])
    ip_peaks = accelerations * (soc.peak_perf * compute)[:, np.newaxis]
    ip_bandwidths = np.where(
        np.isinf(base_bandwidths),
        np.inf,
        base_bandwidths * link[:, np.newaxis],
    )
    overrides = dict(
        memory_bandwidth=memory,
        ip_bandwidths=ip_bandwidths,
        ip_peaks=ip_peaks,
    )
    if variant is not None and not variant.requires_workload:
        batch = evaluate_variant_batch(
            soc, variant, engine=engine, **overrides
        )
    else:
        shape = (years + 1, workload.n_ips)
        fractions = np.broadcast_to(
            np.asarray(workload.fractions, dtype=float), shape
        )
        intensities = np.broadcast_to(
            np.asarray(workload.intensities, dtype=float), shape
        )
        if variant is None:
            batch = evaluate_batch(
                soc, fractions, intensities, validate=False,
                engine=engine, **overrides,
            )
        else:
            batch = evaluate_variant_batch(
                soc, variant, fractions, intensities,
                validate=False, engine=engine, **overrides,
            )
    attainables = batch.attainables.tolist()
    bottlenecks = batch.bottlenecks()
    today = attainables[0]
    return tuple(
        DriftPoint(
            year=float(year),
            attainable=attainable,
            bottleneck=bottleneck,
            speedup_vs_today=attainable / today,
        )
        for year, attainable, bottleneck in zip(
            range(years + 1), attainables, bottlenecks
        )
    )


def years_until_memory_bound(
    soc: SoCSpec,
    workload: Workload,
    trend: TechnologyTrend | None = None,
    horizon: int = 20,
    variant: ModelVariant | None = None,
    engine: str = "auto",
) -> float:
    """First projected year the memory interface binds (inf if never).

    The planning number the drift study produces: how long the current
    software (its intensities) stays ahead of the memory wall.  Only
    meaningful for variants that attribute to components (phased
    variants attribute to phases, so the answer is always ``inf``).
    """
    trend = trend or TechnologyTrend()
    for point in bottleneck_drift(soc, workload, horizon, trend,
                                  variant=variant, engine=engine):
        if point.bottleneck == "memory":
            return point.year
    return float("inf")
