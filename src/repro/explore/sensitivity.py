"""Sensitivity analysis: which knob moves attainable performance most.

For early-stage design the first-order question is "what do I get per
unit of X?".  We report *elasticities* — relative change in
``P_attainable`` per relative change in each hardware parameter — via
central finite differences.  Under bottleneck analysis most
elasticities are exactly 0 (slack components) or 1 (the binding
component scales through), so the report doubles as crisp bottleneck
attribution with magnitudes.

All perturbations (two per knob) are evaluated as one batch through
:func:`repro.core.batch.evaluate_batch` — the workload never changes,
only the hardware-rate arrays, so the full report costs a single
vectorized pass instead of ``2 * knobs + 1`` scalar evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.batch import evaluate_batch
from ..core.gables import evaluate
from ..core.params import SoCSpec, Workload
from ..core.variants import (
    ModelVariant,
    evaluate_variant,
    evaluate_variant_batch,
)
from ..errors import SpecError

#: Relative perturbation for finite differences.
_DEFAULT_STEP = 1e-4


@dataclass(frozen=True)
class SensitivityReport:
    """Elasticity of attainable performance to each hardware input.

    Keys: ``"Ppeak"``, ``"Bpeak"``, ``"A[i]"`` and ``"B[i]"`` per IP.
    """

    baseline: float
    elasticities: dict

    def top_lever(self) -> str:
        """The parameter with the largest positive elasticity."""
        return max(self.elasticities, key=lambda k: self.elasticities[k])

    def dead_knobs(self, tol: float = 1e-6) -> tuple:
        """Parameters whose improvement buys (to first order) nothing."""
        return tuple(
            sorted(k for k, e in self.elasticities.items() if abs(e) < tol)
        )


def sensitivity(
    soc: SoCSpec,
    workload: Workload,
    step: float = _DEFAULT_STEP,
    variant: ModelVariant | None = None,
    engine: str = "auto",
) -> SensitivityReport:
    """Compute the full elasticity report for one design point.

    With ``variant`` set, both the baseline and the perturbation batch
    run through the lowered pipeline, so the elasticities account for
    the variant's extra constraints (buses, coordination, ...).
    Workload-carrying variants (phased usecases) ignore ``workload``.
    """
    if not 0 < step < 0.1:
        raise SpecError(f"step must lie in (0, 0.1), got {step!r}")
    if variant is None:
        baseline = evaluate(soc, workload).attainable
    elif variant.requires_workload:
        baseline = evaluate_variant(soc, workload, variant).attainable
    else:
        baseline = evaluate_variant(soc, None, variant).attainable
    if baseline == 0:
        raise SpecError("degenerate baseline performance")

    n = soc.n_ips
    accelerations = np.array([ip.acceleration for ip in soc.ips])
    base_peaks = np.array([soc.ip_peak(i) for i in range(n)])
    base_bandwidths = np.array([ip.bandwidth for ip in soc.ips])

    # One batch row per perturbation, two (up/down) per knob.  Each row
    # overrides exactly the arrays its scalar counterpart would change:
    # a Ppeak row rescales every engine (accelerations are relative), an
    # A[i] or B[i] row touches one column, a Bpeak row only the memory
    # axis.
    knobs = []
    peaks_rows = []
    memory_rows = []
    bandwidth_rows = []

    def add(knob: str, factor: float) -> None:
        peaks = base_peaks.copy()
        memory = soc.memory_bandwidth
        bandwidths = base_bandwidths.copy()
        if knob == "Ppeak":
            peaks = accelerations * (soc.peak_perf * factor)
        elif knob == "Bpeak":
            memory = soc.memory_bandwidth * factor
        elif knob.startswith("A["):
            index = int(knob[2:-1])
            peaks[index] = (accelerations[index] * factor) * soc.peak_perf
        else:  # B[i]
            index = int(knob[2:-1])
            bandwidths[index] = base_bandwidths[index] * factor
        peaks_rows.append(peaks)
        memory_rows.append(memory)
        bandwidth_rows.append(bandwidths)

    names = ["Ppeak", "Bpeak"]
    names += [f"A[{index}]" for index in range(1, n)]
    names += [
        f"B[{index}]"
        for index in range(n)
        if soc.ips[index].bandwidth != float("inf")
    ]
    for knob in names:
        knobs.append(knob)
        add(knob, 1.0 + step)
        add(knob, 1.0 - step)

    shape = (len(peaks_rows), n)
    overrides = dict(
        memory_bandwidth=np.array(memory_rows),
        ip_bandwidths=np.array(bandwidth_rows),
        ip_peaks=np.array(peaks_rows),
    )
    if variant is not None and not variant.requires_workload:
        batch = evaluate_variant_batch(
            soc, variant, engine=engine, **overrides
        )
    else:
        fractions = np.broadcast_to(
            np.asarray(workload.fractions, dtype=float), shape
        )
        intensities = np.broadcast_to(
            np.asarray(workload.intensities, dtype=float), shape
        )
        if variant is None:
            batch = evaluate_batch(
                soc, fractions, intensities, validate=False,
                engine=engine, **overrides,
            )
        else:
            batch = evaluate_variant_batch(
                soc, variant, fractions, intensities,
                validate=False, engine=engine, **overrides,
            )
    attained = batch.attainables.tolist()
    elasticities: dict = {}
    for position, knob in enumerate(knobs):
        up = attained[2 * position]
        down = attained[2 * position + 1]
        elasticities[knob] = (up - down) / (2.0 * step * baseline)
    return SensitivityReport(baseline=baseline, elasticities=elasticities)
