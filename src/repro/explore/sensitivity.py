"""Sensitivity analysis: which knob moves attainable performance most.

For early-stage design the first-order question is "what do I get per
unit of X?".  We report *elasticities* — relative change in
``P_attainable`` per relative change in each hardware parameter — via
central finite differences.  Under bottleneck analysis most
elasticities are exactly 0 (slack components) or 1 (the binding
component scales through), so the report doubles as crisp bottleneck
attribution with magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.gables import evaluate
from ..core.params import SoCSpec, Workload
from ..errors import SpecError

#: Relative perturbation for finite differences.
_DEFAULT_STEP = 1e-4


@dataclass(frozen=True)
class SensitivityReport:
    """Elasticity of attainable performance to each hardware input.

    Keys: ``"Ppeak"``, ``"Bpeak"``, ``"A[i]"`` and ``"B[i]"`` per IP.
    """

    baseline: float
    elasticities: dict

    def top_lever(self) -> str:
        """The parameter with the largest positive elasticity."""
        return max(self.elasticities, key=lambda k: self.elasticities[k])

    def dead_knobs(self, tol: float = 1e-6) -> tuple:
        """Parameters whose improvement buys (to first order) nothing."""
        return tuple(
            sorted(k for k, e in self.elasticities.items() if abs(e) < tol)
        )


def _elasticity(perf_at, value: float, step: float) -> float:
    up = perf_at(value * (1.0 + step))
    down = perf_at(value * (1.0 - step))
    base = perf_at(value)
    if base == 0:
        raise SpecError("degenerate baseline performance")
    return (up - down) / (2.0 * step * base)


def sensitivity(
    soc: SoCSpec, workload: Workload, step: float = _DEFAULT_STEP
) -> SensitivityReport:
    """Compute the full elasticity report for one design point."""
    if not 0 < step < 0.1:
        raise SpecError(f"step must lie in (0, 0.1), got {step!r}")
    baseline = evaluate(soc, workload).attainable
    elasticities: dict = {}

    def of_ppeak(value: float) -> float:
        changed = SoCSpec(
            peak_perf=value,
            memory_bandwidth=soc.memory_bandwidth,
            ips=soc.ips,
            name=soc.name,
        )
        return evaluate(changed, workload).attainable

    elasticities["Ppeak"] = _elasticity(of_ppeak, soc.peak_perf, step)

    def of_bpeak(value: float) -> float:
        return evaluate(soc.with_memory_bandwidth(value), workload).attainable

    elasticities["Bpeak"] = _elasticity(of_bpeak, soc.memory_bandwidth, step)

    for index, ip in enumerate(soc.ips):
        if index > 0:
            def of_accel(value: float, i: int = index) -> float:
                return evaluate(
                    soc.with_ip(i, acceleration=value), workload
                ).attainable

            elasticities[f"A[{index}]"] = _elasticity(
                of_accel, ip.acceleration, step
            )

        if ip.bandwidth != float("inf"):
            def of_bw(value: float, i: int = index) -> float:
                return evaluate(
                    soc.with_ip(i, bandwidth=value), workload
                ).attainable

            elasticities[f"B[{index}]"] = _elasticity(of_bw, ip.bandwidth, step)

    return SensitivityReport(baseline=baseline, elasticities=elasticities)
