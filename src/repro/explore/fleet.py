"""Sharded fleet-sweep runner: market-scale evaluation, observable.

ROADMAP's "market-wide what-if" studies evaluate the Gables model over
*every* chipset the market package synthesizes — hundreds of specs per
run, thousands once portfolios multiply.  One process is enough
compute-wise (the model is microseconds per point) but the point of
the fleet runner is the *shape*: the same sharded, telemetry-emitting,
fault-tolerant structure a hardware measurement fleet needs, exercised
end-to-end against the analytical model where every answer is exactly
checkable.

Structure:

- :func:`evaluate_population` is the serial core: one shard's cases
  through :func:`repro.core.evaluate`, with structured-log /
  metric / profile hooks (all free when disabled), optional fault
  injection + retry (:mod:`repro.resilience`), checkpoint reuse, and
  tolerant ``on_error`` modes.
- :func:`run_fleet_sweep` shards a population round-robin over worker
  *processes* (``spawn`` — no inherited tracer state, no fork/thread
  hazards), propagates the parent's :class:`~repro.obs.context.TraceContext`
  through ``GABLES_*`` environment variables, and has every worker
  drain its telemetry into a :class:`~repro.obs.collect.ShardCollector`
  directory for ``gables telemetry merge``.

Determinism is a hard contract, pinned by tests: cases are assigned
``indices[shard::workers]`` and reassembled by original index, and the
model evaluation is pure float math, so a 2-worker fleet's points are
**bitwise identical** to the serial run's.  Faults only ever fail an
*attempt* (retried, or surfaced per ``on_error``) — they never perturb
a surviving result.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..core.batch import _resolve_engine, evaluate_batch
from ..core.gables import evaluate
from ..core.variants import evaluate_variant_batch
from ..errors import ObservabilityError, ReproError, SpecError
from ..obs import reset_observability
from ..obs.bench import make_record, new_run_id
from ..obs.collect import ShardCollector
from ..obs.context import (
    TraceContext,
    adopt_env_context,
    env_propagation,
    new_context,
    reset_context,
    set_context,
)
from ..obs.logging import (
    configure_logging,
    log_event,
    logging_configured,
    reset_logging,
)
from ..obs.metrics import counter as _counter
from ..obs.profile import (
    enable_profiling,
    profile_scope as _profile_scope,
    profiling_enabled,
)
from ..obs.trace import enable_tracing, span as _span
from ..resilience.checkpoint import SweepCheckpoint, sample_key
from ..resilience.faults import FaultInjector, FaultPlan, fault_plan
from ..resilience.partial import PointFailure, check_on_error, record_failure
from ..resilience.retry import RetryPolicy, call_with_retry

_FLEET_POINTS = _counter("explore.fleet.points")
_FLEET_FAILURES = _counter("explore.fleet.failures")
_FLEET_CHECKPOINT_REUSED = _counter("explore.fleet.checkpoint_reused")

#: Default heartbeat cadence, in evaluated points.
HEARTBEAT_EVERY = 25


@dataclass(frozen=True)
class FleetPoint:
    """One evaluated case — pure model outputs plus its population index.

    Deliberately carries *no* worker provenance: the same case must
    produce the same ``FleetPoint`` whether it ran serially or on any
    shard (the bitwise-identity contract).  Provenance lives in
    :class:`WorkerReport` and the telemetry shards.
    """

    index: int
    key: str
    attainable: float
    bottleneck: str
    memory_time: float
    average_intensity: float
    attempts: int = 1

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "key": self.key,
            "attainable": self.attainable,
            "bottleneck": self.bottleneck,
            "memory_time": self.memory_time,
            "average_intensity": self.average_intensity,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetPoint":
        return cls(
            index=int(data["index"]),
            key=str(data["key"]),
            attainable=float(data["attainable"]),
            bottleneck=str(data["bottleneck"]),
            memory_time=float(data["memory_time"]),
            average_intensity=float(data["average_intensity"]),
            attempts=int(data.get("attempts", 1)),
        )


@dataclass(frozen=True)
class WorkerReport:
    """What one shard did: provenance, timing, liveness, faults.

    ``engine`` names the batch-evaluation tier the shard ran
    (``"compiled"``/``"interpreted"``); the scalar case fleet always
    reports ``"interpreted"`` — its per-case loop is the scalar
    interpreter.
    """

    worker_id: str
    shard: int
    pid: int
    cases: int
    points: int
    failures: int
    elapsed_s: float
    heartbeats: int
    checkpoint_reused: int = 0
    fault_summary: dict | None = None
    engine: str = "interpreted"


@dataclass(frozen=True)
class FleetResult:
    """A completed fleet sweep, reassembled in population order."""

    fleet_run_id: str
    trace_id: str
    points: tuple
    errors: tuple
    workers: tuple
    elapsed_s: float
    telemetry_dir: str | None = None
    fault_plan: str | None = None
    engine: str = "interpreted"

    @property
    def throughput(self) -> float:
        """Points per second across the whole fleet."""
        return len(self.points) / self.elapsed_s if self.elapsed_s > 0 else 0.0


def evaluate_population(
    cases,
    *,
    indices=None,
    on_error: str = "raise",
    injector: FaultInjector | None = None,
    retry_policy: RetryPolicy | None = None,
    checkpoint: SweepCheckpoint | None = None,
    heartbeat=None,
    heartbeat_every: int = HEARTBEAT_EVERY,
) -> tuple:
    """One shard of cases through the model; returns (points, failures).

    ``indices`` are the cases' positions in the full population
    (defaults to ``0..len-1``); they key checkpoint entries and order
    the fleet's reassembly.  ``injector`` may fail attempts (dropouts),
    which ``retry_policy`` retries; a point that still fails is raised,
    skipped, or recorded per ``on_error``.  ``heartbeat`` (a callable)
    fires every ``heartbeat_every`` evaluated points.

    The telemetry hooks on this loop — a span per shard, a profile
    scope and structured-log event per point, the fleet counters — cost
    nothing when their collector is disabled: the enablement checks are
    hoisted out of the loop (collectors are process-global and cannot
    flip mid-shard), so the disabled path per point is the plain
    ``evaluate`` call plus counter adds.  The benchmark suite holds the
    hooked loop within the library's 1% disabled-overhead budget.
    """
    cases = tuple(cases)
    check_on_error(on_error)
    if indices is None:
        indices = range(len(cases))
    indices = tuple(int(i) for i in indices)
    if len(indices) != len(cases):
        raise SpecError(
            f"indices ({len(indices)}) must match cases ({len(cases)})"
        )
    if heartbeat_every < 1:
        raise SpecError(
            f"heartbeat_every must be >= 1, got {heartbeat_every}"
        )
    points, failures = [], []
    # Hoisted enablement checks: the loop's disabled path must stay
    # within the 1% overhead budget, so nothing per point may build a
    # scope, a closure, or a kwargs dict unless its collector is live.
    profiled = profiling_enabled()
    logged = logging_configured()
    plain = injector is None and retry_policy is None and not profiled
    key = None
    reused = 0
    with _span("fleet.shard", attributes={"cases": len(cases)}):
        for position, (index, case) in enumerate(zip(indices, cases)):
            if heartbeat is not None and position % heartbeat_every == 0:
                heartbeat()
            if checkpoint is not None:
                key = sample_key(case=case.key)
                cached = checkpoint.get(key)
                if cached is not None:
                    reused += 1
                    points.append(FleetPoint.from_dict(cached))
                    continue
            try:
                if plain:
                    result = evaluate(case.soc, case.workload)
                else:
                    result = _instrumented_attempt(
                        case, injector, retry_policy
                    )
            except ReproError as err:
                _FLEET_FAILURES.inc()
                log_event(
                    "error", "fleet.point.failed", str(err),
                    spec=case.key, code=getattr(err, "code", "REPRO_ERROR"),
                )
                if on_error == "raise":
                    raise
                failures.append(record_failure((case.key,), err))
                continue
            point = FleetPoint(
                index=index,
                key=case.key,
                attainable=result.attainable,
                bottleneck=result.bottleneck,
                memory_time=result.memory_time,
                average_intensity=result.average_intensity,
            )
            if logged:
                log_event(
                    "debug", "fleet.point",
                    spec=case.key, bottleneck=point.bottleneck,
                )
            if checkpoint is not None:
                checkpoint.record(key, point.to_dict())
            points.append(point)
    # Counters batch at shard end: one `.inc()` per shard keeps the
    # per-point disabled path free of method calls.
    _FLEET_POINTS.inc(len(points) - reused)
    if reused:
        _FLEET_CHECKPOINT_REUSED.inc(reused)
    return tuple(points), tuple(failures)


def _instrumented_attempt(case, injector, retry_policy):
    """One case with fault injection / retry / profiling attached."""

    def attempt():
        if injector is not None:
            injector.check_dropout(f"fleet point {case.key}")
        return evaluate(case.soc, case.workload)

    with _profile_scope("fleet.point"):
        if retry_policy is not None:
            return call_with_retry(
                attempt, retry_policy, context=f"fleet point {case.key}",
            )
        return attempt()


def worker_checkpoint_path(checkpoint_path, worker_id: str):
    """The per-worker checkpoint file for a shared base path.

    Each shard appends to its own file — concurrent appends to one
    JSONL from multiple processes can interleave mid-line.  Shard
    assignment is deterministic for a given worker count, so a resumed
    fleet finds its own entries.
    """
    if checkpoint_path is None:
        return None
    return f"{os.fspath(checkpoint_path)}.{worker_id}"


def _shard_payload(
    *, worker_id, shard, indices, cases, fleet_run_id, on_error, plan,
    seed, retry_policy, checkpoint_path, telemetry_dir, heartbeat_every,
) -> dict:
    """Everything one worker needs, as a picklable dict."""
    return {
        "worker_id": worker_id,
        "shard": shard,
        "indices": indices,
        "cases": cases,
        "fleet_run_id": fleet_run_id,
        "on_error": on_error,
        "plan": plan,
        "seed": seed,
        "retry_policy": retry_policy,
        "checkpoint_path": checkpoint_path,
        "telemetry_dir": telemetry_dir,
        "heartbeat_every": heartbeat_every,
    }


def _run_shard(payload: dict, parent_context: TraceContext | None) -> dict:
    """Execute one shard in the current process; returns a result dict.

    Assumes the process-global collectors are in the desired state:
    the worker entry (:func:`_fleet_worker`) resets them first, the
    inline (``workers=1``) path runs against the caller's own.
    """
    context = (
        parent_context
        if parent_context is not None
        else new_context(payload["fleet_run_id"])
    ).child(worker_id=payload["worker_id"], shard=payload["shard"])
    set_context(context)
    collector = None
    if payload["telemetry_dir"] is not None:
        collector = ShardCollector(payload["telemetry_dir"], context)
        configure_logging(collector.log_path)
        enable_tracing()
        enable_profiling()
    injector = None
    if payload["plan"] is not None:
        injector = FaultInjector(
            payload["plan"], seed=payload["seed"] + payload["shard"]
        )
    checkpoint = None
    preloaded = 0
    path = worker_checkpoint_path(
        payload["checkpoint_path"], payload["worker_id"]
    )
    if path is not None:
        checkpoint = SweepCheckpoint(path)
        preloaded = len(checkpoint)
    heartbeat = collector.heartbeat if collector is not None else None
    log_event(
        "info", "fleet.shard.start",
        cases=len(payload["cases"]), shard=payload["shard"],
    )
    start = time.perf_counter()
    points, failures = evaluate_population(
        payload["cases"],
        indices=payload["indices"],
        on_error=payload["on_error"],
        injector=injector,
        retry_policy=payload["retry_policy"],
        checkpoint=checkpoint,
        heartbeat=heartbeat,
        heartbeat_every=payload["heartbeat_every"],
    )
    elapsed = time.perf_counter() - start
    if heartbeat is not None:
        heartbeat()  # final liveness sample closes the wall window
    log_event(
        "info", "fleet.shard.done",
        points=len(points), failures=len(failures), elapsed_s=elapsed,
    )
    fault_summary = injector.summary() if injector is not None else None
    if collector is not None:
        collector.finalize()
    return {
        "worker_id": payload["worker_id"],
        "shard": payload["shard"],
        "pid": os.getpid(),
        "elapsed_s": elapsed,
        "heartbeats": collector.heartbeats_written if collector else 0,
        "checkpoint_reused": preloaded,
        "points": [p.to_dict() for p in points],
        "failures": [
            {"coords": list(f.coords), "code": f.code, "message": f.message}
            for f in failures
        ],
        "fault_summary": fault_summary,
    }


def _fleet_worker(payload: dict) -> dict:
    """Worker-process entry point (module-level for picklability).

    Resets every process-global collector first — a pool process may
    serve more than one shard — then adopts the parent's trace context
    from the ``GABLES_*`` environment the spawn inherited.
    """
    reset_observability()
    reset_logging()
    reset_context()
    parent_context = adopt_env_context()
    return _run_shard(payload, parent_context)


def _report_from(result: dict, cases: int) -> WorkerReport:
    return WorkerReport(
        worker_id=result["worker_id"],
        shard=result["shard"],
        pid=result["pid"],
        cases=cases,
        points=len(result["points"]),
        failures=len(result["failures"]),
        elapsed_s=result["elapsed_s"],
        heartbeats=result["heartbeats"],
        checkpoint_reused=result.get("checkpoint_reused", 0),
        fault_summary=result.get("fault_summary"),
        engine=result.get("engine", "interpreted"),
    )


def run_fleet_sweep(
    cases,
    *,
    workers: int = 2,
    on_error: str = "raise",
    fault_plan_name: str | FaultPlan | None = None,
    seed: int = 0,
    retry_policy: RetryPolicy | None = None,
    checkpoint_path=None,
    telemetry_dir=None,
    fleet_run_id: str | None = None,
    heartbeat_every: int = HEARTBEAT_EVERY,
) -> FleetResult:
    """Evaluate a case population across ``workers`` processes.

    Cases are assigned round-robin (``indices[shard::workers]``) and
    the points reassembled by original index, so the result is
    independent of worker count and scheduling — bitwise identical to
    ``workers=1``.  With ``telemetry_dir`` set, each worker writes a
    telemetry shard under it (see :mod:`repro.obs.collect`); with a
    fault plan, each worker's injector is seeded ``seed + shard`` so
    fault timelines are reproducible per shard.

    ``workers=1`` runs inline in the calling process (no spawn): same
    code path, same telemetry, and the caller's own collectors are
    *used, not reset* — enable tracing/profiling beforehand to keep
    collecting into them.
    """
    cases = tuple(cases)
    if not cases:
        raise SpecError("run_fleet_sweep needs at least one case")
    if workers < 1:
        raise SpecError(f"workers must be >= 1, got {workers}")
    check_on_error(on_error)
    plan = fault_plan_name
    if isinstance(plan, str):
        plan = fault_plan(plan)
    if plan is not None and not isinstance(plan, FaultPlan):
        raise SpecError(
            "fault_plan_name must be a plan name, FaultPlan, or None"
        )
    run_id = fleet_run_id or new_run_id()
    context = new_context(run_id)
    telemetry = os.fspath(telemetry_dir) if telemetry_dir is not None else None
    payloads = []
    for shard in range(workers):
        indices = tuple(range(len(cases)))[shard::workers]
        payloads.append(_shard_payload(
            worker_id=f"w{shard}",
            shard=shard,
            indices=indices,
            cases=tuple(cases[i] for i in indices),
            fleet_run_id=run_id,
            on_error=on_error,
            plan=plan,
            seed=seed,
            retry_policy=retry_policy,
            checkpoint_path=(
                os.fspath(checkpoint_path) if checkpoint_path is not None
                else None
            ),
            telemetry_dir=telemetry,
            heartbeat_every=heartbeat_every,
        ))
    start = time.perf_counter()
    if workers == 1:
        results = [_run_shard(payloads[0], context)]
    else:
        spawn = multiprocessing.get_context("spawn")
        with env_propagation(context):
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=spawn
            ) as pool:
                futures = [pool.submit(_fleet_worker, p) for p in payloads]
                results = [future.result() for future in futures]
    elapsed = time.perf_counter() - start

    by_index: dict = {}
    failures = []
    for result in results:
        for data in result["points"]:
            point = FleetPoint.from_dict(data)
            if point.index in by_index:
                raise ObservabilityError(
                    f"fleet point index {point.index} produced twice"
                )
            by_index[point.index] = point
        failures.extend(
            PointFailure(
                coords=tuple(f["coords"]), code=f["code"],
                message=f["message"],
            )
            for f in result["failures"]
        )
    reports = tuple(
        _report_from(result, cases=len(payload["cases"]))
        for payload, result in zip(payloads, results)
    )
    return FleetResult(
        fleet_run_id=run_id,
        trace_id=context.trace_id,
        points=tuple(by_index[i] for i in sorted(by_index)),
        errors=tuple(failures) if on_error == "record" else (),
        workers=reports,
        elapsed_s=elapsed,
        telemetry_dir=telemetry,
        fault_plan=plan.name if plan is not None else None,
    )


# ---------------------------------------------------------------------
# Grid fleet: sharded compiled market sweeps over synthetic grids
# ---------------------------------------------------------------------

#: Default grid-fleet chunk size: points generated + evaluated at once.
#: Large enough to amortize the per-batch kernel dispatch, small enough
#: that a chunk's grids (2 x chunk x N float64) stay cache-friendly.
GRID_CHUNK = 250_000


def grid_chunk(
    n_ips: int, chunk_index: int, size: int, seed: int = 0
) -> tuple:
    """Chunk ``chunk_index`` of the synthetic market workload grid.

    Returns ``(fractions, intensities)`` of shape ``(size, n_ips)``.
    Generation is *chunk-addressed*: the RNG is seeded from
    ``(seed, chunk_index)``, so any process can materialize any chunk
    independently and two runs that partition the same point count into
    the same chunks see bitwise-identical grids — the foundation of the
    grid fleet's determinism contract.
    """
    if n_ips < 1:
        raise SpecError(f"n_ips must be >= 1, got {n_ips}")
    if size < 1:
        raise SpecError(f"chunk size must be >= 1, got {size}")
    rng = np.random.default_rng(
        np.random.SeedSequence((int(seed), int(chunk_index)))
    )
    fractions = rng.dirichlet(np.ones(n_ips), size=size)
    intensities = rng.uniform(0.25, 64.0, size=(size, n_ips))
    return fractions, intensities


def grid_chunk_plan(points: int, chunk: int = GRID_CHUNK) -> tuple:
    """``(chunk_index, size)`` pairs partitioning ``points`` rows."""
    if points < 1:
        raise SpecError(f"points must be >= 1, got {points}")
    if chunk < 1:
        raise SpecError(f"chunk must be >= 1, got {chunk}")
    plan = []
    offset = 0
    index = 0
    while offset < points:
        size = min(chunk, points - offset)
        plan.append((index, size))
        offset += size
        index += 1
    return tuple(plan)


@dataclass(frozen=True)
class GridChunkSummary:
    """One evaluated grid chunk: identity digest plus cheap reductions.

    ``digest`` is the SHA-256 over the chunk's attainables and
    bottleneck codes (raw float64/intp bytes, row order) — two runs
    agree bitwise on a chunk iff their digests match, without shipping
    megabytes of arrays between processes.
    """

    index: int
    points: int
    digest: str
    total: float
    best: float

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "points": self.points,
            "digest": self.digest,
            "total": self.total,
            "best": self.best,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GridChunkSummary":
        return cls(
            index=int(data["index"]),
            points=int(data["points"]),
            digest=str(data["digest"]),
            total=float(data["total"]),
            best=float(data["best"]),
        )


@dataclass(frozen=True)
class FleetGridResult:
    """A completed grid-fleet sweep, chunks reassembled in order."""

    fleet_run_id: str
    trace_id: str
    points: int
    chunks: tuple
    digest: str
    workers: tuple
    elapsed_s: float
    engine: str
    telemetry_dir: str | None = None

    @property
    def throughput(self) -> float:
        """Points per second across the whole fleet."""
        return self.points / self.elapsed_s if self.elapsed_s > 0 else 0.0


def evaluate_grid_chunks(
    soc,
    assignments,
    *,
    seed: int = 0,
    variant=None,
    engine: str = "auto",
    heartbeat=None,
) -> tuple:
    """One shard's ``(chunk_index, size)`` assignments through the model.

    Each chunk is generated (:func:`grid_chunk`), evaluated as one
    batch, and reduced to a :class:`GridChunkSummary`; the arrays never
    leave the process.  ``heartbeat`` fires once per chunk.
    """
    summaries = []
    n = soc.n_ips
    with _span("fleet.grid_shard", attributes={"chunks": len(assignments)}):
        for chunk_index, size in assignments:
            if heartbeat is not None:
                heartbeat()
            fractions, intensities = grid_chunk(n, chunk_index, size, seed)
            if variant is None:
                batch = evaluate_batch(
                    soc, fractions, intensities, validate=False,
                    engine=engine,
                )
            else:
                batch = evaluate_variant_batch(
                    soc, variant, fractions, intensities, validate=False,
                    engine=engine,
                )
            attainables = np.ascontiguousarray(batch.attainables)
            codes = np.ascontiguousarray(batch.bottleneck_codes)
            sha = hashlib.sha256(attainables.tobytes())
            sha.update(codes.tobytes())
            summaries.append(GridChunkSummary(
                index=chunk_index,
                points=size,
                digest=sha.hexdigest(),
                total=float(attainables.sum()),
                best=float(attainables.max()),
            ))
    _FLEET_POINTS.inc(sum(size for _, size in assignments))
    return tuple(summaries)


def _grid_payload(
    *, worker_id, shard, assignments, soc, variant, seed, engine,
    fleet_run_id, telemetry_dir,
) -> dict:
    """Everything one grid worker needs, as a picklable dict."""
    return {
        "worker_id": worker_id,
        "shard": shard,
        "assignments": assignments,
        "soc": soc,
        "variant": variant,
        "seed": seed,
        "engine": engine,
        "fleet_run_id": fleet_run_id,
        "telemetry_dir": telemetry_dir,
    }


def _run_grid_shard(payload: dict, parent_context) -> dict:
    """Execute one grid shard in the current process."""
    context = (
        parent_context
        if parent_context is not None
        else new_context(payload["fleet_run_id"])
    ).child(worker_id=payload["worker_id"], shard=payload["shard"])
    set_context(context)
    collector = None
    if payload["telemetry_dir"] is not None:
        collector = ShardCollector(payload["telemetry_dir"], context)
        configure_logging(collector.log_path)
        enable_tracing()
        enable_profiling()
    heartbeat = collector.heartbeat if collector is not None else None
    log_event(
        "info", "fleet.grid_shard.start",
        chunks=len(payload["assignments"]), shard=payload["shard"],
        engine=payload["engine"],
    )
    start = time.perf_counter()
    summaries = evaluate_grid_chunks(
        payload["soc"],
        payload["assignments"],
        seed=payload["seed"],
        variant=payload["variant"],
        engine=payload["engine"],
        heartbeat=heartbeat,
    )
    elapsed = time.perf_counter() - start
    if heartbeat is not None:
        heartbeat()
    log_event(
        "info", "fleet.grid_shard.done",
        chunks=len(summaries), elapsed_s=elapsed,
    )
    if collector is not None:
        collector.finalize()
    return {
        "worker_id": payload["worker_id"],
        "shard": payload["shard"],
        "pid": os.getpid(),
        "elapsed_s": elapsed,
        "heartbeats": collector.heartbeats_written if collector else 0,
        "chunks": [s.to_dict() for s in summaries],
    }


def _fleet_grid_worker(payload: dict) -> dict:
    """Grid-worker process entry point (module-level for picklability)."""
    reset_observability()
    reset_logging()
    reset_context()
    parent_context = adopt_env_context()
    return _run_grid_shard(payload, parent_context)


def run_fleet_grid_sweep(
    soc,
    *,
    points: int,
    variant=None,
    workers: int = 2,
    chunk: int = GRID_CHUNK,
    seed: int = 0,
    engine: str = "auto",
    telemetry_dir=None,
    fleet_run_id: str | None = None,
) -> FleetGridResult:
    """Evaluate ``points`` synthetic market rows across worker processes.

    The grid never exists in one piece: it is partitioned into
    chunk-addressed pieces (:func:`grid_chunk_plan`), chunks are
    assigned round-robin to shards, and every worker generates its own
    chunks locally (:func:`grid_chunk`) — so a 10^8-point sweep moves
    kilobytes of summaries between processes, not gigabytes of grids.
    The result is scheduling-independent: chunk summaries reassemble by
    chunk index, and the fleet ``digest`` hashes the per-chunk digests
    in that order, so any worker count (including a serial
    ``workers=1`` run with ``engine="interpreted"``) that evaluates the
    same points bitwise-identically produces the same digest.
    """
    if workers < 1:
        raise SpecError(f"workers must be >= 1, got {workers}")
    resolved_engine = _resolve_engine(engine, "raise")
    plan = grid_chunk_plan(points, chunk)
    run_id = fleet_run_id or new_run_id()
    context = new_context(run_id)
    telemetry = os.fspath(telemetry_dir) if telemetry_dir is not None else None
    payloads = []
    for shard in range(workers):
        assignments = plan[shard::workers]
        if not assignments and shard > 0:
            continue  # fewer chunks than workers: idle shards are skipped
        payloads.append(_grid_payload(
            worker_id=f"w{shard}",
            shard=shard,
            assignments=assignments,
            soc=soc,
            variant=variant,
            seed=seed,
            engine=engine,
            fleet_run_id=run_id,
            telemetry_dir=telemetry,
        ))
    start = time.perf_counter()
    if workers == 1:
        results = [_run_grid_shard(payloads[0], context)]
    else:
        spawn = multiprocessing.get_context("spawn")
        with env_propagation(context):
            with ProcessPoolExecutor(
                max_workers=len(payloads), mp_context=spawn
            ) as pool:
                futures = [
                    pool.submit(_fleet_grid_worker, p) for p in payloads
                ]
                results = [future.result() for future in futures]
    elapsed = time.perf_counter() - start

    by_index: dict = {}
    for result in results:
        for data in result["chunks"]:
            summary = GridChunkSummary.from_dict(data)
            if summary.index in by_index:
                raise ObservabilityError(
                    f"grid chunk {summary.index} produced twice"
                )
            by_index[summary.index] = summary
    if sorted(by_index) != [index for index, _ in plan]:
        raise ObservabilityError("grid fleet lost chunks during reassembly")
    chunks = tuple(by_index[index] for index, _ in plan)
    sha = hashlib.sha256()
    for summary in chunks:
        sha.update(summary.digest.encode("ascii"))
    reports = tuple(
        WorkerReport(
            worker_id=result["worker_id"],
            shard=result["shard"],
            pid=result["pid"],
            cases=len(payload["assignments"]),
            points=sum(s["points"] for s in result["chunks"]),
            failures=0,
            elapsed_s=result["elapsed_s"],
            heartbeats=result["heartbeats"],
            engine=resolved_engine,
        )
        for payload, result in zip(payloads, results)
    )
    return FleetGridResult(
        fleet_run_id=run_id,
        trace_id=context.trace_id,
        points=points,
        chunks=chunks,
        digest=sha.hexdigest(),
        workers=reports,
        elapsed_s=elapsed,
        engine=resolved_engine,
        telemetry_dir=telemetry,
    )


def fleet_bench_records(result, *, run_id=None) -> tuple:
    """Throughput and wall-time records for ``BENCH_HISTORY.jsonl``.

    Accepts a :class:`FleetResult` or :class:`FleetGridResult`.  One
    fleet-wide throughput record, plus per-worker throughput and
    elapsed-seconds records.  Every record carries the fleet provenance
    fields (``fleet_run_id``, the ``engine`` tag, and
    ``worker_id``/``shard`` on worker rows), so ``gables bench
    compare`` keys each lane by its
    :attr:`~repro.obs.bench.BenchRecord.provenance_key` — the
    ``unit == "s"`` worker rows get their own rolling baselines per
    worker *and* per engine instead of collapsing compiled and
    interpreted runs into one noisy series.
    """
    run_id = run_id or result.fleet_run_id
    grid = isinstance(result, FleetGridResult)
    point_count = result.points if grid else len(result.points)
    meta = {
        "points": point_count,
        "workers": len(result.workers),
    }
    if grid:
        meta["chunks"] = len(result.chunks)
    else:
        meta["fault_plan"] = result.fault_plan or ""
    name = "fleet.grid.throughput" if grid else "fleet.sweep.throughput"
    records = [make_record(
        name,
        result.throughput,
        unit="points/s",
        run_id=run_id,
        fleet_run_id=result.fleet_run_id,
        engine=result.engine,
        meta=meta,
    )]
    for report in result.workers:
        rate = (
            report.points / report.elapsed_s if report.elapsed_s > 0 else 0.0
        )
        records.append(make_record(
            "fleet.worker.throughput",
            rate,
            unit="points/s",
            run_id=run_id,
            fleet_run_id=result.fleet_run_id,
            worker_id=report.worker_id,
            shard=report.shard,
            engine=report.engine,
            meta={"points": report.points, "heartbeats": report.heartbeats},
        ))
        records.append(make_record(
            "fleet.worker.seconds",
            report.elapsed_s,
            unit="s",
            run_id=run_id,
            fleet_run_id=result.fleet_run_id,
            worker_id=report.worker_id,
            shard=report.shard,
            engine=report.engine,
            meta={"points": report.points},
        ))
    return tuple(records)
