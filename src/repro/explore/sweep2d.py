"""Two-dimensional sweeps: the analytic (f, I) mixing grid.

Figure 8 measures normalized performance over offload fraction x
operational intensity on real hardware; the same grid evaluated on the
*model* is the analytic upper-bound surface.  Comparing the two
(`benchmarks/test_bench_fig8_mixing.py` does) separates what the
hardware loses to coordination from what the model says is possible.

The grid generalizes: any two of the model's swept parameters can form
the axes via the ``build`` callback.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.batch import evaluate_batch
from ..core.params import SoCSpec, Workload
from ..core.variants import ModelVariant, evaluate_variant_batch
from ..errors import ReproError, SpecError
from ..obs.trace import span as _span
from ..resilience.partial import PointFailure, check_on_error, record_failure


@dataclass(frozen=True)
class GridCell:
    """One (x, y) evaluation."""

    x: float
    y: float
    attainable: float
    bottleneck: str


@dataclass(frozen=True)
class SweepGrid:
    """A dense 2-D sweep with axis metadata.

    ``errors`` holds :class:`repro.resilience.PointFailure` records
    (``coords=(x, y)``) for cells that failed under a tolerant
    ``on_error`` mode; failed cells are never part of ``cells``.
    """

    x_name: str
    y_name: str
    cells: tuple
    errors: tuple = ()

    def x_values(self) -> tuple:
        """Distinct x coordinates, ascending."""
        return tuple(sorted({cell.x for cell in self.cells}))

    def y_values(self) -> tuple:
        """Distinct y coordinates, ascending."""
        return tuple(sorted({cell.y for cell in self.cells}))

    def at(self, x: float, y: float) -> GridCell:
        """The cell at exact coordinates (raises if absent)."""
        for cell in self.cells:
            if cell.x == x and cell.y == y:
                return cell
        raise SpecError(f"no cell at ({x!r}, {y!r})")

    def row(self, y: float) -> tuple:
        """All cells of one y line, ordered by x."""
        selected = [cell for cell in self.cells if cell.y == y]
        return tuple(sorted(selected, key=lambda cell: cell.x))

    def best(self) -> GridCell:
        """The cell with the highest attainable performance."""
        return max(self.cells, key=lambda cell: cell.attainable)

    def bottleneck_regions(self) -> dict:
        """Bottleneck name -> number of cells it governs.

        The region map is the design insight Figure 8 encodes: where
        in (f, I) space each resource rules.
        """
        census: dict = {}
        for cell in self.cells:
            census[cell.bottleneck] = census.get(cell.bottleneck, 0) + 1
        return census


def sweep_grid(
    soc: SoCSpec,
    x_name: str,
    x_values: Sequence[float],
    y_name: str,
    y_values: Sequence[float],
    build: Callable[[float, float], Workload],
    on_error: str = "raise",
    variant: ModelVariant | None = None,
    engine: str = "auto",
) -> SweepGrid:
    """Evaluate a workload builder over a dense (x, y) grid.

    The ``build`` callback runs once per cell (it is arbitrary Python),
    but the model itself is evaluated as one ``K = rows * cols`` batch
    through :func:`repro.core.batch.evaluate_batch` — on dense grids
    the per-cell model cost disappears into a handful of numpy passes.
    With ``variant`` set, the batch routes through the lowered pipeline
    (:func:`repro.core.variants.evaluate_variant_batch`) instead.

    Under ``on_error="skip"``/``"record"``, cells whose ``build`` call
    or model evaluation raises a :class:`~repro.errors.ReproError` are
    dropped from the grid (and, for ``"record"``, captured in
    ``errors``) instead of aborting the sweep; the surviving cells are
    bitwise identical to a fault-free run.
    """
    check_on_error(on_error)
    if variant is not None and not variant.requires_workload:
        raise SpecError(
            f"variant {variant.kind!r} carries its own workloads; "
            "the (x, y) grid sweeps workload parameters"
        )
    if not x_values or not y_values:
        raise SpecError("both axes need at least one value")
    coords = [(x, y) for y in y_values for x in x_values]
    with _span("explore.sweep_grid", points=len(coords)):
        failures: list = []
        if on_error == "raise":
            kept_coords = coords
            workloads = [build(x, y) for x, y in coords]
        else:
            kept_coords = []
            workloads = []
            for x, y in coords:
                try:
                    workloads.append(build(x, y))
                except ReproError as err:
                    failures.append(
                        record_failure((float(x), float(y)), err)
                    )
                    continue
                kept_coords.append((x, y))
        if not workloads:
            return SweepGrid(
                x_name=x_name,
                y_name=y_name,
                cells=(),
                errors=tuple(failures) if on_error == "record" else (),
            )
        # Workload construction already validated every row; the batch
        # skip mode still weeds out degenerate (all-zero-time) points.
        batch_eval = (
            evaluate_batch
            if variant is None
            else lambda *args, **kwargs: evaluate_variant_batch(
                args[0], variant, *args[1:], **kwargs
            )
        )
        batch = batch_eval(
            soc,
            np.array([w.fractions for w in workloads]),
            np.array([w.intensities for w in workloads]),
            validate=False,
            on_error="raise" if on_error == "raise" else "skip",
            engine=engine,
        )
        for failure in batch.errors:
            x, y = kept_coords[failure.coords[0]]
            failures.append(
                PointFailure(
                    coords=(float(x), float(y)),
                    code=failure.code,
                    message=failure.message,
                )
            )
        if batch.point_indices is not None:
            kept_coords = [kept_coords[i] for i in batch.point_indices.tolist()]
        names = batch.component_names
        cells = tuple(
            GridCell(
                x=float(x),
                y=float(y),
                attainable=attainable,
                bottleneck=names[code],
            )
            for (x, y), attainable, code in zip(
                kept_coords,
                batch.attainables.tolist(),
                batch.bottleneck_codes.tolist(),
            )
        )
    return SweepGrid(
        x_name=x_name,
        y_name=y_name,
        cells=cells,
        errors=tuple(failures) if on_error == "record" else (),
    )


def analytic_mixing_grid(
    soc: SoCSpec,
    fractions: Sequence[float] = tuple(i / 8 for i in range(9)),
    intensities: Sequence[float] = (1, 4, 16, 64, 256, 1024),
    ip_index: int = 1,
    on_error: str = "raise",
    variant: ModelVariant | None = None,
    engine: str = "auto",
) -> SweepGrid:
    """The Figure 8 grid evaluated on the model (the upper bound).

    x = fraction of work at IP ``ip_index``, y = common operational
    intensity.  The paper's normalization (vs f=0, I=1) is a caller
    concern: divide by ``grid.at(0.0, 1.0).attainable``.
    """
    if not 0 < ip_index < soc.n_ips:
        raise SpecError(f"ip_index must address an accelerator, got {ip_index}")

    def build(f: float, intensity: float) -> Workload:
        fractions_vector = [0.0] * soc.n_ips
        fractions_vector[0] = 1.0 - f
        fractions_vector[ip_index] = f
        return Workload(
            fractions=tuple(fractions_vector),
            intensities=tuple(intensity for _ in range(soc.n_ips)),
        )

    return sweep_grid(
        soc, "f", fractions, "I", intensities, build,
        on_error=on_error, variant=variant, engine=engine,
    )
