"""Interval propagation through the Gables model.

Early-stage parameters are guesses: pre-silicon `Bi` comes off a spec
sheet, `Ii` from back-of-envelope reuse arguments, `Bpeak` from a DRAM
part not yet chosen.  This module propagates *ranges* instead of point
values and returns a guaranteed interval on attainable performance.

The key observation making this exact (not just first-order): for
fixed work fractions, ``P_attainable`` is monotone **non-decreasing**
in every remaining input — ``Ppeak``, ``Bpeak``, every ``Ai``, every
``Bi``, and every ``Ii`` (more reuse means less data moved).  The
interval bound is therefore just two evaluations: all-pessimistic and
all-optimistic.  (Work fractions are *not* monotone — the whole point
of Figure 8 — so they stay fixed here; sweep them explicitly with
:mod:`repro.explore`.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import require_positive
from ..errors import SpecError, WorkloadError
from .gables import evaluate
from .params import IPBlock, SoCSpec, Workload


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` with ``0 < lo <= hi``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        require_positive(self.lo, "interval lo")
        require_positive(self.hi, "interval hi")
        if self.lo > self.hi:
            raise SpecError(f"interval lo {self.lo!r} exceeds hi {self.hi!r}")

    @classmethod
    def exact(cls, value: float) -> "Interval":
        """A degenerate (point) interval."""
        return cls(value, value)

    @classmethod
    def pct(cls, value: float, plus_minus_percent: float) -> "Interval":
        """``value`` with a symmetric relative uncertainty.

        ``Interval.pct(10e9, 20)`` is ``[8e9, 12e9]``.
        """
        if not 0 <= plus_minus_percent < 100:
            raise SpecError(
                f"plus_minus_percent must lie in [0, 100), got "
                f"{plus_minus_percent!r}"
            )
        delta = value * plus_minus_percent / 100.0
        return cls(value - delta, value + delta)

    @property
    def width_ratio(self) -> float:
        """``hi / lo`` — the interval's multiplicative width."""
        if math.isinf(self.hi):
            return math.inf
        return self.hi / self.lo


@dataclass(frozen=True)
class UncertainSoC:
    """An SoC whose hardware numbers are intervals.

    Parameters mirror :class:`~repro.core.params.SoCSpec` with every
    rate replaced by an :class:`Interval`; ``accelerations[0]`` must be
    the exact interval [1, 1].
    """

    peak_perf: Interval
    memory_bandwidth: Interval
    accelerations: tuple
    bandwidths: tuple
    ip_names: tuple
    name: str = "uncertain-soc"

    def __post_init__(self) -> None:
        for field_name in ("accelerations", "bandwidths", "ip_names"):
            value = getattr(self, field_name)
            if not isinstance(value, tuple):
                object.__setattr__(self, field_name, tuple(value))
        n = len(self.ip_names)
        if len(self.accelerations) != n or len(self.bandwidths) != n:
            raise SpecError(
                "accelerations, bandwidths and ip_names must align"
            )
        if n < 1:
            raise SpecError("UncertainSoC needs at least one IP")
        first = self.accelerations[0]
        if first.lo != 1.0 or first.hi != 1.0:
            raise SpecError("IP[0] acceleration must be exactly [1, 1]")

    @classmethod
    def from_spec(cls, soc: SoCSpec, plus_minus_percent: float
                  ) -> "UncertainSoC":
        """Blanket symmetric uncertainty on every rate of a point SoC."""
        return cls(
            peak_perf=Interval.pct(soc.peak_perf, plus_minus_percent),
            memory_bandwidth=Interval.pct(
                soc.memory_bandwidth, plus_minus_percent
            ),
            accelerations=tuple(
                Interval.exact(1.0) if i == 0
                else Interval.pct(ip.acceleration, plus_minus_percent)
                for i, ip in enumerate(soc.ips)
            ),
            bandwidths=tuple(
                Interval.exact(ip.bandwidth) if math.isinf(ip.bandwidth)
                else Interval.pct(ip.bandwidth, plus_minus_percent)
                for ip in soc.ips
            ),
            ip_names=soc.ip_names,
            name=f"{soc.name}±{plus_minus_percent:g}%",
        )

    def corner(self, optimistic: bool) -> SoCSpec:
        """The all-lo or all-hi concrete SoC."""
        pick = (lambda iv: iv.hi) if optimistic else (lambda iv: iv.lo)
        ips = tuple(
            IPBlock(name, pick(accel), pick(bandwidth))
            for name, accel, bandwidth in zip(
                self.ip_names, self.accelerations, self.bandwidths
            )
        )
        return SoCSpec(
            peak_perf=pick(self.peak_perf),
            memory_bandwidth=pick(self.memory_bandwidth),
            ips=ips,
            name=self.name,
        )


@dataclass(frozen=True)
class UncertainWorkload:
    """A workload with interval intensities (fractions stay exact)."""

    fractions: tuple
    intensities: tuple  # Intervals
    name: str = "uncertain-usecase"

    def __post_init__(self) -> None:
        for field_name in ("fractions", "intensities"):
            value = getattr(self, field_name)
            if not isinstance(value, tuple):
                object.__setattr__(self, field_name, tuple(value))
        if len(self.fractions) != len(self.intensities):
            raise WorkloadError("fractions and intensities must align")

    @classmethod
    def from_workload(cls, workload: Workload, plus_minus_percent: float
                      ) -> "UncertainWorkload":
        """Blanket symmetric uncertainty on every intensity."""
        return cls(
            fractions=workload.fractions,
            intensities=tuple(
                Interval.exact(i) if math.isinf(i)
                else Interval.pct(i, plus_minus_percent)
                for i in workload.intensities
            ),
            name=f"{workload.name}±{plus_minus_percent:g}%",
        )

    def corner(self, optimistic: bool) -> Workload:
        """The all-lo or all-hi concrete workload."""
        pick = (lambda iv: iv.hi) if optimistic else (lambda iv: iv.lo)
        return Workload(
            fractions=self.fractions,
            intensities=tuple(pick(iv) for iv in self.intensities),
            name=self.name,
        )


@dataclass(frozen=True)
class IntervalResult:
    """Guaranteed bounds on attainable performance.

    ``pessimistic``/``optimistic`` carry the two corner evaluations;
    their bottlenecks may differ — when they do, the uncertainty spans
    a design-regime boundary, the most actionable warning the interval
    analysis produces.
    """

    lo: float
    hi: float
    pessimistic_bottleneck: str
    optimistic_bottleneck: str

    @property
    def width_ratio(self) -> float:
        """``hi / lo`` — how much the guess-quality matters."""
        return self.hi / self.lo

    @property
    def regime_stable(self) -> bool:
        """True when both corners bind on the same component."""
        return self.pessimistic_bottleneck == self.optimistic_bottleneck


def evaluate_interval(
    soc: UncertainSoC, workload: UncertainWorkload
) -> IntervalResult:
    """Exact bounds on ``P_attainable`` over the parameter box.

    Correct by monotonicity: with fractions fixed, attainable
    performance is non-decreasing in every interval-valued input, so
    the extremes occur at the all-lo and all-hi corners.
    """
    pessimistic = evaluate(soc.corner(False), workload.corner(False))
    optimistic = evaluate(soc.corner(True), workload.corner(True))
    return IntervalResult(
        lo=pessimistic.attainable,
        hi=optimistic.attainable,
        pessimistic_bottleneck=pessimistic.bottleneck,
        optimistic_bottleneck=optimistic.bottleneck,
    )


def evaluate_with_margin(
    soc: SoCSpec,
    workload: Workload,
    plus_minus_percent: float,
) -> IntervalResult:
    """One-call blanket-uncertainty interval for a point design."""
    return evaluate_interval(
        UncertainSoC.from_spec(soc, plus_minus_percent),
        UncertainWorkload.from_workload(workload, plus_minus_percent),
    )
