"""Memory-side SRAM / scratchpad / cache extension (paper Section V-A).

Base Gables routes all inter-IP communication through DRAM.  This
extension adds an on-chip (or on-package) memory on the *memory side*
of the interconnect: IP[i]'s references reach DRAM only with
probability ``mi`` (its miss ratio into the new memory) and are reused
from the SRAM with probability ``1 - mi``.  Off-chip traffic becomes

    D'i = mi * Di            (per-IP filtered traffic)
    T_memory = sum(D'i) / Bpeak                     (Equation 15)

while the per-IP link times ``Di / Bi`` are *unchanged*: every
reference still crosses the IP's own link, it just may be served from
SRAM instead of DRAM.  The attainable performance is Equation 11 with
the filtered memory term.

``mi`` values depend on both hardware (SRAM capacity) and software
(reuse pattern); :func:`miss_ratio_for_capacity` offers a simple
working-set estimator for early-stage what-ifs.
"""

from __future__ import annotations

from ..._validation import require_finite_positive, require_probability
from ...errors import SpecError, WorkloadError
from ..lowering import LoweredModel, LoweredPhase
from ..params import SoCSpec


class MemorySideCache:
    """The memory-side SRAM: per-IP DRAM miss probabilities ``mi``.

    Parameters
    ----------
    miss_ratios:
        One ``mi`` in [0, 1] per IP.  ``mi = 1`` means the SRAM never
        captures that IP's traffic (base model); ``mi = 0`` means
        perfect capture (no off-chip traffic from that IP).
    capacity_bytes:
        Optional SRAM capacity, recorded for reporting; the model
        itself only consumes the miss ratios.
    name:
        Label for reports.
    """

    def __init__(self, miss_ratios, capacity_bytes: float | None = None,
                 name: str = "memory-side-sram") -> None:
        ratios = tuple(float(m) for m in miss_ratios)
        if not ratios:
            raise SpecError("MemorySideCache needs at least one miss ratio")
        for index, ratio in enumerate(ratios):
            require_probability(ratio, f"miss_ratios[{index}]")
        if capacity_bytes is not None:
            require_finite_positive(capacity_bytes, "capacity_bytes")
        self.miss_ratios = ratios
        self.capacity_bytes = capacity_bytes
        self.name = name

    @property
    def n_ips(self) -> int:
        """Number of per-IP miss ratios (must match the SoC)."""
        return len(self.miss_ratios)

    @classmethod
    def uniform(cls, n_ips: int, miss_ratio: float, **kwargs) -> "MemorySideCache":
        """The same miss ratio for every IP."""
        if n_ips < 1:
            raise SpecError(f"n_ips must be >= 1, got {n_ips}")
        return cls((miss_ratio,) * n_ips, **kwargs)

    @classmethod
    def disabled(cls, n_ips: int) -> "MemorySideCache":
        """An SRAM that captures nothing: ``mi = 1`` everywhere.

        With this cache the extension reduces exactly to base Gables,
        which the test suite verifies as a consistency property.
        """
        return cls.uniform(n_ips, 1.0, name="no-sram")

    def __repr__(self) -> str:
        return (
            f"MemorySideCache(name={self.name!r}, "
            f"miss_ratios={self.miss_ratios!r})"
        )


def lower_memory_side(
    soc: SoCSpec, cache: MemorySideCache
) -> LoweredModel:
    """Lower Equation 15 onto the shared engine.

    The miss ratios become the phase's ``memory_weights``: the engine
    filters the DRAM term (``D'i = mi * Di``) and reports the
    effective post-filter intensity, exactly as the legacy evaluator
    did.
    """
    if cache.n_ips != soc.n_ips:
        raise WorkloadError(
            f"cache has {cache.n_ips} miss ratios but SoC has {soc.n_ips} IPs"
        )
    return LoweredModel(
        kind="memory-side",
        phases=(LoweredPhase(memory_weights=cache.miss_ratios),),
    )


def miss_ratio_for_capacity(
    working_set_bytes: float, capacity_bytes: float, reuse_fraction: float = 1.0
) -> float:
    """A simple working-set estimator for ``mi`` what-if studies.

    If the IP's working set fits in the SRAM, only the ``1 -
    reuse_fraction`` streaming share misses; otherwise misses scale with
    the uncaptured share of the working set.  This is deliberately
    crude — the paper leaves ``mi`` as an input — but gives design
    explorations a defensible knob tied to a capacity.

    Parameters
    ----------
    working_set_bytes:
        Bytes the IP touches with potential reuse.
    capacity_bytes:
        SRAM capacity available to this IP.
    reuse_fraction:
        Fraction of the IP's references that *would* hit given infinite
        capacity (1.0 = fully reusable, 0.0 = pure streaming).
    """
    require_finite_positive(working_set_bytes, "working_set_bytes")
    require_finite_positive(capacity_bytes, "capacity_bytes")
    require_probability(reuse_fraction, "reuse_fraction")
    captured = min(1.0, capacity_bytes / working_set_bytes)
    return 1.0 - reuse_fraction * captured
