"""Deprecated ``evaluate_with_*`` entry points (compatibility shims).

Every extension now *lowers* onto the shared engine in
:mod:`repro.core.lowering` and is evaluated through
:func:`repro.core.variants.evaluate_variant`.  The legacy per-extension
evaluators below are thin wrappers kept for callers that predate the
lowered pipeline; each one emits a :class:`DeprecationWarning` and
delegates to the variant API, so results are identical bit for bit.

New code (including everything in this repository outside this module)
must use ``evaluate_variant`` — a lint test enforces that no in-repo
module imports these names.
"""

from __future__ import annotations

import warnings

from ..params import SoCSpec, Workload
from ..result import GablesResult


def _warn(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use repro.core.variants.evaluate_variant "
        f"with {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def evaluate_with_memory_side(
    soc: SoCSpec, workload: Workload, cache
) -> GablesResult:
    """Deprecated: evaluate via ``MemorySideVariant`` instead."""
    from ..variants import MemorySideVariant, evaluate_variant

    _warn("evaluate_with_memory_side", "MemorySideVariant")
    return evaluate_variant(soc, workload, MemorySideVariant(cache))


def evaluate_with_buses(
    soc: SoCSpec, workload: Workload, interconnect
) -> GablesResult:
    """Deprecated: evaluate via ``InterconnectVariant`` instead."""
    from ..variants import InterconnectVariant, evaluate_variant

    _warn("evaluate_with_buses", "InterconnectVariant")
    return evaluate_variant(soc, workload, InterconnectVariant(interconnect))


def evaluate_with_multipath(
    soc: SoCSpec, workload: Workload, interconnect
) -> GablesResult:
    """Deprecated: evaluate via ``MultipathVariant`` instead."""
    from ..variants import MultipathVariant, evaluate_variant

    _warn("evaluate_with_multipath", "MultipathVariant")
    return evaluate_variant(soc, workload, MultipathVariant(interconnect))


def evaluate_with_coordination(
    soc: SoCSpec, workload: Workload, coordination
) -> GablesResult:
    """Deprecated: evaluate via ``CoordinationVariant`` instead."""
    from ..variants import CoordinationVariant, evaluate_variant

    _warn("evaluate_with_coordination", "CoordinationVariant")
    return evaluate_variant(soc, workload, CoordinationVariant(coordination))


def evaluate_serialized(soc: SoCSpec, workload: Workload) -> GablesResult:
    """Deprecated: evaluate via ``SerializedVariant`` instead."""
    from ..variants import SerializedVariant, evaluate_variant

    _warn("evaluate_serialized", "SerializedVariant")
    return evaluate_variant(soc, workload, SerializedVariant())


def evaluate_phases(soc: SoCSpec, usecase):
    """Deprecated: evaluate via ``PhasedVariant`` instead."""
    from ..variants import PhasedVariant, evaluate_variant

    _warn("evaluate_phases", "PhasedVariant")
    return evaluate_variant(soc, None, PhasedVariant(usecase))
