"""Exclusive/serialized work extension (paper Section V-C).

Base Gables assumes all IPs run *concurrently*.  This extension models
the opposite regime — only one IP active at a time, generalizing
Amdahl's Law and matching MultiAmdahl's computational assumptions, but
with data transfer times included (which neither of those models has).

Each IP still overlaps its own compute with its own data movement, but
because nothing else runs, its off-chip transfer now competes only with
itself, adding a ``Di / Bpeak`` term to its time:

    T'_IP[i] = max(Di / Bpeak, Di / Bi, Ci)             (Equation 18)

and the usecase time is the *sum* of the per-IP times (no overlap
across IPs), with the separate memory term dropped because off-chip
transfer is already accounted inside each ``T'``:

    P_attainable = 1 / (T'_IP[0] + ... + T'_IP[N-1])    (Equation 19)
"""

from __future__ import annotations

import math
from dataclasses import replace

from ..gables import ip_terms
from ..lowering import LoweredModel, LoweredPhase
from ..params import SoCSpec, Workload


def serialized_ip_times(soc: SoCSpec, workload: Workload) -> tuple:
    """Per-IP serialized terms ``T'_IP[i]`` (Equation 18).

    Returns :class:`~repro.core.result.IPTerm` tuples whose ``time``
    and ``perf_bound`` reflect the serialized formulation.  The
    ``limiter`` field distinguishes ``"memory"`` (the new ``Di/Bpeak``
    term binding) from ``"bandwidth"`` (the IP link) and ``"compute"``.
    """
    terms = []
    for term in ip_terms(soc, workload):
        dram_time = term.data_bytes / soc.memory_bandwidth
        time = max(dram_time, term.transfer_time, term.compute_time)
        if term.fraction == 0:
            limiter = "idle"
            perf_bound = None
        elif time == dram_time and dram_time > max(
            term.transfer_time, term.compute_time
        ):
            limiter = "memory"
            perf_bound = math.inf if time == 0 else 1.0 / time
        else:
            limiter = term.limiter
            perf_bound = math.inf if time == 0 else 1.0 / time
        terms.append(replace(term, time=time, perf_bound=perf_bound, limiter=limiter))
    return tuple(terms)


def lower_serialized(soc: SoCSpec) -> LoweredModel:
    """Lower Equations 18-19 onto the shared engine.

    One phase with the serialized conventions: DRAM time folds into
    each per-IP term (``fold_memory_per_ip``), the shared memory term
    leaves the bottleneck comparison (``include_memory=False``), and
    the per-IP times *sum* instead of max (``combine="sum"``).
    """
    del soc  # the lowering is hardware-symbolic; kept for signature parity
    return LoweredModel(
        kind="serialized",
        phases=(
            LoweredPhase(
                combine="sum",
                include_memory=False,
                fold_memory_per_ip=True,
            ),
        ),
    )


def concurrency_benefit(soc: SoCSpec, workload: Workload) -> float:
    """Speedup of concurrent execution over serialized execution.

    ``P_concurrent / P_serialized >= 1`` always: running IPs in parallel
    can only help under bottleneck analysis.  (The concurrent model
    charges the *shared* memory interface with all traffic at once,
    yet max() of the component times still never exceeds their sum.)
    A value near 1 means the usecase is dominated by a single component
    and concurrency buys nothing — useful early-design signal.
    """
    # Local import: variants imports this module at load time.
    from ..variants import SerializedVariant, evaluate_variant

    concurrent = evaluate_variant(soc, workload).attainable
    serialized = evaluate_variant(
        soc, workload, SerializedVariant()
    ).attainable
    return concurrent / serialized
