"""Exclusive/serialized work extension (paper Section V-C).

Base Gables assumes all IPs run *concurrently*.  This extension models
the opposite regime — only one IP active at a time, generalizing
Amdahl's Law and matching MultiAmdahl's computational assumptions, but
with data transfer times included (which neither of those models has).

Each IP still overlaps its own compute with its own data movement, but
because nothing else runs, its off-chip transfer now competes only with
itself, adding a ``Di / Bpeak`` term to its time:

    T'_IP[i] = max(Di / Bpeak, Di / Bi, Ci)             (Equation 18)

and the usecase time is the *sum* of the per-IP times (no overlap
across IPs), with the separate memory term dropped because off-chip
transfer is already accounted inside each ``T'``:

    P_attainable = 1 / (T'_IP[0] + ... + T'_IP[N-1])    (Equation 19)
"""

from __future__ import annotations

import math
from dataclasses import replace

from ...errors import EvaluationError
from ..gables import ip_terms
from ..params import SoCSpec, Workload
from ..result import GablesResult, pick_bottleneck


def serialized_ip_times(soc: SoCSpec, workload: Workload) -> tuple:
    """Per-IP serialized terms ``T'_IP[i]`` (Equation 18).

    Returns :class:`~repro.core.result.IPTerm` tuples whose ``time``
    and ``perf_bound`` reflect the serialized formulation.  The
    ``limiter`` field distinguishes ``"memory"`` (the new ``Di/Bpeak``
    term binding) from ``"bandwidth"`` (the IP link) and ``"compute"``.
    """
    terms = []
    for term in ip_terms(soc, workload):
        dram_time = term.data_bytes / soc.memory_bandwidth
        time = max(dram_time, term.transfer_time, term.compute_time)
        if term.fraction == 0:
            limiter = "idle"
            perf_bound = None
        elif time == dram_time and dram_time > max(
            term.transfer_time, term.compute_time
        ):
            limiter = "memory"
            perf_bound = math.inf if time == 0 else 1.0 / time
        else:
            limiter = term.limiter
            perf_bound = math.inf if time == 0 else 1.0 / time
        terms.append(replace(term, time=time, perf_bound=perf_bound, limiter=limiter))
    return tuple(terms)


def evaluate_serialized(soc: SoCSpec, workload: Workload) -> GablesResult:
    """Evaluate the serialized-work model (Equations 18-19).

    The result reuses :class:`~repro.core.result.GablesResult` with the
    conventions: ``memory_time`` is 0 (folded into the per-IP terms),
    the ``attainable`` is ``1 / sum(T')``, and the ``bottleneck`` is
    the IP contributing the largest share of the serialized runtime.
    """
    terms = serialized_ip_times(soc, workload)
    total_time = math.fsum(term.time for term in terms)
    if total_time <= 0:
        raise EvaluationError("serialized usecase takes zero time")

    times = {term.name: term.time for term in terms}
    primary, binding = pick_bottleneck(times)

    return GablesResult(
        ip_terms=terms,
        memory_time=0.0,
        memory_perf_bound=math.inf,
        average_intensity=workload.average_intensity(),
        attainable=1.0 / total_time,
        bottleneck=primary,
        binding_components=binding,
    )


def concurrency_benefit(soc: SoCSpec, workload: Workload) -> float:
    """Speedup of concurrent execution over serialized execution.

    ``P_concurrent / P_serialized >= 1`` always: running IPs in parallel
    can only help under bottleneck analysis.  (The concurrent model
    charges the *shared* memory interface with all traffic at once,
    yet max() of the component times still never exceeds their sum.)
    A value near 1 means the usecase is dominated by a single component
    and concurrency buys nothing — useful early-design signal.
    """
    from ..gables import evaluate  # local import to avoid cycle at module load

    concurrent = evaluate(soc, workload).attainable
    serialized = evaluate_serialized(soc, workload).attainable
    return concurrent / serialized
