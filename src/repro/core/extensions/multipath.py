"""Multi-path interconnect: the richer topologies Section V-B defers.

The paper's interconnect extension assumes "each IP[i] has one bus
path to/from memory" and notes that "further extensions to richer
topologies (e.g., multiple alternative bus paths) ... are
straightforward at the cost of more assumptions".  This module writes
that extension down: an IP may have *several* alternative routes to
memory, each route a set of buses, and its traffic may split across
routes.  The natural question becomes an optimization:

    choose per-IP route splits x[i][r] >= 0, sum_r x[i][r] = 1
    minimizing the worst bus time
        T_bus[j] = sum_{i,r: j in route} x[i][r] * Di / B_bus[j]

which is a linear program (min t s.t. per-bus load <= t); we solve it
with ``scipy.optimize.linprog``.  Single-route IPs reduce exactly to
the paper's Use(i, j) formulation, which the tests verify.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import optimize

from ...errors import EvaluationError, SpecError, WorkloadError
from ..lowering import LoweredModel, LoweredPhase, RouteSolver
from ..params import SoCSpec
from .interconnect import Bus

#: Bound on per-instance memoized route splits (see
#: :func:`optimal_route_split`); old entries are evicted FIFO.
_SPLIT_CACHE_LIMIT = 256


class MultiPathInterconnect:
    """Buses plus per-IP *alternative* routes.

    Parameters
    ----------
    buses:
        The fabrics, as in :class:`~.interconnect.InterconnectSpec`.
    routes:
        ``routes[i]`` is a non-empty sequence of alternatives for
        IP[i]; each alternative is a set/sequence of bus indices or
        names (possibly empty: a direct memory port).
    """

    def __init__(self, buses, routes) -> None:
        self.buses = tuple(buses)
        if not self.buses:
            raise SpecError("MultiPathInterconnect needs at least one bus")
        for bus in self.buses:
            if not isinstance(bus, Bus):
                raise SpecError(f"buses must contain Bus, got {type(bus).__name__}")
        names = [bus.name for bus in self.buses]
        if len(set(names)) != len(names):
            raise SpecError(f"bus names must be unique, got {names!r}")
        self._name_to_index = {bus.name: j for j, bus in enumerate(self.buses)}

        resolved = []
        for i, alternatives in enumerate(routes):
            alternatives = tuple(alternatives)
            if not alternatives:
                raise SpecError(f"routes[{i}] must offer at least one route")
            resolved.append(
                tuple(self._resolve(route, i) for route in alternatives)
            )
        self.routes = tuple(resolved)
        # Memoized LP solutions keyed by traffic *ratios*: the optimal
        # splits are scale-invariant in the byte volumes, so a sweep
        # that only rescales traffic re-solves nothing.
        self._split_cache: dict = {}

    def _resolve(self, route, ip_index: int) -> tuple:
        indices = []
        for entry in route:
            if isinstance(entry, str):
                if entry not in self._name_to_index:
                    raise SpecError(
                        f"routes[{ip_index}] names unknown bus {entry!r}"
                    )
                indices.append(self._name_to_index[entry])
            else:
                j = int(entry)
                if not 0 <= j < len(self.buses):
                    raise SpecError(
                        f"routes[{ip_index}] bus index {j} out of range"
                    )
                indices.append(j)
        return tuple(sorted(set(indices)))

    @property
    def n_buses(self) -> int:
        """Number of fabrics Q."""
        return len(self.buses)

    @property
    def n_ips(self) -> int:
        """Number of IPs routed."""
        return len(self.routes)


def optimal_route_split(
    interconnect: MultiPathInterconnect, data_bytes
) -> tuple:
    """Traffic splits minimizing the worst per-bus time.

    The LP is scale-invariant in the traffic vector, so solutions are
    memoized per interconnect instance keyed on the traffic *ratios*
    ``Di / max(D)``: a bandwidth or fraction sweep that rescales all
    traffic uniformly solves the LP once and reuses the splits (the
    per-bus times are always recomputed from the actual volumes).

    Parameters
    ----------
    interconnect:
        The topology.
    data_bytes:
        Per-IP bytes to move (the Gables ``Di`` values).

    Returns
    -------
    (splits, bus_times):
        ``splits[i][r]`` is IP[i]'s share on its route ``r``;
        ``bus_times`` maps bus name to its loaded time.
    """
    data_bytes = [float(d) for d in data_bytes]
    if len(data_bytes) != interconnect.n_ips:
        raise WorkloadError(
            f"got {len(data_bytes)} data volumes for "
            f"{interconnect.n_ips} routed IPs"
        )
    key = _cache_key(data_bytes)
    cache = interconnect._split_cache
    if key is not None and key in cache:
        splits = cache[key]
    else:
        splits = _solve_route_split(interconnect, data_bytes)
        if key is not None:
            if len(cache) >= _SPLIT_CACHE_LIMIT:
                cache.pop(next(iter(cache)))
            cache[key] = splits
    return splits, _bus_times_for_splits(interconnect, splits, data_bytes)


def _cache_key(data_bytes) -> tuple | None:
    """Scale-invariant memoization key, or ``None`` (don't cache)."""
    if not all(math.isfinite(d) for d in data_bytes):
        return None
    peak = max(data_bytes, default=0.0)
    if peak <= 0:
        return ("all-zero",)
    return tuple(d / peak for d in data_bytes)


def _solve_route_split(
    interconnect: MultiPathInterconnect, data_bytes
) -> tuple:
    """Solve the min-max-bus-time LP; returns only the splits."""
    # Decision variables: one split per (ip, route) pair, plus t.
    pairs = [
        (i, r)
        for i in range(interconnect.n_ips)
        for r in range(len(interconnect.routes[i]))
    ]
    n_vars = len(pairs) + 1
    t_index = len(pairs)

    # Objective: minimize t.
    c = np.zeros(n_vars)
    c[t_index] = 1.0

    # Seconds-scale coefficients can sit below the solver's feasibility
    # tolerances (nanosecond bus times on gigabyte links); normalize
    # rows to O(1) and scale t back afterwards.
    scale_candidates = [
        data_bytes[i] / bus.bandwidth
        for j, bus in enumerate(interconnect.buses)
        for i in range(interconnect.n_ips)
        if any(j in route for route in interconnect.routes[i])
        and data_bytes[i] > 0 and math.isfinite(bus.bandwidth)
    ]
    time_scale = max(scale_candidates) if scale_candidates else 1.0
    if time_scale <= 0:
        time_scale = 1.0

    # Per-bus load <= t  ->  sum(load) - t <= 0.
    a_ub = []
    b_ub = []
    for j, bus in enumerate(interconnect.buses):
        row = np.zeros(n_vars)
        for k, (i, r) in enumerate(pairs):
            if j in interconnect.routes[i][r]:
                row[k] = data_bytes[i] / bus.bandwidth / time_scale
        row[t_index] = -1.0
        a_ub.append(row)
        b_ub.append(0.0)

    # Per-IP splits sum to 1.
    a_eq = []
    b_eq = []
    for i in range(interconnect.n_ips):
        row = np.zeros(n_vars)
        for k, (ip, _) in enumerate(pairs):
            if ip == i:
                row[k] = 1.0
        a_eq.append(row)
        b_eq.append(1.0)

    bounds = [(0.0, 1.0)] * len(pairs) + [(0.0, None)]
    result = optimize.linprog(
        c, A_ub=np.array(a_ub), b_ub=np.array(b_ub),
        A_eq=np.array(a_eq), b_eq=np.array(b_eq),
        bounds=bounds, method="highs",
    )
    if not result.success:
        raise EvaluationError(f"route-split LP failed: {result.message}")

    splits = []
    for i in range(interconnect.n_ips):
        shares = tuple(
            float(result.x[k]) for k, (ip, _) in enumerate(pairs) if ip == i
        )
        splits.append(shares)
    return tuple(splits)


def _bus_times_for_splits(
    interconnect: MultiPathInterconnect, splits, data_bytes
) -> dict:
    """Loaded per-bus times for given splits, in legacy pair order."""
    bus_times = {}
    for j, bus in enumerate(interconnect.buses):
        load = math.fsum(
            splits[i][r] * data_bytes[i] / bus.bandwidth
            for i in range(interconnect.n_ips)
            for r in range(len(interconnect.routes[i]))
            if j in interconnect.routes[i][r]
        )
        bus_times[bus.name] = load
    return bus_times


def lower_multipath(
    soc: SoCSpec, interconnect: MultiPathInterconnect
) -> LoweredModel:
    """Lower multi-path routing onto the shared engine.

    The LP becomes a :class:`~repro.core.lowering.RouteSolver`: the
    engine hands it each evaluation point's per-IP byte volumes and
    receives the optimally-loaded per-bus times (Equation 17 with the
    LP in place of the fixed Use matrix), memoized across points with
    identical traffic ratios.
    """
    if interconnect.n_ips != soc.n_ips:
        raise WorkloadError(
            f"interconnect routes {interconnect.n_ips} IPs but SoC has "
            f"{soc.n_ips}"
        )

    def solve(data_bytes) -> dict:
        return optimal_route_split(interconnect, data_bytes)[1]

    solver = RouteSolver(
        bus_names=tuple(bus.name for bus in interconnect.buses),
        solve=solve,
    )
    return LoweredModel(
        kind="multipath", phases=(LoweredPhase(route_solver=solver),)
    )
