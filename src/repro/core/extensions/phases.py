"""Phased usecases: sequences of concurrent phases (beyond Section V-C).

The paper notes that "more complex combinations of parallel and
serialized work are possible with more assumptions, parameters, and
notation".  This module writes those down in the most economical form:
a usecase is an ordered list of *phases*; within a phase IPs run
concurrently (base Gables), while phases themselves are serialized.
Pure-concurrent (one phase) and pure-serialized (one active IP per
phase) usecases are special cases, which the test suite exploits.

Each phase carries its own share of the total work and its own
per-IP split and intensities::

    T_phase[k]   = phase_work[k] / P_gables(phase k)
    P_attainable = 1 / sum_k(T_phase[k])
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..._validation import require_fractions_sum_to_one
from ...errors import WorkloadError
from ..lowering import LoweredModel, LoweredPhase
from ..params import SoCSpec, Workload


@dataclass(frozen=True)
class Phase:
    """One concurrent phase: a share of the work plus its Gables split.

    Parameters
    ----------
    work:
        This phase's share of the total usecase work, in (0, 1].
        Phase shares across a :class:`PhasedUsecase` must sum to one.
    workload:
        How the phase's work divides among IPs (a normalized
        :class:`~repro.core.params.Workload` — its fractions are
        *within-phase* fractions).
    name:
        Label for reports.
    """

    work: float
    workload: Workload
    name: str = "phase"

    def __post_init__(self) -> None:
        if not 0 < self.work <= 1:
            raise WorkloadError(
                f"phase {self.name!r} work must lie in (0, 1], got {self.work!r}"
            )


@dataclass(frozen=True)
class PhasedUsecase:
    """An ordered sequence of serialized concurrent phases."""

    phases: tuple
    name: str = "phased-usecase"

    def __post_init__(self) -> None:
        if not isinstance(self.phases, tuple):
            object.__setattr__(self, "phases", tuple(self.phases))
        if not self.phases:
            raise WorkloadError("PhasedUsecase needs at least one phase")
        n_ips = {phase.workload.n_ips for phase in self.phases}
        if len(n_ips) != 1:
            raise WorkloadError(
                f"all phases must cover the same IP count, got {sorted(n_ips)!r}"
            )
        require_fractions_sum_to_one(
            [phase.work for phase in self.phases], "phase works"
        )

    @property
    def n_ips(self) -> int:
        """IP count every phase's workload covers."""
        return self.phases[0].workload.n_ips

    @classmethod
    def single(cls, workload: Workload, name: str = "concurrent") -> "PhasedUsecase":
        """A one-phase usecase — exactly base (concurrent) Gables."""
        return cls(phases=(Phase(1.0, workload),), name=name)


@dataclass(frozen=True)
class PhasedResult:
    """Evaluation of a phased usecase.

    Attributes
    ----------
    attainable:
        Overall ops/s upper bound across the phase sequence.
    phase_results:
        ``(phase, GablesResult)`` pairs in execution order.
    phase_times:
        Seconds each phase contributes per unit of total work.
    bottleneck_phase:
        Name of the phase consuming the largest share of the runtime.
    """

    attainable: float
    phase_results: tuple
    phase_times: tuple
    bottleneck_phase: str

    @property
    def bottleneck(self) -> str:
        """Alias for :attr:`bottleneck_phase`.

        Lets sweep consumers read ``result.bottleneck`` uniformly
        whether a point produced a :class:`~repro.core.result.GablesResult`
        or a phased result.
        """
        return self.bottleneck_phase

    def phase_share(self) -> dict:
        """Fraction of total runtime spent in each phase, by name."""
        total = math.fsum(self.phase_times)
        return {
            phase.name: t / total
            for (phase, _), t in zip(self.phase_results, self.phase_times)
        }


def lower_phases(soc: SoCSpec, usecase: PhasedUsecase) -> LoweredModel:
    """Lower a phased usecase onto the shared engine.

    Each phase becomes one :class:`~repro.core.lowering.LoweredPhase`
    carrying its own workload vector, so the lowered model is
    *workload-free*: the engine evaluates each phase with base Gables
    and the variant layer serializes the phase times
    (``T_phase[k] = work_k / P_k``).
    """
    if usecase.n_ips != soc.n_ips:
        raise WorkloadError(
            f"usecase covers {usecase.n_ips} IPs but SoC has {soc.n_ips}"
        )
    return LoweredModel(
        kind="phases",
        phases=tuple(
            LoweredPhase(name=phase.name, work=phase.work, workload=phase.workload)
            for phase in usecase.phases
        ),
    )
