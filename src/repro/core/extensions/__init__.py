"""Gables model extensions (paper Section V).

Three published extensions plus one composition layer:

- :mod:`.memory_side` — a memory-side SRAM/scratchpad/cache that
  filters DRAM traffic with per-IP miss probabilities ``mi`` (Eq. 15);
- :mod:`.interconnect` — explicit bus/fabric topology with per-bus
  bandwidth bounds (Eqs. 16-17);
- :mod:`.serialized` — exclusive (one-IP-at-a-time) work, the
  MultiAmdahl-style regime with data movement added (Eqs. 18-19);
- :mod:`.phases` — usecases as sequences of concurrent phases, the
  "more complex combinations of parallel and serialized work" the
  paper sketches at the end of Section V-C;
- :mod:`.multipath` — multiple alternative bus paths per IP with
  LP-optimal traffic splitting, the "richer topologies" Section V-B
  defers;
- :mod:`.coordination` — host-routed IP dispatch overhead, the third
  usecase bottleneck of Section II-B, in the LogCA spirit the paper
  cites for future work.
"""

from .coordination import (
    COORDINATION,
    CoordinationModel,
    coordination_break_even_items,
    lower_coordination,
    max_item_rate_with_coordination,
)
from .interconnect import Bus, InterconnectSpec, lower_interconnect
from .memory_side import MemorySideCache, lower_memory_side
from .multipath import (
    MultiPathInterconnect,
    lower_multipath,
    optimal_route_split,
)
from .phases import Phase, PhasedResult, PhasedUsecase, lower_phases
from .serialized import lower_serialized

# Deprecated legacy entry points; imported last so the shims can reach
# the variant layer (which imports the submodules above) lazily.
from ._compat import (  # noqa: E402  (deliberate ordering)
    evaluate_phases,
    evaluate_serialized,
    evaluate_with_buses,
    evaluate_with_coordination,
    evaluate_with_memory_side,
    evaluate_with_multipath,
)

__all__ = [
    "COORDINATION",
    "Bus",
    "CoordinationModel",
    "InterconnectSpec",
    "MemorySideCache",
    "MultiPathInterconnect",
    "Phase",
    "PhasedResult",
    "PhasedUsecase",
    "coordination_break_even_items",
    "evaluate_phases",
    "evaluate_serialized",
    "evaluate_with_coordination",
    "max_item_rate_with_coordination",
    "evaluate_with_buses",
    "evaluate_with_memory_side",
    "evaluate_with_multipath",
    "lower_coordination",
    "lower_interconnect",
    "lower_memory_side",
    "lower_multipath",
    "lower_phases",
    "lower_serialized",
    "optimal_route_split",
]
