"""Gables model extensions (paper Section V).

Three published extensions plus one composition layer:

- :mod:`.memory_side` — a memory-side SRAM/scratchpad/cache that
  filters DRAM traffic with per-IP miss probabilities ``mi`` (Eq. 15);
- :mod:`.interconnect` — explicit bus/fabric topology with per-bus
  bandwidth bounds (Eqs. 16-17);
- :mod:`.serialized` — exclusive (one-IP-at-a-time) work, the
  MultiAmdahl-style regime with data movement added (Eqs. 18-19);
- :mod:`.phases` — usecases as sequences of concurrent phases, the
  "more complex combinations of parallel and serialized work" the
  paper sketches at the end of Section V-C;
- :mod:`.multipath` — multiple alternative bus paths per IP with
  LP-optimal traffic splitting, the "richer topologies" Section V-B
  defers;
- :mod:`.coordination` — host-routed IP dispatch overhead, the third
  usecase bottleneck of Section II-B, in the LogCA spirit the paper
  cites for future work.
"""

from .coordination import (
    COORDINATION,
    CoordinationModel,
    coordination_break_even_items,
    evaluate_with_coordination,
    max_item_rate_with_coordination,
)
from .interconnect import Bus, InterconnectSpec, evaluate_with_buses
from .memory_side import MemorySideCache, evaluate_with_memory_side
from .multipath import (
    MultiPathInterconnect,
    evaluate_with_multipath,
    optimal_route_split,
)
from .phases import Phase, PhasedUsecase, evaluate_phases
from .serialized import evaluate_serialized

__all__ = [
    "COORDINATION",
    "Bus",
    "CoordinationModel",
    "InterconnectSpec",
    "MemorySideCache",
    "MultiPathInterconnect",
    "Phase",
    "PhasedUsecase",
    "coordination_break_even_items",
    "evaluate_phases",
    "evaluate_serialized",
    "evaluate_with_coordination",
    "max_item_rate_with_coordination",
    "evaluate_with_buses",
    "evaluate_with_memory_side",
    "evaluate_with_multipath",
    "optimal_route_split",
]
