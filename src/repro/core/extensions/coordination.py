"""Host-routed coordination overhead (Section II-B's third bottleneck).

The paper names three usecase bottlenecks: IP compute, IP-external data
movement, and "the coordination overhead between the IPs, which by and
large today are routed through the CPU ... the CPU gets an explicit
interruption whenever the IP finishes processing".  Base Gables models
the first two; this extension adds the third, in the LogCA spirit the
paper cites for future per-IP sophistication (Section VI).

Usecases process discrete *items* (frames, buffers).  Each active
non-host IP costs the host a fixed dispatch-plus-interrupt time per
item.  That work is serialized on the host CPU, so it forms one more
component in the bottleneck max():

    T_coord = (sum over active i > 0 of c_i) / ops_per_item

per unit of (normalized) work, where ``c_i`` is seconds of host time
per item for IP[i].  Small items (high frame rates, shallow buffers)
make coordination dominate — the granularity effect LogCA models for a
single accelerator, here applied to the whole concurrent usecase.
"""

from __future__ import annotations

import math

from ..._validation import require_finite_positive, require_nonnegative
from ...errors import SpecError, WorkloadError
from ..lowering import COORDINATION, LoweredModel, LoweredPhase
from ..params import SoCSpec, Workload


class CoordinationModel:
    """Per-IP host dispatch costs plus the usecase's item granularity.

    Parameters
    ----------
    dispatch_seconds:
        One entry per IP: host seconds consumed per item dispatched to
        that IP (driver call, completion interrupt, buffer handoff).
        Entry 0 (the host itself) is conventionally 0 — it needs no
        self-dispatch — but any value is accepted.
    ops_per_item:
        Usecase work per item, in the same ops as ``Ppeak``.  Converts
        per-item costs into per-unit-work times.
    """

    def __init__(self, dispatch_seconds, ops_per_item: float) -> None:
        self.dispatch_seconds = tuple(
            require_nonnegative(value, f"dispatch_seconds[{index}]")
            for index, value in enumerate(dispatch_seconds)
        )
        if not self.dispatch_seconds:
            raise SpecError("CoordinationModel needs at least one IP entry")
        self.ops_per_item = require_finite_positive(
            ops_per_item, "ops_per_item"
        )

    @property
    def n_ips(self) -> int:
        """Number of per-IP dispatch costs."""
        return len(self.dispatch_seconds)

    @classmethod
    def uniform(cls, n_ips: int, dispatch_seconds: float,
                ops_per_item: float) -> "CoordinationModel":
        """The same dispatch cost for every non-host IP."""
        if n_ips < 1:
            raise SpecError(f"n_ips must be >= 1, got {n_ips}")
        costs = (0.0,) + (dispatch_seconds,) * (n_ips - 1)
        return cls(costs, ops_per_item)

    def coordination_time(self, workload: Workload) -> float:
        """Host seconds per unit work spent coordinating active IPs."""
        if workload.n_ips != self.n_ips:
            raise WorkloadError(
                f"coordination model covers {self.n_ips} IPs but the "
                f"workload has {workload.n_ips}"
            )
        per_item = math.fsum(
            self.dispatch_seconds[index]
            for index in workload.active_ips
            if index > 0
        )
        return per_item / self.ops_per_item


def lower_coordination(
    soc: SoCSpec, coordination: CoordinationModel
) -> LoweredModel:
    """Lower the coordination term onto the shared engine.

    The dispatch costs and item granularity ride on the lowered phase;
    the engine folds the serialized host work into the host IP's term
    (the CPU cannot compute while servicing interrupts) and adds the
    standalone ``"coordination"`` component to the bottleneck max().
    """
    if coordination.n_ips != soc.n_ips:
        raise WorkloadError(
            f"coordination model covers {coordination.n_ips} IPs but SoC "
            f"has {soc.n_ips}"
        )
    return LoweredModel(
        kind="coordination",
        phases=(
            LoweredPhase(
                dispatch_seconds=coordination.dispatch_seconds,
                ops_per_item=coordination.ops_per_item,
            ),
        ),
    )


def max_item_rate_with_coordination(
    soc: SoCSpec,
    workload: Workload,
    coordination: CoordinationModel,
) -> float:
    """Items/s ceiling including the host-coordination bottleneck."""
    # Local import: variants imports this module at load time.
    from ..variants import CoordinationVariant, evaluate_variant

    result = evaluate_variant(soc, workload, CoordinationVariant(coordination))
    return result.attainable / coordination.ops_per_item


def coordination_break_even_items(
    soc: SoCSpec,
    workload: Workload,
    dispatch_seconds,
) -> float:
    """Ops-per-item at which coordination stops being the bottleneck.

    Below this granularity the host's dispatch work dominates the
    usecase — the LogCA break-even, generalized to the concurrent
    N-IP setting.  Returns 0 when no IP incurs dispatch costs.
    """
    from ..gables import evaluate

    base = evaluate(soc, workload)
    per_item = math.fsum(
        require_nonnegative(value, f"dispatch_seconds[{index}]")
        for index, value in enumerate(dispatch_seconds)
        if index > 0 and index in workload.active_ips
    )
    if per_item == 0:
        return 0.0
    # Coordination binds while per_item / ops_per_item > 1 / P_base.
    return per_item * base.attainable
