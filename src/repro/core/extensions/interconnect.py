"""On-chip interconnect extension (paper Section V-B, Figure 11).

Base Gables abstracts the interconnect away, assuming it never binds.
This extension models it as ``Q`` buses (fabrics), each contributing a
slanted-only roofline: bus ``j`` has bandwidth ``B_bus[j]`` and carries
the traffic of every IP routed over it.  With ``Use(i, j) = 1`` when
IP[i]'s one path to memory crosses Bus[j]:

    T_bus[j] = sum_i(Di * Use(i, j)) / B_bus[j]        (Equation 16)

and the attainable performance adds one max() term per bus:

    P_attainable = 1 / max(T_memory, T_IP[0..N-1], T_bus[0..Q-1])
                                                        (Equation 17)

The :class:`InterconnectSpec` can be written down directly as a usage
matrix or derived from a fabric-hierarchy graph (each IP attached to
one fabric, fabrics chained toward the memory controller), matching the
clustered topologies of real SoCs (paper Figure 3).
"""

from __future__ import annotations

import math

import networkx as nx

from ..._validation import require_positive
from ...errors import SpecError, WorkloadError
from ..gables import ip_terms
from ..lowering import BusConstraint, LoweredModel, LoweredPhase
from ..params import SoCSpec, Workload
from ..result import MEMORY


class Bus:
    """One interconnection network (fabric) with a bandwidth bound."""

    def __init__(self, name: str, bandwidth: float) -> None:
        if not name:
            raise SpecError("Bus name must be non-empty")
        self.name = name
        self.bandwidth = require_positive(bandwidth, f"bus {name!r} bandwidth")

    def __repr__(self) -> str:
        return f"Bus({self.name!r}, bandwidth={self.bandwidth!r})"


class InterconnectSpec:
    """Q buses plus the IP -> bus usage matrix ``Use(i, j)``.

    Parameters
    ----------
    buses:
        The fabrics, in index order ``j = 0 .. Q-1``.
    usage:
        ``usage[i]`` is the set/sequence of bus indices (or bus names)
        IP[i]'s memory path crosses.  Every IP must be routable (an
        empty set means the IP bypasses all modeled buses, which is
        allowed — e.g. a CPU port directly on the memory controller).
    """

    def __init__(self, buses, usage) -> None:
        self.buses = tuple(buses)
        if not self.buses:
            raise SpecError("InterconnectSpec needs at least one bus")
        for bus in self.buses:
            if not isinstance(bus, Bus):
                raise SpecError(f"buses must contain Bus, got {type(bus).__name__}")
        names = [bus.name for bus in self.buses]
        if len(set(names)) != len(names):
            raise SpecError(f"bus names must be unique, got {names!r}")
        self._name_to_index = {bus.name: j for j, bus in enumerate(self.buses)}
        self.usage = tuple(self._resolve_row(row, i) for i, row in enumerate(usage))

    def _resolve_row(self, row, ip_index: int):
        resolved = []
        for entry in row:
            if isinstance(entry, str):
                if entry not in self._name_to_index:
                    raise SpecError(
                        f"usage[{ip_index}] names unknown bus {entry!r}"
                    )
                resolved.append(self._name_to_index[entry])
            else:
                j = int(entry)
                if not 0 <= j < len(self.buses):
                    raise SpecError(
                        f"usage[{ip_index}] bus index {j} out of range "
                        f"for Q={len(self.buses)}"
                    )
                resolved.append(j)
        return tuple(sorted(set(resolved)))

    @property
    def n_buses(self) -> int:
        """Q, the number of modeled fabrics."""
        return len(self.buses)

    @property
    def n_ips(self) -> int:
        """Number of IPs the usage matrix covers."""
        return len(self.usage)

    def uses(self, ip_index: int, bus_index: int) -> bool:
        """``Use(i, j)`` from the paper."""
        return bus_index in self.usage[ip_index]

    @classmethod
    def from_fabric_graph(
        cls, graph: nx.DiGraph, ip_names, memory_node: str = "memory"
    ) -> "InterconnectSpec":
        """Derive buses and usage from a fabric-hierarchy graph.

        ``graph`` nodes are IP names, fabric names, and ``memory_node``;
        edges point toward memory.  Fabric nodes must carry a
        ``bandwidth`` attribute (bytes/s).  Each IP must have exactly
        one simple path to ``memory_node`` (the paper's "one bus path
        to/from memory" assumption); every fabric node on that path is
        marked used by the IP.
        """
        if memory_node not in graph:
            raise SpecError(f"graph has no memory node {memory_node!r}")
        fabric_nodes = [
            node
            for node, data in graph.nodes(data=True)
            if "bandwidth" in data and node != memory_node
        ]
        buses = [Bus(node, graph.nodes[node]["bandwidth"]) for node in fabric_nodes]
        index_of = {node: j for j, node in enumerate(fabric_nodes)}
        usage = []
        for ip_name in ip_names:
            if ip_name not in graph:
                raise SpecError(f"graph has no node for IP {ip_name!r}")
            paths = list(nx.all_simple_paths(graph, ip_name, memory_node))
            if len(paths) != 1:
                raise SpecError(
                    f"IP {ip_name!r} must have exactly one path to memory, "
                    f"found {len(paths)}"
                )
            usage.append(
                tuple(index_of[node] for node in paths[0] if node in index_of)
            )
        return cls(buses, usage)


def bus_times(soc: SoCSpec, workload: Workload, interconnect: InterconnectSpec) -> dict:
    """Per-bus times ``T_bus[j]`` (Equation 16), keyed by bus name."""
    if interconnect.n_ips != soc.n_ips:
        raise WorkloadError(
            f"interconnect usage covers {interconnect.n_ips} IPs "
            f"but SoC has {soc.n_ips}"
        )
    terms = ip_terms(soc, workload)
    times = {}
    for j, bus in enumerate(interconnect.buses):
        carried = math.fsum(
            term.data_bytes for term in terms if interconnect.uses(term.index, j)
        )
        times[bus.name] = carried / bus.bandwidth
    return times


def lower_interconnect(
    soc: SoCSpec, interconnect: InterconnectSpec
) -> LoweredModel:
    """Lower Equation 17 onto the shared engine.

    Each bus becomes a fixed :class:`~repro.core.lowering.BusConstraint`
    whose traffic weights encode the ``Use(i, j)`` matrix; the lowering
    is workload-independent, so one lowering serves a whole sweep.
    """
    if interconnect.n_ips != soc.n_ips:
        raise WorkloadError(
            f"interconnect usage covers {interconnect.n_ips} IPs "
            f"but SoC has {soc.n_ips}"
        )
    overlap = (set(soc.ip_names) | {MEMORY}) & {
        bus.name for bus in interconnect.buses
    }
    if overlap:
        raise SpecError(
            f"bus names collide with IP/memory names: {sorted(overlap)!r}"
        )
    buses = tuple(
        BusConstraint(
            name=bus.name,
            bandwidth=bus.bandwidth,
            traffic_weights=tuple(
                1.0 if interconnect.uses(i, j) else 0.0
                for i in range(interconnect.n_ips)
            ),
        )
        for j, bus in enumerate(interconnect.buses)
    )
    return LoweredModel(
        kind="interconnect", phases=(LoweredPhase(buses=buses),)
    )
