"""Model variants: one front door for every Gables formulation.

A :class:`ModelVariant` names a formulation of the model — base
concurrent Gables (Equations 9-11) or any of the Section V extensions —
and knows how to *lower* itself onto the shared IR of
:mod:`repro.core.lowering` for a given SoC.  Evaluation then goes
through exactly one engine with two interchangeable backends:

- :func:`evaluate_variant` — the scalar backend, one ``(soc,
  workload)`` point per call, bitwise identical to the legacy
  per-extension evaluators;
- :func:`evaluate_variant_batch` — the vectorized backend
  (:func:`repro.core.batch.evaluate_lowered_batch`), K workload points
  and per-point hardware overrides per call, within 1e-12 relative of
  the scalar backend.

Because dispatch happens here, ``on_error`` semantics, tracing spans,
metrics, and evaluation provenance are instrumented once at the engine
layer instead of once per extension.  The CLI maps ``--variant`` names
through :data:`VARIANT_CHOICES` / :func:`variant_from_config`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import EvaluationError, SpecError, WorkloadError
from ..obs import provenance as _provenance
from ..obs.metrics import counter as _counter
from ..obs.profile import get_profiler as _get_profiler
from ..obs.profile import profile_scope as _profile_scope
from ..obs.trace import get_tracer as _get_tracer
from ..obs.trace import span as _span
from .extensions.coordination import CoordinationModel, lower_coordination
from .extensions.interconnect import (
    Bus,
    InterconnectSpec,
    lower_interconnect,
)
from .extensions.memory_side import MemorySideCache, lower_memory_side
from .extensions.multipath import MultiPathInterconnect, lower_multipath
from .extensions.phases import (
    Phase,
    PhasedResult,
    PhasedUsecase,
    lower_phases,
)
from .extensions.serialized import lower_serialized
from .lowering import LoweredModel, LoweredPhase, execute_lowered_phase
from .params import SoCSpec, Workload
from .result import GablesResult

#: Singletons bound once at import: the hot-path disabled check is
#: two attribute loads, no function calls (the overhead benchmarks
#: hold instrumented entry points within a few percent of bare).
_TRACER = _get_tracer()
_PROFILER = _get_profiler()

#: CLI-facing variant names, in presentation order.
VARIANT_CHOICES = (
    "base",
    "serialized",
    "phases",
    "coordination",
    "interconnect",
    "multipath",
    "memory-side",
)

#: Module-level instrument handle (one registry lookup at import).
_VARIANT_CALLS = _counter("core.evaluate_variant.calls")


class ModelVariant:
    """A named model formulation that lowers onto the shared engine.

    Subclasses set :attr:`kind` and implement :meth:`lower`; everything
    downstream (sweeps, reports, the CLI, plots) treats variants
    uniformly through :func:`evaluate_variant` /
    :func:`evaluate_variant_batch`.
    """

    kind = "base"
    #: False for variants that carry their own workload vectors
    #: (phased usecases) and ignore the evaluation-time workload.
    requires_workload = True

    def lower(self, soc: SoCSpec) -> LoweredModel:
        """Lower this variant for ``soc`` (hardware-symbolic IR)."""
        raise NotImplementedError


@dataclass(frozen=True)
class BaseVariant(ModelVariant):
    """Base concurrent Gables (Equations 9-11)."""

    kind = "base"

    def lower(self, soc: SoCSpec) -> LoweredModel:
        del soc
        return LoweredModel(kind="base", phases=(LoweredPhase(),))


@dataclass(frozen=True)
class SerializedVariant(ModelVariant):
    """Exclusive one-IP-at-a-time execution (Equations 18-19)."""

    kind = "serialized"

    def lower(self, soc: SoCSpec) -> LoweredModel:
        return lower_serialized(soc)


@dataclass(frozen=True)
class MemorySideVariant(ModelVariant):
    """Memory-side SRAM filtering DRAM traffic (Equation 15)."""

    cache: MemorySideCache

    kind = "memory-side"

    def lower(self, soc: SoCSpec) -> LoweredModel:
        return lower_memory_side(soc, self.cache)


@dataclass(frozen=True)
class InterconnectVariant(ModelVariant):
    """Fixed bus topology with per-bus bounds (Equations 16-17)."""

    interconnect: InterconnectSpec

    kind = "interconnect"

    def lower(self, soc: SoCSpec) -> LoweredModel:
        return lower_interconnect(soc, self.interconnect)


@dataclass(frozen=True)
class MultipathVariant(ModelVariant):
    """Multiple alternative bus paths with LP-optimal splitting."""

    interconnect: MultiPathInterconnect

    kind = "multipath"

    def lower(self, soc: SoCSpec) -> LoweredModel:
        return lower_multipath(soc, self.interconnect)


@dataclass(frozen=True)
class CoordinationVariant(ModelVariant):
    """Host-routed dispatch overhead as a bottleneck component."""

    coordination: CoordinationModel

    kind = "coordination"

    def lower(self, soc: SoCSpec) -> LoweredModel:
        return lower_coordination(soc, self.coordination)


@dataclass(frozen=True)
class PhasedVariant(ModelVariant):
    """Serialized sequence of concurrent phases (Section V-C coda)."""

    usecase: PhasedUsecase

    kind = "phases"
    requires_workload = False

    def lower(self, soc: SoCSpec) -> LoweredModel:
        return lower_phases(soc, self.usecase)


def evaluate_variant(
    soc: SoCSpec,
    workload: Workload | None,
    variant: ModelVariant | None = None,
) -> GablesResult | PhasedResult:
    """Evaluate any model variant through the lowered pipeline.

    The single scalar entry point: lowers ``variant`` (default
    :class:`BaseVariant`) for ``soc`` and executes it on ``workload``.
    Single-phase variants return a
    :class:`~repro.core.result.GablesResult`; phased variants ignore
    ``workload`` (pass ``None``) and return a
    :class:`~repro.core.extensions.phases.PhasedResult`.

    Tracing spans, call metrics, and evaluation provenance are emitted
    here — once for every variant — rather than per extension.
    """
    if variant is None:
        variant = BaseVariant()
    if _PROFILER.enabled:
        with _profile_scope("core.variant.lower"):
            lowered = _lowered_cached(variant, soc)
    else:
        lowered = _lowered_cached(variant, soc)
    _VARIANT_CALLS.inc()
    if not (_TRACER.enabled or _PROFILER.enabled):
        result = _evaluate_lowered(soc, workload, lowered)
    else:
        with _span(
            "core.evaluate_variant",
            soc=soc.name,
            variant=lowered.kind,
            workload=None if workload is None else workload.name,
        ) as sp, _profile_scope("core.evaluate_variant"):
            result = _evaluate_lowered(soc, workload, lowered)
            sp.set_attribute("bottleneck", result.bottleneck)
            sp.set_attribute("attainable", result.attainable)
    if (
        _provenance.provenance_enabled()
        and workload is not None
        and isinstance(result, GablesResult)
    ):
        _provenance.capture(soc, workload, result)
    return result


def _evaluate_lowered(
    soc: SoCSpec, workload: Workload | None, lowered: LoweredModel
):
    """Execute a lowered model on the scalar backend."""
    if lowered.workload_free:
        return _evaluate_phased(soc, lowered)
    if workload is None:
        raise WorkloadError(
            f"variant {lowered.kind!r} requires a workload"
        )
    return execute_lowered_phase(soc, workload, lowered.phases[0])


def _evaluate_phased(soc: SoCSpec, lowered: LoweredModel) -> PhasedResult:
    """Sequence per-phase base evaluations: concurrent within, serial
    across (``T_phase[k] = work_k / P_k``)."""
    results = []
    times = []
    for phase in lowered.phases:
        result = execute_lowered_phase(soc, phase.workload, phase)
        results.append((Phase(phase.work, phase.workload, phase.name), result))
        times.append(phase.work / result.attainable)
    total = math.fsum(times)
    if total <= 0:
        raise EvaluationError("phased usecase takes zero time")
    slowest = max(range(len(times)), key=lambda k: times[k])
    return PhasedResult(
        attainable=1.0 / total,
        phase_results=tuple(results),
        phase_times=tuple(times),
        bottleneck_phase=lowered.phases[slowest].name,
    )


#: Identity-keyed lowering memo: sweep loops evaluate the same frozen
#: (variant, SoC) pair thousands of times, and a stable LoweredModel
#: identity also lets the kernel compiler's own memo hit.  Entries
#: anchor the keyed objects, so ids cannot be recycled while cached.
_LOWER_MEMO_LIMIT = 32
_LOWER_MEMO: dict = {}


def _lowered_cached(variant: "ModelVariant", soc: SoCSpec) -> LoweredModel:
    """``variant.lower(soc)``, memoized on object identity."""
    key = (id(variant), id(soc))
    entry = _LOWER_MEMO.get(key)
    if entry is not None and entry[0] is variant and entry[1] is soc:
        return entry[2]
    lowered = variant.lower(soc)
    if len(_LOWER_MEMO) >= _LOWER_MEMO_LIMIT:
        _LOWER_MEMO.clear()
    _LOWER_MEMO[key] = (variant, soc, lowered)
    return lowered


@dataclass(frozen=True)
class PhasedBatchResult:
    """K phased evaluations as parallel arrays.

    The batch dual of :class:`~repro.core.extensions.phases.PhasedResult`:
    ``component_names`` holds the phase names (attribution is to a
    *phase*, not an IP), ``phase_times`` is the (K, P) per-phase time
    matrix, and ``attainables`` the (K,) overall bounds.
    """

    component_names: tuple
    phase_times: np.ndarray
    attainables: np.ndarray
    bottleneck_codes: np.ndarray

    def __len__(self) -> int:
        """Number of evaluated points K."""
        return self.attainables.shape[0]

    def bottleneck(self, index: int) -> str:
        """The binding phase's name at point ``index``."""
        return self.component_names[int(self.bottleneck_codes[index])]

    def bottlenecks(self) -> tuple:
        """Binding phase names for every point, in batch order."""
        names = self.component_names
        return tuple(names[code] for code in self.bottleneck_codes.tolist())


def evaluate_variant_batch(
    soc: SoCSpec,
    variant: ModelVariant | None,
    fractions=None,
    intensities=None,
    *,
    memory_bandwidth=None,
    ip_bandwidths=None,
    ip_peaks=None,
    validate: bool = True,
    on_error: str = "raise",
    engine: str = "auto",
):
    """Evaluate any model variant over K points on the batch backend.

    Single-phase variants take (K, N) ``fractions`` / ``intensities``
    grids plus the usual per-point hardware overrides and return a
    :class:`~repro.core.batch.BatchResult` whose extra columns carry
    the variant's bus/coordination components.

    Phased variants carry their own workload vectors, so ``fractions``
    and ``intensities`` must be ``None``; K is inferred from the
    hardware override arrays (K=1 with no overrides) and the return is
    a :class:`PhasedBatchResult`.  Phased batches support only
    ``on_error="raise"``.

    ``engine`` selects the execution tier (see
    :func:`repro.core.batch.evaluate_batch`); a phased variant's
    per-phase sub-batches share one coerced+validated hardware grid
    via :func:`repro.core.batch.prepare_batch`.
    """
    from .batch import evaluate_lowered_batch, prepare_batch

    if variant is None:
        variant = BaseVariant()
    lowered = _lowered_cached(variant, soc)
    if not lowered.workload_free:
        if fractions is None or intensities is None:
            raise WorkloadError(
                f"variant {lowered.kind!r} requires fraction and "
                "intensity grids"
            )
        return evaluate_lowered_batch(
            soc,
            lowered.phases[0],
            fractions,
            intensities,
            memory_bandwidth=memory_bandwidth,
            ip_bandwidths=ip_bandwidths,
            ip_peaks=ip_peaks,
            validate=validate,
            on_error=on_error,
            engine=engine,
        )

    if fractions is not None or intensities is not None:
        raise WorkloadError(
            "phased variants carry their own workloads; pass "
            "fractions=None and intensities=None"
        )
    if on_error != "raise":
        raise SpecError(
            "phased variants support only on_error='raise' batches"
        )
    k = _phased_batch_size(
        soc, memory_bandwidth, ip_bandwidths, ip_peaks
    )
    phase_columns = []
    prepared = None
    for phase in lowered.phases:
        # Broadcast (not tile) the per-phase workload vector: the
        # stride-0 columns fold to scalars in the compiled kernel, and
        # the hardware grids keep their one-time coercion+validation.
        grid_f = np.broadcast_to(
            np.asarray(phase.workload.fractions, dtype=float), (k, soc.n_ips)
        )
        grid_i = np.broadcast_to(
            np.asarray(phase.workload.intensities, dtype=float),
            (k, soc.n_ips),
        )
        if prepared is None:
            prepared = prepare_batch(
                soc,
                grid_f,
                grid_i,
                memory_bandwidth=memory_bandwidth,
                ip_bandwidths=ip_bandwidths,
                ip_peaks=ip_peaks,
                validate=validate,
                on_error="raise",
            )
        else:
            prepared = prepared.with_workload(
                grid_f, grid_i, validate=validate
            )
        sub = evaluate_lowered_batch(
            soc,
            LoweredPhase(name=phase.name, work=phase.work),
            prepared,
            None,
            validate=validate,
            on_error="raise",
            engine=engine,
        )
        phase_columns.append(phase.work / sub.attainables)
    phase_times = np.column_stack(phase_columns)
    totals = phase_times.sum(axis=1)
    if not np.all(totals > 0):
        raise EvaluationError("phased usecase takes zero time")
    return PhasedBatchResult(
        component_names=tuple(phase.name for phase in lowered.phases),
        phase_times=phase_times,
        attainables=1.0 / totals,
        bottleneck_codes=phase_times.argmax(axis=1),
    )


def _phased_batch_size(
    soc: SoCSpec, memory_bandwidth, ip_bandwidths, ip_peaks
) -> int:
    """Infer K for a phased batch from the hardware override shapes."""
    del soc
    sizes = set()
    if memory_bandwidth is not None:
        array = np.asarray(memory_bandwidth, dtype=float)
        if array.ndim == 1:
            sizes.add(array.shape[0])
    for override in (ip_bandwidths, ip_peaks):
        if override is not None:
            array = np.asarray(override, dtype=float)
            if array.ndim == 2:
                sizes.add(array.shape[0])
    if len(sizes) > 1:
        raise SpecError(
            f"phased batch overrides disagree on K: {sorted(sizes)!r}"
        )
    return sizes.pop() if sizes else 1


def variant_from_config(
    name: str, soc: SoCSpec, config: dict | None = None
) -> ModelVariant:
    """Build a variant from a CLI-style name plus optional config.

    Without ``config`` each variant gets an illustrative default sized
    from the SoC (a shared fabric at ``2 * Bpeak``, a 0.5-miss-ratio
    SRAM, ...), so ``--variant interconnect`` works out of the box;
    ``config`` (the parsed ``--variant-config`` JSON) overrides the
    structure.  Phased usecases have no sensible default and require
    config.
    """
    config = dict(config) if config else {}
    if name == "base":
        return BaseVariant()
    if name == "serialized":
        return SerializedVariant()
    if name == "memory-side":
        if "miss_ratios" in config:
            cache = MemorySideCache(config["miss_ratios"])
        else:
            cache = MemorySideCache.uniform(
                soc.n_ips, float(config.get("miss_ratio", 0.5))
            )
        return MemorySideVariant(cache)
    if name == "interconnect":
        if "buses" in config:
            buses = [
                Bus(entry["name"], float(entry["bandwidth"]))
                for entry in config["buses"]
            ]
            spec = InterconnectSpec(buses, config["usage"])
        else:
            spec = InterconnectSpec(
                (Bus("fabric", 2.0 * soc.memory_bandwidth),),
                ((0,),) * soc.n_ips,
            )
        return InterconnectVariant(spec)
    if name == "multipath":
        if "buses" in config:
            buses = [
                Bus(entry["name"], float(entry["bandwidth"]))
                for entry in config["buses"]
            ]
            multipath = MultiPathInterconnect(buses, config["routes"])
        else:
            multipath = MultiPathInterconnect(
                (
                    Bus("fabric0", soc.memory_bandwidth),
                    Bus("fabric1", soc.memory_bandwidth),
                ),
                (((0,), (1,)),) * soc.n_ips,
            )
        return MultipathVariant(multipath)
    if name == "coordination":
        if "dispatch_seconds" in config:
            model = CoordinationModel(
                config["dispatch_seconds"],
                float(config.get("ops_per_item", 1e6)),
            )
        else:
            model = CoordinationModel.uniform(
                soc.n_ips,
                float(config.get("dispatch", 10e-6)),
                float(config.get("ops_per_item", 1e6)),
            )
        return CoordinationVariant(model)
    if name == "phases":
        if "phases" not in config:
            raise SpecError(
                "the phases variant needs a --variant-config with a "
                "'phases' list of {work, fractions, intensities} entries"
            )
        phases = tuple(
            Phase(
                work=float(entry["work"]),
                workload=Workload(
                    fractions=tuple(
                        float(f) for f in entry["fractions"]
                    ),
                    intensities=tuple(
                        float(i) for i in entry["intensities"]
                    ),
                ),
                name=entry.get("name", f"phase{index}"),
            )
            for index, entry in enumerate(config["phases"])
        )
        return PhasedVariant(PhasedUsecase(phases))
    raise SpecError(
        f"unknown variant {name!r}; choose from "
        f"{', '.join(VARIANT_CHOICES)}"
    )
