"""Workload algebra: blending concurrent usecases.

Phones rarely run one usecase: music plays during navigation, a
download streams behind a game.  Two Gables workloads running on the
same SoC *simultaneously* combine into one workload whose traffic adds
— which means intensities combine *harmonically* per IP, weighted by
each constituent's share of the work at that IP:

    f_i   = alpha * f1_i + (1 - alpha) * f2_i
    bytes_i = alpha * f1_i / I1_i + (1 - alpha) * f2_i / I2_i
    I_i   = f_i / bytes_i

where ``alpha`` is usecase 1's share of the combined op stream.  The
blend preserves total traffic exactly, so evaluating the blend charges
the memory interface the same bytes-per-op as the two usecases would
jointly — the right accounting for shared-bandwidth interference.
"""

from __future__ import annotations

import math

from .._validation import require_fraction
from ..errors import WorkloadError
from .params import Workload


def blend_workloads(first: Workload, second: Workload, alpha: float,
                    name: str | None = None) -> Workload:
    """Combine two concurrent usecases into one Gables workload.

    Parameters
    ----------
    first, second:
        Workloads over the same IP set.
    alpha:
        ``first``'s share of the combined operation stream, in [0, 1].
    """
    alpha = require_fraction(alpha, "alpha")
    if first.n_ips != second.n_ips:
        raise WorkloadError(
            f"cannot blend workloads over {first.n_ips} and "
            f"{second.n_ips} IPs"
        )
    if alpha == 0:
        return second
    if alpha == 1:
        return first
    fractions = []
    intensities = []
    for index in range(first.n_ips):
        f1, f2 = first.fractions[index], second.fractions[index]
        combined = alpha * f1 + (1 - alpha) * f2
        fractions.append(combined)
        bytes_per_op = 0.0
        if f1 > 0 and not math.isinf(first.intensities[index]):
            bytes_per_op += alpha * f1 / first.intensities[index]
        if f2 > 0 and not math.isinf(second.intensities[index]):
            bytes_per_op += (1 - alpha) * f2 / second.intensities[index]
        if combined == 0:
            intensities.append(1.0)  # idle IP; value unused
        elif bytes_per_op == 0:
            intensities.append(math.inf)
        else:
            intensities.append(combined / bytes_per_op)
    return Workload(
        fractions=tuple(fractions),
        intensities=tuple(intensities),
        name=name or f"{first.name}+{second.name}",
    )


def interference_slowdown(soc, foreground: Workload,
                          background: Workload, alpha: float) -> float:
    """Foreground throughput loss from a concurrent background usecase.

    Evaluates the blend and attributes the foreground its ``alpha``
    share of the combined attainable rate; the return value is that
    share relative to the foreground running alone (1.0 = no
    interference, 0.5 = halved).
    """
    from .gables import evaluate

    alpha = require_fraction(alpha, "alpha")
    if alpha == 0:
        raise WorkloadError("foreground share alpha must be positive")
    alone = evaluate(soc, foreground).attainable
    together = evaluate(
        soc, blend_workloads(foreground, background, alpha)
    ).attainable
    return (alpha * together) / alone
