"""Result objects returned by Gables model evaluation.

Everything is per *unit of work*: a usecase is one normalized op, so
component times are seconds-per-op and the attainable performance is
their reciprocal max, in ops/s.  :meth:`GablesResult.runtime` rescales
to a concrete operation count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import EvaluationError
from ..obs.profile import get_profiler as _get_profiler
from ..obs.profile import profile_scope as _profile_scope
from ..units import format_intensity, format_ops

#: Singleton bound once at import: the hot-path disabled check is
#: one attribute load, no function call.
_PROFILER = _get_profiler()

#: Relative tolerance when deciding whether two component times "tie"
#: for the bottleneck (used to report balanced designs such as Fig. 6d).
BINDING_REL_TOL = 1e-9

#: Component label used for the shared DRAM interface term.
MEMORY = "memory"


@dataclass(frozen=True)
class IPTerm:
    """Evaluated quantities for one IP (Equations 9 / 1-2).

    Attributes
    ----------
    index, name:
        Which IP this term describes.
    fraction, intensity:
        The workload inputs ``fi`` and ``Ii`` echoed back.
    compute_time:
        ``Ci = fi / (Ai * Ppeak)`` seconds per unit work.
    data_bytes:
        ``Di = fi / Ii`` bytes moved per unit work (0 when ``Ii = inf``).
    transfer_time:
        ``Di / Bi`` seconds per unit work.
    time:
        ``T_IP[i] = max(transfer_time, compute_time)``.
    perf_bound:
        The dual ``1 / T_IP[i]`` (Equation 12), or ``None`` when
        ``fi == 0`` (the paper omits the term to avoid dividing by 0).
    limiter:
        ``"compute"`` when ``Ci`` binds, ``"bandwidth"`` when the IP's
        link binds, ``"idle"`` when the IP has no work.
    """

    index: int
    name: str
    fraction: float
    intensity: float
    compute_time: float
    data_bytes: float
    transfer_time: float
    time: float
    perf_bound: float | None
    limiter: str

    @property
    def active(self) -> bool:
        """True when this IP was assigned work."""
        return self.fraction > 0


@dataclass(frozen=True)
class GablesResult:
    """Full evaluation of a usecase on an SoC (Equations 9-14).

    Attributes
    ----------
    ip_terms:
        One :class:`IPTerm` per IP, in index order.
    memory_time:
        ``Tmemory = sum(Di) / Bpeak`` (Equation 10) — with the
        memory-side extension, ``sum(D'i) / Bpeak`` (Equation 15).
    memory_perf_bound:
        The dual ``1 / Tmemory = Bpeak * Iavg`` (Equation 13); ``inf``
        when the usecase moves no off-chip data.
    average_intensity:
        ``Iavg``, the work-weighted harmonic mean of intensities.
    attainable:
        ``P_attainable`` in ops/s (Equation 11 / 14).
    bottleneck:
        Name of the binding component: an IP name or ``"memory"``
        (or a bus name under the interconnect extension).
    binding_components:
        All components whose time ties the maximum within
        :data:`BINDING_REL_TOL` — more than one means a balanced design.
    extra_times:
        Extension-specific additional terms (e.g. per-bus times under
        the interconnect extension), as a name -> seconds mapping.
    """

    ip_terms: tuple
    memory_time: float
    memory_perf_bound: float
    average_intensity: float
    attainable: float
    bottleneck: str
    binding_components: tuple
    extra_times: dict = field(default_factory=dict)

    def runtime(self, total_ops: float = 1.0) -> float:
        """Seconds to complete ``total_ops`` operations of this usecase."""
        if total_ops < 0:
            raise EvaluationError(f"total_ops must be >= 0, got {total_ops!r}")
        if total_ops == 0:
            return 0.0
        return total_ops / self.attainable

    def component_times(self) -> dict:
        """All component times (seconds per unit work), keyed by name."""
        times = {term.name: term.time for term in self.ip_terms}
        times[MEMORY] = self.memory_time
        times.update(self.extra_times)
        return times

    def utilization(self) -> dict:
        """Each component's time as a fraction of the binding time.

        1.0 marks the bottleneck; components far below 1.0 are slack
        capacity — candidates for down-sizing in an early-stage design.
        """
        times = self.component_times()
        binding = max(times.values())
        if binding <= 0:
            raise EvaluationError("degenerate result: no component takes time")
        return {name: t / binding for name, t in times.items()}

    def is_balanced(self, rel_tol: float = 1e-6) -> bool:
        """True when every *active* component binds simultaneously.

        This is the paper's Fig. 6d end state: all three rooflines equal
        at the operating intensity.  Idle IPs (``fi == 0``) and a moot
        memory term (no data moved) are excluded.
        """
        binding = max(self.component_times().values())
        active = [term.time for term in self.ip_terms if term.active]
        if self.memory_time > 0:
            active.append(self.memory_time)
        active.extend(self.extra_times.values())
        return all(math.isclose(t, binding, rel_tol=rel_tol) for t in active)

    def summary(self) -> str:
        """A short human-readable report of the evaluation."""
        lines = [
            f"attainable: {format_ops(self.attainable)}"
            f"  (bottleneck: {self.bottleneck})",
            f"Iavg: {format_intensity(self.average_intensity)}"
            f"  memory bound: "
            + (
                "unbounded (no off-chip data)"
                if math.isinf(self.memory_perf_bound)
                else format_ops(self.memory_perf_bound)
            ),
        ]
        for term in self.ip_terms:
            if not term.active:
                lines.append(f"  {term.name}: idle (f=0)")
                continue
            bound = format_ops(term.perf_bound)
            lines.append(
                f"  {term.name}: f={term.fraction:.4g} I={term.intensity:.4g}"
                f" bound={bound} ({term.limiter}-limited)"
            )
        for name, t in self.extra_times.items():
            bound = format_ops(1.0 / t) if t > 0 else "unbounded"
            lines.append(f"  {name}: bound={bound}")
        return "\n".join(lines)


def compose_result(
    terms: tuple,
    *,
    memory_time: float,
    memory_perf_bound: float,
    average_intensity: float,
    extra_times: dict | None = None,
    combine: str = "max",
    include_memory: bool = True,
) -> GablesResult:
    """The single shared :class:`GablesResult` construction path.

    Every evaluator — the base model, each lowered variant, and the
    batch materializer — funnels through here so the bottleneck rule,
    the attainable reciprocal, and the result conventions are defined
    exactly once.

    Parameters
    ----------
    terms:
        Per-IP :class:`IPTerm` records in index order (their ``time``
        fields already reflect any variant folding).
    memory_time, memory_perf_bound, average_intensity:
        The shared-memory quantities (Equations 10 and 13), already
        filtered/derived by the caller for extended variants.
    extra_times:
        Additional shared-resource components (bus times, the
        coordination term), in presentation order.  They join the
        bottleneck ``max()`` after the IP and memory terms.
    combine:
        ``"max"`` (concurrent, Equation 11) or ``"sum"`` (serialized,
        Equation 19: the usecase time is the sum of the per-IP times
        and only IP terms compete for the bottleneck label).
    include_memory:
        Whether the memory term participates in the bottleneck
        ``max()`` (False for the serialized model, which folds DRAM
        time into each per-IP term).
    """
    if _PROFILER.enabled:
        with _profile_scope("core.compose_result"):
            return _compose_result_impl(
                terms,
                memory_time=memory_time,
                memory_perf_bound=memory_perf_bound,
                average_intensity=average_intensity,
                extra_times=extra_times,
                combine=combine,
                include_memory=include_memory,
            )
    return _compose_result_impl(
        terms,
        memory_time=memory_time,
        memory_perf_bound=memory_perf_bound,
        average_intensity=average_intensity,
        extra_times=extra_times,
        combine=combine,
        include_memory=include_memory,
    )


def _compose_result_impl(
    terms: tuple,
    *,
    memory_time: float,
    memory_perf_bound: float,
    average_intensity: float,
    extra_times: dict | None = None,
    combine: str = "max",
    include_memory: bool = True,
) -> GablesResult:
    extra_times = dict(extra_times) if extra_times else {}
    if combine == "sum":
        total_time = math.fsum(term.time for term in terms)
        if total_time <= 0:
            raise EvaluationError("serialized usecase takes zero time")
        times = {term.name: term.time for term in terms}
        primary, binding = pick_bottleneck(times)
        attainable = 1.0 / total_time
    elif combine == "max":
        times = {term.name: term.time for term in terms}
        if include_memory:
            times[MEMORY] = memory_time
        times.update(extra_times)
        primary, binding = pick_bottleneck(times)
        attainable = 1.0 / max(times.values())
    else:
        raise EvaluationError(f"unknown combine rule {combine!r}")
    return GablesResult(
        ip_terms=tuple(terms),
        memory_time=memory_time,
        memory_perf_bound=memory_perf_bound,
        average_intensity=average_intensity,
        attainable=attainable,
        bottleneck=primary,
        binding_components=binding,
        extra_times=extra_times,
    )


def pick_bottleneck(times: dict) -> tuple:
    """Binding component(s) from a name -> time mapping.

    Returns ``(primary, all_binding)`` where ``primary`` is the first
    name (in insertion order) achieving the maximum time and
    ``all_binding`` every name within :data:`BINDING_REL_TOL` of it.
    """
    if not times:
        raise EvaluationError("no component times to compare")
    binding_time = max(times.values())
    if binding_time <= 0:
        raise EvaluationError("degenerate usecase: every component takes zero time")
    binding = tuple(
        name
        for name, t in times.items()
        if math.isclose(t, binding_time, rel_tol=BINDING_REL_TOL)
    )
    return binding[0], binding
