"""Roofline curve geometry shared by the models and the plotting layer.

A roofline is a piecewise function of operational intensity ``I``:

    P(I) = min(slope * I, roof) / scale

- ``slope`` is a bandwidth (bytes/s), giving the slanted left segment;
- ``roof`` is a compute bound (ops/s), giving the flat right segment —
  ``math.inf`` for a memory/bus roofline which is slanted-only;
- ``scale`` divides the whole curve; Gables' *scaled rooflines*
  (Equations 5-6 / 12) divide an IP's roofline by its fraction of work.

The ridge point ``I* = roof / slope`` is where the two segments meet:
below it the curve is bandwidth-bound, above it compute-bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import require_positive
from ..errors import SpecError


@dataclass(frozen=True)
class RooflineCurve:
    """One roofline on a Gables plot (an IP roofline or the memory line).

    Parameters
    ----------
    name:
        Legend label, e.g. ``"IP[1] / f"`` or ``"memory"``.
    slope:
        Bandwidth term in ops-per-(ops/byte)-per-second — numerically a
        bytes/s bandwidth, since ``bytes/s * ops/byte = ops/s``.
    roof:
        Flat compute bound in ops/s, or ``math.inf`` for slanted-only.
    scale:
        Divisor applied to the whole curve (Gables work fraction).
    """

    name: str
    slope: float
    roof: float = math.inf
    scale: float = 1.0

    def __post_init__(self) -> None:
        require_positive(self.slope, f"curve {self.name!r} slope")
        require_positive(self.roof, f"curve {self.name!r} roof")
        require_positive(self.scale, f"curve {self.name!r} scale")
        if math.isinf(self.scale):
            raise SpecError(f"curve {self.name!r} scale must be finite")

    def __call__(self, intensity: float) -> float:
        """Attainable performance at operational intensity ``intensity``."""
        if intensity <= 0:
            raise SpecError(f"intensity must be positive, got {intensity!r}")
        if math.isinf(intensity):
            bound = self.roof
        else:
            bound = min(self.slope * intensity, self.roof)
        return bound / self.scale

    @property
    def ridge_point(self) -> float:
        """Intensity where bandwidth and compute bounds meet (ops/byte).

        ``inf`` for a slanted-only curve (it never flattens).
        """
        if math.isinf(self.roof):
            return math.inf
        if math.isinf(self.slope):
            return 0.0
        return self.roof / self.slope

    @property
    def peak(self) -> float:
        """The flat-roof height after scaling (``inf`` if slanted-only)."""
        return self.roof / self.scale

    def is_memory_bound_at(self, intensity: float) -> bool:
        """True when the slanted segment binds at ``intensity``."""
        return intensity < self.ridge_point

    def crossover_with(self, other: "RooflineCurve") -> float | None:
        """Intensity where this curve and ``other`` intersect, if any.

        Returns the unique positive intensity where the two piecewise
        curves cross, or ``None`` when one dominates everywhere or they
        coincide on a segment.  Useful for annotating "who wins where"
        on multi-roofline plots.
        """
        candidates = []
        # Slant vs slant: a*I = b*I only crosses at 0 unless equal.
        # Slant of self vs roof of other.
        if not math.isinf(other.roof) and not math.isinf(self.slope):
            i = (other.roof / other.scale) / (self.slope / self.scale)
            candidates.append(i)
        if not math.isinf(self.roof) and not math.isinf(other.slope):
            i = (self.roof / self.scale) / (other.slope / other.scale)
            candidates.append(i)
        for i in sorted(set(candidates)):
            if i <= 0 or not math.isfinite(i):
                continue
            below = self(i * (1 - 1e-9)) - other(i * (1 - 1e-9))
            above = self(i * (1 + 1e-9)) - other(i * (1 + 1e-9))
            if below == 0 and above == 0:
                continue
            if (below <= 0 <= above) or (above <= 0 <= below):
                return i
        return None


def min_envelope(curves, intensity: float) -> float:
    """Lower envelope of several curves at one intensity.

    This is Equation 8/14's ``min(...)`` when every curve is queried at
    the *same* intensity; Gables proper queries each scaled roofline at
    its own IP intensity (see :mod:`repro.core.gables`).
    """
    if not curves:
        raise SpecError("min_envelope needs at least one curve")
    return min(curve(intensity) for curve in curves)
