"""The two-IP Gables primer (paper Section III-B and Figure 6).

A thin, heavily-documented convenience layer over the N-IP model for
the pedagogical two-IP SoC: IP[0] is the CPU complex (``Ppeak``, link
``B0``) and IP[1] an accelerator (``A * Ppeak``, link ``B1``).  A
usecase assigns ``1 - f`` work at intensity ``I0`` to the CPU and ``f``
at ``I1`` to the accelerator.

The module also ships the exact parameter sets of the paper's Figure 6
walkthrough (reproduced numerically in the paper's appendix), which the
benchmark harness asserts against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import GIGA
from .gables import evaluate
from .params import SoCSpec, Workload
from .result import GablesResult


@dataclass(frozen=True)
class TwoIPScenario:
    """One fully-specified two-IP design point (hardware + usecase)."""

    name: str
    peak_perf: float  # Ppeak, ops/s
    memory_bandwidth: float  # Bpeak, bytes/s
    acceleration: float  # A1
    cpu_bandwidth: float  # B0, bytes/s
    acc_bandwidth: float  # B1, bytes/s
    i0: float  # ops/byte at IP[0]
    i1: float  # ops/byte at IP[1]
    f: float  # fraction of work at IP[1]

    def soc(self) -> SoCSpec:
        """The hardware half of the scenario."""
        return SoCSpec.two_ip(
            peak_perf=self.peak_perf,
            memory_bandwidth=self.memory_bandwidth,
            acceleration=self.acceleration,
            cpu_bandwidth=self.cpu_bandwidth,
            acc_bandwidth=self.acc_bandwidth,
            cpu_name="CPU",
            acc_name="GPU",
            name=self.name,
        )

    def workload(self) -> Workload:
        """The software half of the scenario."""
        return Workload.two_ip(f=self.f, i0=self.i0, i1=self.i1, name=self.name)

    def evaluate(self) -> GablesResult:
        """Run the base Gables model on this scenario."""
        return evaluate(self.soc(), self.workload())


def evaluate_two_ip(
    peak_perf: float,
    memory_bandwidth: float,
    acceleration: float,
    cpu_bandwidth: float,
    acc_bandwidth: float,
    i0: float,
    i1: float,
    f: float,
) -> GablesResult:
    """One-call two-IP evaluation with the paper's parameter names.

    Mirrors the appendix formulae::

        1/T_IP[0]   = min(B0 * I0, Ppeak) / (1 - f)        (f != 1)
        1/T_IP[1]   = min(B1 * I1, A1 * Ppeak) / f          (f != 0)
        1/T_memory  = Bpeak * Iavg,
                      Iavg = 1 / ((1 - f)/I0 + f/I1)
        P_attainable = min(of the above)
    """
    scenario = TwoIPScenario(
        name="two-ip",
        peak_perf=peak_perf,
        memory_bandwidth=memory_bandwidth,
        acceleration=acceleration,
        cpu_bandwidth=cpu_bandwidth,
        acc_bandwidth=acc_bandwidth,
        i0=i0,
        i1=i1,
        f=f,
    )
    return scenario.evaluate()


def _figure6(name: str, bpeak_gb: float, i1: float, f: float) -> TwoIPScenario:
    """Shared hardware of the Fig. 6 walkthrough with the stated deltas."""
    return TwoIPScenario(
        name=name,
        peak_perf=40 * GIGA,
        memory_bandwidth=bpeak_gb * GIGA,
        acceleration=5.0,
        cpu_bandwidth=6 * GIGA,
        acc_bandwidth=15 * GIGA,
        i0=8.0,
        i1=i1,
        f=f,
    )


#: Figure 6a: all work on the CPU; attainable 40 Gops/s (CPU-bound).
FIGURE_6A = _figure6("fig6a", bpeak_gb=10, i1=0.1, f=0.0)

#: Figure 6b: offload f=0.75 to the low-reuse GPU; attainable collapses
#: to ~1.33 Gops/s (memory-bound).
FIGURE_6B = _figure6("fig6b", bpeak_gb=10, i1=0.1, f=0.75)

#: Figure 6c: raise Bpeak to 30 GB/s; only 2 Gops/s (GPU-link-bound).
FIGURE_6C = _figure6("fig6c", bpeak_gb=30, i1=0.1, f=0.75)

#: Figure 6d: raise GPU reuse to I1=8 and trim Bpeak to 20 GB/s;
#: 160 Gops/s with all three rooflines equal — a balanced design.
FIGURE_6D = _figure6("fig6d", bpeak_gb=20, i1=8.0, f=0.75)

#: The walkthrough in paper order.
FIGURE_6_SEQUENCE = (FIGURE_6A, FIGURE_6B, FIGURE_6C, FIGURE_6D)

#: Attainable performance the paper's appendix reports for each step
#: (Gops/s, quoted at the appendix's printed precision).
FIGURE_6_EXPECTED_GOPS = {
    "fig6a": 40.0,
    "fig6b": 1.3278,
    "fig6c": 2.0,
    "fig6d": 160.0,
}
