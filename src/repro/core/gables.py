"""The base Gables model: N concurrent IPs sharing off-chip bandwidth.

This module implements Section III of the paper in both of its dual
formulations and checks, by construction, that they agree:

*Time domain* (Equations 9-11).  Per unit of usecase work, each IP
needs compute time ``Ci = fi / (Ai * Ppeak)`` and moves ``Di = fi / Ii``
bytes through its link, taking ``Di / Bi``; the IP's time is the max of
the two because compute and transfer are assumed to overlap.  The
shared DRAM interface takes ``sum(Di) / Bpeak``.  All components run
concurrently, so the usecase takes the *maximum* component time and

    P_attainable = 1 / max(T_IP[0], ..., T_IP[N-1], T_memory).

*Performance domain* (Equations 12-14).  Each active IP contributes a
roofline scaled by its work fraction, ``min(Bi * Ii, Ai * Ppeak) / fi``,
the memory interface contributes the slanted-only ``Bpeak * Iavg``, and
the attainable performance is the minimum of these bounds.

The two formulations are algebraically identical; we compute via the
time domain (which handles ``fi = 0`` without special cases) and expose
the performance-domain dual for visualization and cross-checking.
"""

from __future__ import annotations

import math

from .._validation import require_same_length
from ..errors import WorkloadError
from ..obs import provenance as _provenance
from ..obs.metrics import counter as _counter
from ..obs.profile import get_profiler as _get_profiler
from ..obs.profile import profile_scope as _profile_scope
from ..obs.trace import get_tracer as _get_tracer
from ..obs.trace import span as _span
from .curves import RooflineCurve
from .params import SoCSpec, Workload
from .result import MEMORY, GablesResult, IPTerm, compose_result

#: Singletons bound once at import: the hot-path disabled check is
#: two attribute loads, no function calls (the overhead benchmarks
#: hold instrumented entry points within a few percent of bare).
_TRACER = _get_tracer()
_PROFILER = _get_profiler()

#: Module-level instrument handle: resolved once so the hot path pays a
#: single attribute add per evaluation, not a registry lookup.
_EVAL_CALLS = _counter("core.evaluate.calls")


def _check_shapes(soc: SoCSpec, workload: Workload) -> None:
    require_same_length(
        soc.ips, workload.fractions, "soc.ips", "workload.fractions", WorkloadError
    )


def ip_terms(soc: SoCSpec, workload: Workload) -> tuple:
    """Per-IP evaluated terms (Equation 9) for ``workload`` on ``soc``."""
    _check_shapes(soc, workload)
    terms = []
    for index, ip in enumerate(soc.ips):
        fraction = workload.fractions[index]
        intensity = workload.intensities[index]
        compute_time = fraction / soc.ip_peak(index)
        data_bytes = 0.0 if math.isinf(intensity) else fraction / intensity
        transfer_time = data_bytes / ip.bandwidth if data_bytes else 0.0
        time = max(transfer_time, compute_time)
        if fraction == 0:
            limiter = "idle"
            perf_bound = None
        else:
            limiter = "bandwidth" if transfer_time > compute_time else "compute"
            # A denormal fraction can underflow the time to exactly 0;
            # the bound is then effectively unconstrained.
            perf_bound = math.inf if time == 0 else 1.0 / time
        terms.append(
            IPTerm(
                index=index,
                name=ip.name,
                fraction=fraction,
                intensity=intensity,
                compute_time=compute_time,
                data_bytes=data_bytes,
                transfer_time=transfer_time,
                time=time,
                perf_bound=perf_bound,
                limiter=limiter,
            )
        )
    return tuple(terms)


def memory_time(soc: SoCSpec, terms) -> float:
    """``T_memory = sum(Di) / Bpeak`` (Equation 10)."""
    total_bytes = math.fsum(term.data_bytes for term in terms)
    return total_bytes / soc.memory_bandwidth


def evaluate(soc: SoCSpec, workload: Workload) -> GablesResult:
    """Evaluate the base Gables model (Equations 9-11).

    Returns a :class:`~repro.core.result.GablesResult` with per-IP
    terms, the memory term, the attainable performance upper bound, and
    bottleneck attribution.

    Example (paper Fig. 6b)::

        >>> from repro.core import SoCSpec, Workload, evaluate
        >>> soc = SoCSpec.two_ip(40e9, 10e9, acceleration=5,
        ...                      cpu_bandwidth=6e9, acc_bandwidth=15e9)
        >>> result = evaluate(soc, Workload.two_ip(f=0.75, i0=8, i1=0.1))
        >>> round(result.attainable / 1e9, 2)
        1.33
        >>> result.bottleneck
        'memory'
    """
    _EVAL_CALLS.inc()
    if not (_TRACER.enabled or _PROFILER.enabled):
        result = _evaluate_impl(soc, workload)
    else:
        with _span(
            "core.evaluate", soc=soc.name, workload=workload.name
        ) as sp, _profile_scope("core.evaluate"):
            result = _evaluate_impl(soc, workload)
            sp.set_attribute("bottleneck", result.bottleneck)
            sp.set_attribute("attainable", result.attainable)
    if _provenance.provenance_enabled():
        _provenance.capture(soc, workload, result)
    return result


def _evaluate_impl(soc: SoCSpec, workload: Workload) -> GablesResult:
    terms = ip_terms(soc, workload)
    t_memory = memory_time(soc, terms)
    iavg = workload.average_intensity()
    memory_perf_bound = (
        math.inf if t_memory == 0 else soc.memory_bandwidth * iavg
    )
    return compose_result(
        terms,
        memory_time=t_memory,
        memory_perf_bound=memory_perf_bound,
        average_intensity=iavg,
    )


def attainable_performance(soc: SoCSpec, workload: Workload) -> float:
    """Shortcut for ``evaluate(soc, workload).attainable``."""
    return evaluate(soc, workload).attainable


def attainable_performance_dual(soc: SoCSpec, workload: Workload) -> float:
    """Equation 14: the performance-domain dual of :func:`evaluate`.

    Computes ``min`` over each active IP's scaled roofline bound
    ``min(Bi * Ii, Ai * Ppeak) / fi`` and the memory bound
    ``Bpeak * Iavg``, omitting IP terms with ``fi = 0`` exactly as the
    paper prescribes.  Provided as an independent implementation used by
    the test suite to cross-check the time-domain evaluation.
    """
    _check_shapes(soc, workload)
    bounds = []
    for index, ip in enumerate(soc.ips):
        fraction = workload.fractions[index]
        if fraction == 0:
            continue
        intensity = workload.intensities[index]
        link_bound = math.inf if math.isinf(intensity) else ip.bandwidth * intensity
        bounds.append(min(link_bound, soc.ip_peak(index)) / fraction)
    iavg = workload.average_intensity()
    if not math.isinf(iavg):
        bounds.append(soc.memory_bandwidth * iavg)
    if not bounds:
        # Every fraction is zero and no data moves: the dual has no
        # bounding term.  The time-domain path rejects this usecase as
        # degenerate too, so raise rather than crash on an empty min().
        raise WorkloadError(
            "usecase assigns no work to any IP and moves no data; "
            "the performance-domain dual is undefined"
        )
    return min(bounds)


def scaled_roofline_curves(soc: SoCSpec, workload: Workload) -> tuple:
    """The curves of a Gables multi-roofline plot (Section III-C).

    One scaled roofline per *active* IP (slope ``Bi``, roof
    ``Ai * Ppeak``, scale ``fi``) plus the slanted-only memory roofline
    (slope ``Bpeak``).  Idle IPs are omitted, matching the paper's
    plots where an unused IP "is not shown since it is assigned no
    work".
    """
    _check_shapes(soc, workload)
    curves = []
    for index, ip in enumerate(soc.ips):
        fraction = workload.fractions[index]
        if fraction == 0:
            continue
        curves.append(
            RooflineCurve(
                name=ip.name,
                slope=ip.bandwidth,
                roof=soc.ip_peak(index),
                scale=fraction,
            )
        )
    curves.append(RooflineCurve(name=MEMORY, slope=soc.memory_bandwidth))
    return tuple(curves)


def drop_lines(soc: SoCSpec, workload: Workload) -> tuple:
    """The operating points marked on a Gables plot.

    Each active IP's scaled roofline is read at its own intensity
    ``Ii`` and the memory roofline at ``Iavg``; the lowest selected
    point is the attainable performance (Equation 14).  Returns
    ``(name, intensity, performance)`` triples in plot order.
    """
    _check_shapes(soc, workload)
    points = []
    for curve in scaled_roofline_curves(soc, workload):
        if curve.name == MEMORY:
            intensity = workload.average_intensity()
            if math.isinf(intensity):
                continue
        else:
            intensity = workload.intensities[soc.ip_index(curve.name)]
        points.append((curve.name, intensity, curve(intensity)))
    return tuple(points)
