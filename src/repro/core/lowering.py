"""The lowered evaluation pipeline: one IR, one engine, two backends.

Every model variant — base Gables (Equations 9-11), serialized work,
phased usecases, host coordination, fixed interconnects, multi-path
interconnects, and the memory-side SRAM — is *a variation on the same
bound computation*: per-IP time terms, a shared-memory term, optional
shared-resource constraints, combined by a ``max()`` (concurrent) or a
``sum()`` (serialized).  This module writes that observation down as a
small intermediate representation and executes it:

- :class:`LoweredPhase` — one concurrent phase: which workload vector
  it uses, how the memory term is formed (full traffic, per-IP
  filtered traffic, or folded into the IP terms), which extra
  shared-resource constraints join the bottleneck ``max()``, and the
  combine rule.
- :class:`BusConstraint` / :class:`RouteSolver` — shared-resource
  constraints: a fixed linear bus bound (Equation 16) or an optimizer
  that assigns traffic to buses per evaluation point (the multi-path
  LP).
- :class:`LoweredModel` — an ordered sequence of phases (a single
  phase for every variant except phased usecases).

Variants *lower* onto this IR once per (variant, SoC) pair — the IR is
hardware-symbolic in ``Bpeak``/``Bi``/``Ai`` (only bus bandwidths are
concrete), so one lowering serves a whole hardware sweep.  Two
interchangeable backends execute it:

- the scalar engine here (:func:`execute_lowered_phase`), which
  replays the exact IEEE-754 operation order of the legacy
  ``evaluate_with_*`` entry points (the equivalence suite pins bitwise
  agreement);
- the vectorized backend in :mod:`repro.core.batch`
  (``evaluate_lowered_batch``), which evaluates a lowered phase over
  K x N parameter grids with the existing per-point hardware
  overrides.

Construction of the final :class:`~repro.core.result.GablesResult`
goes through the single shared path
:func:`repro.core.result.compose_result`.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, replace

from ..errors import SpecError
from ..obs.profile import get_profiler as _get_profiler
from ..obs.profile import profile_scope as _profile_scope
from .gables import ip_terms, memory_time
from .params import SoCSpec, Workload
from .result import MEMORY, GablesResult, compose_result

#: Singleton bound once at import: the hot-path disabled check is
#: one attribute load, no function call.
_PROFILER = _get_profiler()

#: Component label for the host-coordination term (re-exported by the
#: coordination extension for backward compatibility).
COORDINATION = "coordination"


@dataclass(frozen=True)
class BusConstraint:
    """A fixed linear shared-resource bound (Equation 16).

    The constraint's time is ``sum_i(w_i * D_i) / bandwidth`` where
    ``w_i`` is this bus's per-IP traffic weight (1.0 when IP[i]'s
    memory path crosses the bus, 0.0 when it bypasses it; fractional
    weights model partial routing).
    """

    name: str
    bandwidth: float
    traffic_weights: tuple

    def time(self, data_bytes) -> float:
        """Seconds this bus needs for the given per-IP byte volumes.

        Zero-weight terms are skipped (not added as ``0.0``) so the
        ``fsum`` reduction is bit-identical to the legacy subset sum.
        """
        carried = math.fsum(
            weight * bytes_moved
            for weight, bytes_moved in zip(self.traffic_weights, data_bytes)
            if weight
        )
        return carried / self.bandwidth


class RouteSolver:
    """A dynamic shared-resource constraint set: per-point bus times.

    Wraps an optimizer (the multi-path LP) that maps the per-IP byte
    volumes of one evaluation point to a ``bus name -> seconds``
    mapping.  ``bus_names`` fixes the component order for the batch
    backend's extra columns.
    """

    def __init__(self, bus_names: tuple,
                 solve: Callable[[list], dict]) -> None:
        self.bus_names = tuple(bus_names)
        self._solve = solve

    def __call__(self, data_bytes) -> dict:
        return self._solve(data_bytes)


@dataclass(frozen=True)
class LoweredPhase:
    """One concurrent phase of a lowered model.

    Attributes
    ----------
    name:
        Phase label (only meaningful for multi-phase models).
    work:
        This phase's share of the total usecase work.
    workload:
        The phase's own workload vector, or ``None`` to use the
        workload supplied at evaluation time (single-phase variants).
    combine:
        ``"max"`` for concurrent IPs (Equation 11), ``"sum"`` for
        serialized execution (Equation 19).
    include_memory:
        Whether the shared ``T_memory`` term joins the bottleneck
        comparison (False when it is folded per IP).
    fold_memory_per_ip:
        Serialized regime: each IP's time gains a ``Di / Bpeak`` term
        (Equation 18) instead of a shared memory component.
    memory_weights:
        Per-IP DRAM traffic filter ``mi`` (the memory-side extension,
        Equation 15), or ``None`` for unfiltered traffic.  When set,
        the reported average intensity is the *effective* (post-filter)
        intensity.
    buses:
        Fixed :class:`BusConstraint` terms (Equations 16-17).
    route_solver:
        A :class:`RouteSolver` for per-point optimized bus times, or
        ``None``.
    dispatch_seconds, ops_per_item:
        Host-coordination inputs: per-IP dispatch cost per item and
        the usecase's item granularity.  ``None`` disables the term.
    """

    name: str = "phase"
    work: float = 1.0
    workload: Workload | None = None
    combine: str = "max"
    include_memory: bool = True
    fold_memory_per_ip: bool = False
    memory_weights: tuple | None = None
    buses: tuple = ()
    route_solver: RouteSolver | None = None
    dispatch_seconds: tuple | None = None
    ops_per_item: float | None = None


@dataclass(frozen=True)
class LoweredModel:
    """A variant lowered to executable form: ordered concurrent phases."""

    kind: str
    phases: tuple

    @property
    def single_phase(self) -> bool:
        """True when the model is one concurrent phase (no sequencing)."""
        return len(self.phases) == 1

    @property
    def workload_free(self) -> bool:
        """True when every phase carries its own workload vector."""
        return all(phase.workload is not None for phase in self.phases)


def _folded_terms(soc: SoCSpec, terms: tuple) -> tuple:
    """Equation 18: fold ``Di / Bpeak`` into each per-IP time."""
    folded = []
    for term in terms:
        dram_time = term.data_bytes / soc.memory_bandwidth
        time = max(dram_time, term.transfer_time, term.compute_time)
        if term.fraction == 0:
            limiter = "idle"
            perf_bound = None
        elif time == dram_time and dram_time > max(
            term.transfer_time, term.compute_time
        ):
            limiter = "memory"
            perf_bound = math.inf if time == 0 else 1.0 / time
        else:
            limiter = term.limiter
            perf_bound = math.inf if time == 0 else 1.0 / time
        folded.append(
            replace(term, time=time, perf_bound=perf_bound, limiter=limiter)
        )
    return tuple(folded)


def execute_lowered_phase(
    soc: SoCSpec, workload: Workload, phase: LoweredPhase
) -> GablesResult:
    """The scalar backend: evaluate one lowered phase on one point.

    Replays the legacy evaluators' exact operation order (same
    ``fsum`` reductions over the same operands, same dict insertion
    order into the bottleneck comparison), so lowered variants are
    bitwise identical to the ``evaluate_with_*`` functions they
    replace.
    """
    if _PROFILER.enabled:
        with _profile_scope("core.execute_lowered_phase"):
            return _execute_lowered_phase_impl(soc, workload, phase)
    return _execute_lowered_phase_impl(soc, workload, phase)


def _execute_lowered_phase_impl(
    soc: SoCSpec, workload: Workload, phase: LoweredPhase
) -> GablesResult:
    workload = phase.workload if phase.workload is not None else workload
    terms = ip_terms(soc, workload)
    if phase.fold_memory_per_ip:
        terms = _folded_terms(soc, terms)

    # Host coordination: the serialized dispatch work folds into the
    # host IP's own time and appears standalone in the bottleneck set.
    t_coord = 0.0
    if phase.dispatch_seconds is not None:
        if len(phase.dispatch_seconds) != workload.n_ips:
            raise SpecError(
                f"lowered dispatch costs cover {len(phase.dispatch_seconds)} "
                f"IPs but the workload has {workload.n_ips}"
            )
        per_item = math.fsum(
            phase.dispatch_seconds[index]
            for index in workload.active_ips
            if index > 0
        )
        t_coord = per_item / phase.ops_per_item
        if t_coord > 0:
            host = terms[0]
            host_time = host.time + t_coord
            terms = (
                replace(
                    host,
                    time=host_time,
                    perf_bound=(
                        1.0 / host_time
                        if host.fraction > 0 or t_coord > 0
                        else host.perf_bound
                    ),
                ),
            ) + terms[1:]

    # The memory term: unfiltered (base), filtered (memory-side), or
    # absent from the comparison (serialized fold).
    if phase.memory_weights is not None:
        filtered_bytes = math.fsum(
            phase.memory_weights[term.index] * term.data_bytes
            for term in terms
        )
        t_memory = filtered_bytes / soc.memory_bandwidth
        effective_iavg = (
            math.inf if filtered_bytes == 0 else 1.0 / filtered_bytes
        )
        memory_perf_bound = (
            math.inf if t_memory == 0
            else soc.memory_bandwidth * effective_iavg
        )
        iavg = effective_iavg
    elif phase.include_memory:
        t_memory = memory_time(soc, terms)
        iavg = workload.average_intensity()
        memory_perf_bound = (
            math.inf if t_memory == 0 else soc.memory_bandwidth * iavg
        )
    else:
        t_memory = 0.0
        memory_perf_bound = math.inf
        iavg = workload.average_intensity()

    # Shared-resource constraints: fixed buses, then solver-assigned.
    extra: dict = {}
    if phase.buses or phase.route_solver is not None:
        data_bytes = [term.data_bytes for term in terms]
        for bus in phase.buses:
            extra[bus.name] = bus.time(data_bytes)
        if phase.route_solver is not None:
            extra.update(phase.route_solver(data_bytes))
        component_names = {term.name for term in terms} | {MEMORY}
        overlap = component_names & set(extra)
        if overlap:
            raise SpecError(
                f"bus names collide with IP/memory names: {sorted(overlap)!r}"
            )
    if t_coord > 0:
        if COORDINATION in {term.name for term in terms} | {MEMORY}:
            raise SpecError(
                f"component name {COORDINATION!r} collides with an IP"
            )
        extra[COORDINATION] = t_coord

    return compose_result(
        terms,
        memory_time=t_memory,
        memory_perf_bound=memory_perf_bound,
        average_intensity=iavg,
        extra_times=extra,
        combine=phase.combine,
        include_memory=phase.include_memory,
    )
