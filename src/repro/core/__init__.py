"""Gables core: the paper's primary contribution.

The public surface:

- :class:`SoCSpec` / :class:`IPBlock` — hardware parameters
  (``Ppeak``, ``Bpeak``, per-IP ``Ai`` and ``Bi``);
- :class:`Workload` — software usecase parameters (``fi``, ``Ii``);
- :func:`evaluate` — the base N-IP model (Equations 9-11), returning a
  :class:`GablesResult` with bottleneck attribution;
- :func:`attainable_performance_dual` — the performance-domain dual
  (Equations 12-14), used for cross-checking and plotting;
- :class:`Roofline` — the classic single-chip model Gables builds on;
- :mod:`repro.core.extensions` — memory-side SRAM, interconnect
  topology, serialized work, and phased usecases;
- :func:`evaluate_variant` / :func:`evaluate_variant_batch` — the
  lowered pipeline evaluating any :class:`ModelVariant` (base plus
  every extension) through one engine (:mod:`repro.core.lowering`).
"""

from .batch import (
    BatchResult,
    PreparedBatch,
    cached_evaluator,
    evaluate_batch,
    evaluate_lowered_batch,
    fraction_grid,
    prepare_batch,
)
from .compile import (
    ENGINE_CHOICES,
    CompiledPhaseKernel,
    FusedBatchResult,
    clear_compile_cache,
    compile_cache_stats,
    compile_digest,
    compile_phase,
    native_available,
)
from .blend import blend_workloads, interference_slowdown
from .curves import RooflineCurve, min_envelope
from .gables import (
    attainable_performance,
    attainable_performance_dual,
    drop_lines,
    evaluate,
    ip_terms,
    scaled_roofline_curves,
)
from .lowering import (
    BusConstraint,
    LoweredModel,
    LoweredPhase,
    RouteSolver,
    execute_lowered_phase,
)
from .params import IPBlock, SoCSpec, Workload
from .result import GablesResult, IPTerm, compose_result
from .roofline import Ceiling, Roofline, machine_balance
from .variants import (
    VARIANT_CHOICES,
    BaseVariant,
    CoordinationVariant,
    InterconnectVariant,
    MemorySideVariant,
    ModelVariant,
    MultipathVariant,
    PhasedBatchResult,
    PhasedVariant,
    SerializedVariant,
    evaluate_variant,
    evaluate_variant_batch,
    variant_from_config,
)
from .uncertainty import (
    Interval,
    IntervalResult,
    UncertainSoC,
    UncertainWorkload,
    evaluate_interval,
    evaluate_with_margin,
)
from .two_ip import (
    FIGURE_6_EXPECTED_GOPS,
    FIGURE_6_SEQUENCE,
    FIGURE_6A,
    FIGURE_6B,
    FIGURE_6C,
    FIGURE_6D,
    TwoIPScenario,
    evaluate_two_ip,
)

__all__ = [
    "BaseVariant",
    "BatchResult",
    "BusConstraint",
    "Ceiling",
    "CompiledPhaseKernel",
    "CoordinationVariant",
    "ENGINE_CHOICES",
    "FusedBatchResult",
    "PreparedBatch",
    "FIGURE_6A",
    "FIGURE_6B",
    "FIGURE_6C",
    "FIGURE_6D",
    "FIGURE_6_EXPECTED_GOPS",
    "FIGURE_6_SEQUENCE",
    "GablesResult",
    "IPBlock",
    "IPTerm",
    "InterconnectVariant",
    "Interval",
    "IntervalResult",
    "LoweredModel",
    "LoweredPhase",
    "MemorySideVariant",
    "ModelVariant",
    "MultipathVariant",
    "PhasedBatchResult",
    "PhasedVariant",
    "Roofline",
    "RooflineCurve",
    "RouteSolver",
    "SerializedVariant",
    "SoCSpec",
    "TwoIPScenario",
    "UncertainSoC",
    "UncertainWorkload",
    "VARIANT_CHOICES",
    "Workload",
    "evaluate_interval",
    "evaluate_with_margin",
    "attainable_performance",
    "attainable_performance_dual",
    "blend_workloads",
    "cached_evaluator",
    "clear_compile_cache",
    "compile_cache_stats",
    "compile_digest",
    "compile_phase",
    "compose_result",
    "execute_lowered_phase",
    "interference_slowdown",
    "drop_lines",
    "evaluate",
    "evaluate_batch",
    "evaluate_lowered_batch",
    "evaluate_two_ip",
    "evaluate_variant",
    "evaluate_variant_batch",
    "fraction_grid",
    "ip_terms",
    "machine_balance",
    "min_envelope",
    "native_available",
    "prepare_batch",
    "scaled_roofline_curves",
    "variant_from_config",
]
