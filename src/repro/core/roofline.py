"""The classic Roofline model [Williams, Waterman, Patterson, CACM'09].

Gables builds on Roofline: every IP on the SoC gets one of these, and
the memory interface contributes a slanted-only roofline.  This module
implements the original single-chip model — peak performance ``Ppeak``,
peak memory bandwidth ``Bpeak``, and optional *ceilings* (lesser bounds
from missing optimizations such as no-SIMD or no-prefetch) — both for
its own sake (paper Fig. 1) and as the per-IP building block.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .._validation import require_finite_positive, require_positive
from ..errors import SpecError
from .curves import RooflineCurve


@dataclass(frozen=True)
class Ceiling:
    """A lesser bound below the roofline's outermost roof.

    A *compute* ceiling caps performance (e.g. "no SIMD": 1/8 of peak);
    a *bandwidth* ceiling caps the slanted segment (e.g. "no prefetch").
    """

    name: str
    kind: str  # "compute" | "bandwidth"
    value: float  # ops/s for compute, bytes/s for bandwidth

    def __post_init__(self) -> None:
        if self.kind not in ("compute", "bandwidth"):
            raise SpecError(f"ceiling kind must be compute|bandwidth, got {self.kind!r}")
        require_finite_positive(self.value, f"ceiling {self.name!r} value")


@dataclass(frozen=True)
class Roofline:
    """A single-processor roofline with optional ceilings.

    Parameters
    ----------
    peak_perf:
        Peak computation rate, ops/s (the flat roof).
    peak_bandwidth:
        Peak memory bandwidth, bytes/s (the slanted roof).
    ceilings:
        Optional lesser bounds; see :class:`Ceiling`.
    name:
        Label for reports and plots.
    """

    peak_perf: float
    peak_bandwidth: float
    ceilings: tuple = field(default_factory=tuple)
    name: str = "roofline"

    def __post_init__(self) -> None:
        require_finite_positive(self.peak_perf, "peak_perf")
        require_positive(self.peak_bandwidth, "peak_bandwidth")
        if not isinstance(self.ceilings, tuple):
            object.__setattr__(self, "ceilings", tuple(self.ceilings))
        for ceiling in self.ceilings:
            if not isinstance(ceiling, Ceiling):
                raise SpecError("ceilings must contain Ceiling instances")
            if ceiling.kind == "compute" and ceiling.value > self.peak_perf:
                raise SpecError(
                    f"compute ceiling {ceiling.name!r} exceeds peak_perf"
                )
            if ceiling.kind == "bandwidth" and ceiling.value > self.peak_bandwidth:
                raise SpecError(
                    f"bandwidth ceiling {ceiling.name!r} exceeds peak_bandwidth"
                )

    @property
    def ridge_point(self) -> float:
        """Intensity (ops/byte) where memory and compute bounds meet."""
        if math.isinf(self.peak_bandwidth):
            return 0.0
        return self.peak_perf / self.peak_bandwidth

    def attainable(self, intensity: float) -> float:
        """``min(Ppeak, Bpeak * I)`` — the roofline bound at ``I``."""
        require_positive(intensity, "intensity")
        if math.isinf(intensity):
            return self.peak_perf
        return min(self.peak_perf, self.peak_bandwidth * intensity)

    def attainable_under(self, intensity: float, *ceiling_names: str) -> float:
        """Bound at ``I`` when only the named ceilings are overcome.

        Ceilings not named remain in force; this answers questions like
        "what do I get before enabling SIMD?".
        """
        named = set(ceiling_names)
        unknown = named - {c.name for c in self.ceilings}
        if unknown:
            raise SpecError(f"unknown ceilings: {sorted(unknown)!r}")
        perf = self.peak_perf
        bandwidth = self.peak_bandwidth
        for ceiling in self.ceilings:
            if ceiling.name in named:
                continue
            if ceiling.kind == "compute":
                perf = min(perf, ceiling.value)
            else:
                bandwidth = min(bandwidth, ceiling.value)
        if math.isinf(intensity):
            return perf
        return min(perf, bandwidth * intensity)

    def is_memory_bound(self, intensity: float) -> bool:
        """True when the bandwidth segment binds at ``intensity``."""
        return intensity < self.ridge_point

    def curve(self, scale: float = 1.0, name: str | None = None) -> RooflineCurve:
        """This roofline as a (possibly scaled) plottable curve."""
        return RooflineCurve(
            name=name or self.name,
            slope=self.peak_bandwidth,
            roof=self.peak_perf,
            scale=scale,
        )

    def ceiling_curves(self) -> tuple:
        """One curve per ceiling, each capped by that single ceiling."""
        curves = []
        for ceiling in self.ceilings:
            if ceiling.kind == "compute":
                curves.append(
                    RooflineCurve(
                        name=f"{self.name}: {ceiling.name}",
                        slope=self.peak_bandwidth,
                        roof=ceiling.value,
                    )
                )
            else:
                curves.append(
                    RooflineCurve(
                        name=f"{self.name}: {ceiling.name}",
                        slope=ceiling.value,
                        roof=self.peak_perf,
                    )
                )
        return tuple(curves)


def machine_balance(roofline: Roofline) -> float:
    """Machine balance (ops/byte): synonym for the ridge point.

    Software with intensity below the machine balance cannot saturate
    the compute units no matter how well it is tuned.
    """
    return roofline.ridge_point
